//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! with criterion's API shape. Each benchmark warms up briefly, then runs
//! timed batches and reports the best observed ns/iter (min-of-batches is
//! robust to scheduler noise for a harness this small). No statistics,
//! plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, self.measurement_time, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Declared throughput (accepted, not reported, by this shim).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How `iter_batched` sizes its batches. The shim always uses per-call
/// batches, which is correct (just slower) for every variant.
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    iters_per_batch: u64,
    best_ns_per_iter: f64,
    batches: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine()); // warm-up
        }
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters_per_batch as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
    }

    /// The routine times itself for the requested iteration count.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let _ = routine(1); // warm-up
        for _ in 0..self.batches {
            let elapsed = routine(self.iters_per_batch);
            let ns = elapsed.as_nanos() as f64 / self.iters_per_batch as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.batches {
            let n = self.iters_per_batch.min(16);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = start.elapsed().as_nanos() as f64 / n as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
    }

    pub fn iter_batched_ref<I, O, S: FnMut() -> I, F: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(&mut setup())); // warm-up
        for _ in 0..self.batches {
            let n = self.iters_per_batch.min(16);
            let mut inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in &mut inputs {
                black_box(routine(input));
            }
            let ns = start.elapsed().as_nanos() as f64 / n as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration pass: one batch of one iteration to size the real run.
    let mut probe = Bencher {
        iters_per_batch: 1,
        best_ns_per_iter: f64::INFINITY,
        batches: 1,
    };
    f(&mut probe);
    let per_iter = probe.best_ns_per_iter.max(1.0);
    let budget_ns = measurement_time.as_nanos() as f64 / sample_size.max(1) as f64;
    let iters = ((budget_ns / per_iter).round() as u64).clamp(1, 1_000_000);
    let mut b = Bencher {
        iters_per_batch: iters,
        best_ns_per_iter: f64::INFINITY,
        batches: sample_size.max(2),
    };
    f(&mut b);
    let ns = b.best_ns_per_iter;
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns / 1_000_000.0, "ms")
    };
    println!("{label:<50} time: {value:>10.2} {unit}/iter");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2).measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}

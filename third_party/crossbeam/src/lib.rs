//! Offline shim for `crossbeam`: MPMC `channel::{bounded, unbounded}`
//! built on `Mutex` + `Condvar`, with crossbeam's disconnect semantics
//! (send fails when all receivers are gone, recv fails when the queue is
//! empty and all senders are gone). Both ends are `Clone`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by `send` when every receiver has been dropped.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` on an empty, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// A channel that blocks senders once `cap` messages are in flight.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::{Duration, Instant};

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded(1);
            tx.send(1u32).unwrap();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                let a = rx.recv().unwrap();
                let b = rx.recv().unwrap();
                (a, b)
            });
            let start = Instant::now();
            tx.send(2).unwrap();
            assert!(start.elapsed() >= Duration::from_millis(20));
            assert_eq!(t.join().unwrap(), (1, 2));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(9).is_err());
        }
    }
}

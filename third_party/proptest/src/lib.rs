//! Offline shim for `proptest`: deterministic random testing without
//! shrinking.
//!
//! Implements the strategy combinators, macros, and `prop::` modules the
//! NeurDB-RS test suites use. Each `proptest!` test runs
//! `ProptestConfig::cases` random cases from a seed derived from the test
//! name, so failures reproduce exactly across runs. On failure the case
//! number and assertion message are reported (no shrinking).

use std::marker::PhantomData;

pub mod test_runner {
    use std::fmt;

    /// Deterministic xoshiro256** RNG used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

use test_runner::TestRng;

/// Run-time configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Upper bound on regenerate attempts for `prop_filter` (per value).
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_local_rejects: 1000,
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy, for `prop_oneof!` unions and `BoxedStrategy`.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- numeric range strategies ----

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---- tuple strategies ----

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

// ---- regex-lite string strategies ----

/// One atom of the pattern subset: a set of candidate chars plus a
/// repetition range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the pattern subset proptest-style string strategies use here:
/// sequences of `[class]`, `\PC`, or literal chars, each optionally
/// followed by `{n}` / `{m,n}`.
fn parse_pattern(pat: &str) -> Vec<Atom> {
    let printable: Vec<char> = (' '..='~')
        .chain(['\t', 'é', 'λ', '中', '🦀', '±', '≤'])
        .collect();
    let mut atoms = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = it.next().expect("unterminated [class]");
                    match c {
                        ']' => break,
                        '-' => {
                            // A range if a previous char exists and the
                            // next char is not the closing bracket.
                            match (prev, it.peek().copied()) {
                                (Some(lo), Some(hi)) if hi != ']' => {
                                    it.next();
                                    for x in lo..=hi {
                                        set.push(x);
                                    }
                                    prev = None;
                                }
                                _ => {
                                    set.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        '\\' => {
                            let esc = it.next().expect("dangling escape in class");
                            set.push(esc);
                            prev = Some(esc);
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                set
            }
            '\\' => {
                let esc = it.next().expect("dangling escape");
                if esc == 'P' {
                    // `\PC`: any char NOT in Unicode category C (i.e.
                    // printable-ish). Approximated by a printable pool.
                    let tag = it.next().expect("\\P needs a category");
                    assert_eq!(tag, 'C', "only \\PC is supported");
                    printable.clone()
                } else {
                    vec![esc]
                }
            }
            lit => vec![lit],
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            for c in it.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let n: usize = spec.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!chars.is_empty(), "empty character class in pattern");
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---- any::<T>() ----

/// Types with a canonical random strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix in boundary values so edge cases appear early.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- prop:: modules ----

pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted element-count specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of elements drawn from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is unknown at generation
    /// time; resolved with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod prelude {
    pub use super::test_runner::TestCaseError;
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

// ---- macros ----

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Deterministic per-test seed: FNV-1a of the test name.
                let mut seed: u64 = 0xcbf29ce484222325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x100000001b3);
                }
                let mut rng = $crate::test_runner::TestRng::seed(seed);
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, config.cases, seed, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($a), stringify!($b), l, r,
                        ),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}",
                            stringify!($a),
                            stringify!($b),
                            l,
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -50i64..50, y in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn string_patterns(s in "[a-z]{3,5}", t in "[a-zA-Z0-9 _-]{0,24}") {
            prop_assert!((3..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.len() <= 24);
            prop_assert!(t.chars().all(|c| c.is_ascii_alphanumeric() || " _-".contains(c)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        use crate::test_runner::TestRng;
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::seed(5);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn leading_atom_then_class() {
        use crate::test_runner::TestRng;
        let mut rng = TestRng::seed(9);
        for _ in 0..50 {
            let s = "[a-z][a-z0-9_]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }
}

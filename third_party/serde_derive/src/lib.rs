//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! NeurDB-RS only uses `#[derive(Serialize, Deserialize)]` as annotations;
//! no code path serializes through serde (the WAL and checkpoint codecs
//! are hand-rolled), so empty expansions are sufficient and keep the
//! derive attribute positions compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

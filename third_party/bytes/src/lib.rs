//! Offline shim for `bytes`: `Buf` / `BufMut` cursor traits plus
//! `Bytes` / `BytesMut` containers, little-endian accessors only.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over a byte source; all get_* consume from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write cursor; all put_* append.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

/// Growable byte buffer with `BufMut` append semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i64_le(-42);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}

//! Offline shim for `parking_lot`: non-poisoning `Mutex` / `RwLock`
//! wrappers over `std::sync`, matching the parking_lot API surface
//! NeurDB-RS uses (`lock`, `read`, `write`, guards).

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that (like parking_lot's) never poisons: a panic while the
/// lock is held leaves the data accessible to other threads.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}

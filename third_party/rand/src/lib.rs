//! Offline shim for `rand` 0.8: the subset NeurDB-RS uses.
//!
//! `StdRng` is xoshiro256** seeded through splitmix64 — deterministic,
//! fast, and statistically solid for test/benchmark workloads. Not
//! cryptographically secure (neither is upstream `StdRng`'s contract as
//! used here: every call site seeds explicitly via `seed_from_u64`).

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values producible uniformly from an RNG (the `Standard` distribution).
pub trait StandardValue {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly sampleable within a range. The single blanket
/// `SampleRange` impl below keys on this so integer/float literals in
/// `gen_range(0..8)` unify with the surrounding expression's type, as
/// with upstream rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as StandardValue>::from_rng(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range sampling (`rng.gen_range(lo..hi)` / `gen_range(lo..=hi)`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "gen_range: empty range");
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    fn gen<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as StandardValue>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256** — the default deterministic RNG.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            s = [1, 2, 3, 4];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

pub mod rngs {
    pub use crate::StdRng;

    pub mod mock {
        use crate::RngCore;

        /// A mock RNG advancing by a fixed increment per call.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

pub mod seq {
    use crate::Rng;

    /// Shuffle / choose extensions on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[a.gen_range(0..10usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f32 = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&y));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}

//! Offline shim for `serde`: re-exports the no-op derives plus marker
//! traits of the same names so `use serde::{Serialize, Deserialize}`
//! imports both the macro and the trait namespaces, as with real serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; never implemented or required.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; never implemented or required.
pub trait Deserialize {}

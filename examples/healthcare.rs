//! The paper's Healthcare workload (Table 1, workload H): disease
//! progression prediction with `PREDICT CLASS OF`, exercised through the
//! full SQL path — tables, Listing 2 syntax with inline `VALUES`, and the
//! in-database training pipeline.
//!
//! ```sh
//! cargo run --release -p neurdb-core --example healthcare
//! ```

use neurdb_core::{Database, Output};
use neurdb_workloads::DiabetesGen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let db = Database::new();
    // The first 8 attributes are the classic Pima features; we model the
    // clinically meaningful ones and a catch-all panel column.
    db.execute(
        "CREATE TABLE diabetes (pid INT PRIMARY KEY, pregnancies INT, glucose INT, \
         blood_pressure INT, skin INT, insulin INT, bmi INT, pedigree INT, age INT, \
         outcome BOOL)",
    )
    .unwrap();

    let gen = DiabetesGen::new(42);
    let mut rng = StdRng::seed_from_u64(1);
    let rows = gen.batch(3000, &mut rng);
    for (i, r) in rows.iter().enumerate() {
        db.execute(&format!(
            "INSERT INTO diabetes VALUES ({i}, {}, {}, {}, {}, {}, {}, {}, {}, {})",
            r.fields[0],
            r.fields[1],
            r.fields[2],
            r.fields[3],
            r.fields[4],
            r.fields[5],
            r.fields[6],
            r.fields[7],
            r.outcome
        ))
        .unwrap();
    }
    let count = db.execute("SELECT COUNT(*) FROM diabetes").unwrap();
    println!(
        "loaded {} patient records",
        count.rows().unwrap().rows[0].get(0)
    );

    // Listing 2: classification with inline VALUES for new patients.
    let out = db
        .execute(
            "PREDICT CLASS OF outcome FROM diabetes \
             TRAIN ON pregnancies, glucose, blood_pressure, skin, insulin, bmi, pedigree, age \
             VALUES (6, 38, 14, 11, 10, 22, 6, 10), (1, 17, 13, 5, 4, 11, 2, 5)",
        )
        .unwrap();
    let Output::Prediction(p) = out else {
        unreachable!()
    };
    if let Some(t) = &p.train_outcome {
        println!(
            "trained in-database in {:.3}s over {} samples; final loss {:.4}",
            t.total_seconds,
            t.samples,
            t.losses.last().unwrap()
        );
    }
    println!("\nnew-patient predictions ({:?}):", p.result.columns);
    for r in &p.result.rows {
        println!("  {:?}", r.values);
    }

    // Measure holdout-style accuracy by predicting the whole table and
    // comparing against the stored outcomes.
    let all = db
        .execute(
            "PREDICT CLASS OF outcome FROM diabetes \
             TRAIN ON pregnancies, glucose, blood_pressure, skin, insulin, bmi, pedigree, age",
        )
        .unwrap();
    let Output::Prediction(all) = all else {
        unreachable!()
    };
    let mut correct = 0usize;
    for (r, truth) in all.result.rows.iter().zip(rows.iter()) {
        let pred = r.get(8).as_bool().unwrap();
        if pred == truth.outcome {
            correct += 1;
        }
    }
    println!(
        "\nin-table accuracy: {:.1}% over {} records",
        100.0 * correct as f64 / rows.len() as f64,
        rows.len()
    );
}

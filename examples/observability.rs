//! End-to-end drive of the observability surface over a live TCP
//! server: a real workload, then `SHOW METRICS` (WAL fsync latency,
//! buffer gauges, per-statement-kind server histograms, executor
//! counters), the slow-query log with trace ids and plan provenance,
//! the latency columns of `SHOW SESSIONS`, and structured tracing —
//! `SET trace = on`, `SHOW TRACE <id>` as a span tree and as Chrome
//! trace JSON for Perfetto.
//!
//! ```sh
//! cargo run --release --example observability
//! # also write the sample trace body for scripts/trace_to_perfetto.py:
//! cargo run --release --example observability -- --emit-trace trace_body.json
//! ```

use neurdb_core::Database;
use neurdb_server::{client::Client, Server, ServerConfig};
use neurdb_storage::Value;
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("neurdb-obs-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Database::open(&dir).expect("open durable store"));
    let handle = Server::start(db, "127.0.0.1:0", ServerConfig::default()).expect("start server");
    println!("neurdb-server listening on {}", handle.local_addr());

    let mut c = Client::connect(handle.local_addr()).expect("connect");

    // A workload that touches WAL (durable inserts), buffer pool, the
    // executor, and several statement kinds.
    c.affected("CREATE TABLE readings (id INT PRIMARY KEY, sensor INT, v FLOAT)")
        .unwrap();
    for i in 0..200 {
        c.affected(&format!(
            "INSERT INTO readings VALUES ({i}, {}, {}.5)",
            i % 10,
            i % 40
        ))
        .unwrap();
    }
    // Log every statement from here on (threshold 0 ms) so the slow-query
    // log demonstrably captures provenance.
    c.affected("SET slow_query_ms = 0").unwrap();
    let rows = c
        .query("SELECT sensor, COUNT(*) FROM readings GROUP BY sensor")
        .unwrap();
    assert_eq!(rows.rows.len(), 10);

    println!("\nSHOW METRICS (selected):");
    let metrics = c.query("SHOW METRICS").unwrap();
    let mut shown = 0;
    for row in &metrics.rows {
        let Value::Text(name) = &row[0] else { continue };
        if name.starts_with("wal.fsync_ns")
            || name.starts_with("buffer.hit")
            || name.starts_with("srv.stmt_ns.insert")
            || name.starts_with("srv.stmt_ns.select")
            || name.starts_with("exec.rows")
            || name.starts_with("srv.bytes")
        {
            println!("  {name:<28} = {:?}", row[1]);
            shown += 1;
        }
    }
    assert!(shown >= 8, "expected a populated metrics listing");

    println!("\nSHOW slow_queries:");
    let slow = c.query("SHOW slow_queries").unwrap();
    assert!(!slow.rows.is_empty(), "threshold 0 must capture statements");
    for row in &slow.rows {
        let (Value::Text(trace), Value::Float(ms), Value::Text(sql)) = (&row[0], &row[2], &row[3])
        else {
            panic!("unexpected slow-query row shape: {row:?}")
        };
        println!("  trace={trace} {ms:.3}ms  {sql}");
        if let Value::Text(plan) = &row[5] {
            for line in plan.lines() {
                println!("      {line}");
            }
        }
    }

    println!("\nSHOW SESSIONS (with latency columns):");
    let sessions = c.query("SHOW SESSIONS").unwrap();
    assert!(sessions.columns.contains(&"total_ms".to_string()));
    assert!(sessions.columns.contains(&"last_ms".to_string()));
    for row in &sessions.rows {
        println!(
            "  id={:?} statements={:?} total_ms={:?} last_ms={:?}",
            row[0], row[2], row[4], row[5]
        );
    }

    // Structured tracing: force a trace, run a dop-4 parallel join, and
    // pull the span tree back over the wire.
    c.affected("SET parallelism = 4").unwrap();
    // The demo table is small; force the parallel plan so the trace
    // shows the worker/partition span tracks.
    c.affected("SET parallel_min_rows = 0").unwrap();
    c.affected("SET trace = on").unwrap();
    let join_sql = "SELECT r.sensor, COUNT(*), SUM(s.v) FROM readings r, readings s \
                    WHERE r.id = s.id GROUP BY r.sensor";
    let _ = c.query(join_sql).unwrap();

    let traces = c.query("SHOW TRACES").unwrap();
    let trace_id = traces
        .rows
        .iter()
        .rev()
        .find(|r| r[3] == Value::Text(join_sql.into()))
        .map(|r| match &r[0] {
            Value::Text(id) => id.clone(),
            other => panic!("{other:?}"),
        })
        .expect("join trace listed");

    println!("\nSHOW TRACE {trace_id}:");
    let tree = c.query(&format!("SHOW TRACE '{trace_id}'")).unwrap();
    for row in &tree.rows {
        if let Value::Text(line) = &row[0] {
            println!("  {line}");
        }
    }

    let json = c
        .query(&format!("SHOW TRACE '{trace_id}' FORMAT json"))
        .unwrap();
    let Value::Text(body) = &json.rows[0][0] else {
        panic!("FORMAT json should return one TEXT cell")
    };
    assert!(body.contains("\"traceEvents\":["));
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--emit-trace")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::write(path, body).expect("write trace body");
        println!("\nwrote Chrome trace body to {path} (feed to scripts/trace_to_perfetto.py)");
    }

    c.close().unwrap();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nserver shut down cleanly — observability surface verified");
}

//! The paper's E-commerce workload (Table 1, workload E): click-through
//! rate prediction on the synthetic Avazu stream, comparing the NeurDB
//! streaming path against the PostgreSQL+P batch-export baseline —
//! a miniature of Fig. 6(a).
//!
//! ```sh
//! cargo run --release -p neurdb-core --example ecommerce_ctr
//! ```

use neurdb_core::{run_neurdb, run_pgp, AnalyticsWorkload, RowSource};
use neurdb_engine::AiEngine;

fn main() {
    let n_batches = 40;
    let batch_size = 1024;
    let window = 16;
    println!(
        "workload E: PREDICT VALUE OF click_rate FROM avazu TRAIN ON *  \
         ({n_batches} batches x {batch_size} rows)"
    );

    let engine = AiEngine::new();
    let src = RowSource {
        workload: AnalyticsWorkload::Ecommerce,
        cluster: 0,
        n_batches,
        batch_size,
        seed: 7,
    };

    let neurdb = run_neurdb(
        &engine,
        AnalyticsWorkload::Ecommerce,
        src.clone(),
        window,
        5e-3,
    );
    println!(
        "NeurDB (streaming):     latency {:>7.3}s  throughput {:>9.0} samples/s  \
         (compute {:.3}s, stream-wait {:.3}s)",
        neurdb.total_seconds,
        neurdb.throughput(),
        neurdb.compute_seconds,
        neurdb.wait_seconds,
    );

    let pgp = run_pgp(&engine, AnalyticsWorkload::Ecommerce, src, 5e-3);
    println!(
        "PostgreSQL+P (export):  latency {:>7.3}s  throughput {:>9.0} samples/s  \
         (compute {:.3}s, export {:.3}s)",
        pgp.total_seconds,
        pgp.throughput(),
        pgp.compute_seconds,
        pgp.wait_seconds,
    );

    println!(
        "\nNeurDB: {:.1}% lower end-to-end latency, {:.2}x higher training throughput",
        100.0 * (1.0 - neurdb.total_seconds / pgp.total_seconds),
        neurdb.throughput() / pgp.throughput(),
    );
    println!(
        "final training loss: neurdb {:.4} vs pg+p {:.4} (same data, same model)",
        neurdb.losses.last().unwrap(),
        pgp.losses.last().unwrap()
    );
}

//! Quickstart: create a table, load data, run standard SQL, then run the
//! paper's `PREDICT` extension end-to-end.
//!
//! ```sh
//! cargo run -p neurdb-core --example quickstart
//! ```

use neurdb_core::{Database, Output};

fn main() {
    let db = Database::new();

    // --- Standard SQL ----------------------------------------------------
    db.execute("CREATE TABLE review (id INT PRIMARY KEY, brand_name TEXT, stars INT, score FLOAT)")
        .unwrap();
    for i in 0..500i64 {
        let brand = format!("brand{}", i % 5);
        let stars = (i / 5) % 5 + 1;
        // Reviews of brand0 have no score yet — we will predict it.
        let score_sql = if brand == "brand0" {
            "NULL".to_string()
        } else {
            format!("{}", stars as f64 + 0.25)
        };
        db.execute(&format!(
            "INSERT INTO review VALUES ({i}, '{brand}', {stars}, {score_sql})"
        ))
        .unwrap();
    }

    let out = db
        .execute("SELECT brand_name, COUNT(*), AVG(score) FROM review GROUP BY brand_name ORDER BY brand_name")
        .unwrap();
    println!("review stats per brand:");
    if let Output::Rows(rows) = &out {
        for r in &rows.rows {
            println!(
                "  {:10} count={} avg_score={}",
                r.get(0).to_string(),
                r.get(1),
                r.get(2)
            );
        }
    }

    // --- The paper's Listing 1: PREDICT VALUE OF -------------------------
    let out = db
        .execute(
            "PREDICT VALUE OF score FROM review \
             WHERE brand_name = 'brand0' \
             TRAIN ON * \
             WITH brand_name <> 'brand0'",
        )
        .unwrap();
    let Output::Prediction(p) = out else {
        unreachable!()
    };
    if let Some(t) = &p.train_outcome {
        println!(
            "\ntrained model {} in {:.3}s over {} samples (streaming protocol, final loss {:.4})",
            p.mid,
            t.total_seconds,
            t.samples,
            t.losses.last().unwrap()
        );
    }
    println!("first predictions for the unscored brand:");
    println!("  {:?}", p.result.columns);
    for r in p.result.rows.iter().take(5) {
        println!("  {:?}", r.values);
    }
    println!("... {} rows total", p.result.len());

    // Second run: the model is served from the model manager's cache.
    let out = db
        .execute(
            "PREDICT VALUE OF score FROM review WHERE brand_name = 'brand0' \
             TRAIN ON * WITH brand_name <> 'brand0'",
        )
        .unwrap();
    let Output::Prediction(p2) = out else {
        unreachable!()
    };
    assert!(p2.train_outcome.is_none());
    println!("\nsecond PREDICT reused model {} (no retraining)", p2.mid);
}

//! Physical query plans end to end: load a small social schema, run a
//! three-way join (join order chosen by `neurdb-qo`), and print
//! `EXPLAIN` / `EXPLAIN ANALYZE` plan trees with per-operator counters.
//!
//! ```bash
//! cargo run --release --example explain_plans
//! ```

use neurdb_core::Database;

fn show(db: &Database, sql: &str) {
    println!("\n> {sql}");
    match db.execute(sql) {
        Ok(out) => {
            if let Some(rows) = out.rows() {
                for row in &rows.rows {
                    match row.get(0).as_str() {
                        Some(line) => println!("{line}"),
                        None => println!("{:?}", row.values),
                    }
                }
            }
        }
        Err(e) => println!("error: {e}"),
    }
}

fn main() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, age INT); \
         CREATE TABLE posts (pid INT PRIMARY KEY, owner INT, likes INT); \
         CREATE TABLE comments (cid INT PRIMARY KEY, post INT);",
    )
    .unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO users VALUES ({i}, 'user{i}', {})",
            18 + i % 50
        ))
        .unwrap();
    }
    for i in 0..1000 {
        db.execute(&format!(
            "INSERT INTO posts VALUES ({i}, {}, {})",
            i % 200,
            i % 97
        ))
        .unwrap();
    }
    for i in 0..3000 {
        db.execute(&format!("INSERT INTO comments VALUES ({i}, {})", i % 1000))
            .unwrap();
    }

    show(&db, "EXPLAIN SELECT name FROM users WHERE age < 21");
    show(
        &db,
        "EXPLAIN ANALYZE SELECT u.name, COUNT(*) AS comments \
         FROM users u, posts p, comments c \
         WHERE u.id = p.owner AND p.pid = c.post AND u.age < 21 \
         GROUP BY u.name ORDER BY comments DESC LIMIT 5",
    );

    let out = db
        .execute(
            "SELECT u.name, COUNT(*) AS comments \
             FROM users u, posts p, comments c \
             WHERE u.id = p.owner AND p.pid = c.post AND u.age < 21 \
             GROUP BY u.name ORDER BY comments DESC LIMIT 5",
        )
        .unwrap();
    println!("\ntop commented (query result):");
    for row in &out.rows().unwrap().rows {
        println!("  {:?}", row.values);
    }
}

//! Drift adaptation tour: the three NeurDB adaptation mechanisms working
//! together on live drift —
//!
//! 1. the **monitor** detects a data-distribution switch from the loss
//!    stream (Avazu cluster C1 → C2);
//! 2. the **model manager** applies an *incremental update* (fine-tune the
//!    trailing layers, persist only those) and reports the storage saved;
//! 3. the **learned concurrency control** re-tunes itself with two-phase
//!    adaptation when the transactional workload shifts.
//!
//! ```sh
//! cargo run --release -p neurdb-core --example drift_adaptation
//! ```

use neurdb_cc::{run_learned_adaptive, AdaptConfig, LearnedCc, Phase};
use neurdb_core::{build_batches, AnalyticsWorkload};
use neurdb_engine::streaming::{stream_from_source, Handshake, StreamParams};
use neurdb_engine::{Adaptation, AiEngine, DriftMonitor, MonitorConfig};
use neurdb_nn::{armnet_finetune_from, armnet_spec, LossKind};
use neurdb_txn::{EngineConfig, TxnEngine, TxnSpec};
use neurdb_workloads::{Ycsb, YcsbConfig};
use std::sync::Arc;
use std::time::Duration;

fn hs(batch: usize) -> Handshake {
    Handshake {
        model_descriptor: "drift-demo".into(),
        params: StreamParams {
            batch_size: batch,
            window: 8,
        },
    }
}

fn main() {
    // ---------- 1+2: analytics drift -------------------------------------
    println!("== analytics drift: Avazu C1 -> C2 ==");
    let engine = AiEngine::new();
    let cfg = AnalyticsWorkload::Ecommerce.config();
    let b0 = build_batches(AnalyticsWorkload::Ecommerce, 0, 40, 256, 1);
    let (rx, h) = stream_from_source(&hs(256), b0.into_iter());
    let out = engine.train_streaming(armnet_spec(&cfg), LossKind::Mse, 5e-3, rx);
    h.join().unwrap();
    println!(
        "trained on C1: {} samples, final loss {:.4}",
        out.samples,
        out.losses.last().unwrap()
    );

    // Stream C2 through the model while the monitor watches the loss.
    let mut monitor = DriftMonitor::new(MonitorConfig {
        window: 5,
        finetune_ratio: 1.3,
        retrain_ratio: 8.0,
        cooldown: 10,
    });
    for l in &out.losses[out.losses.len() - 10..] {
        monitor.observe(*l as f64);
    }
    let mut model = engine.models.materialize_latest(out.mid).unwrap();
    let c2 = build_batches(AnalyticsWorkload::Ecommerce, 1, 10, 256, 2);
    let mut decision = Adaptation::None;
    for (i, b) in c2.iter().enumerate() {
        let (l, _) = neurdb_nn::mse(&model.forward(&b.features), &b.targets);
        decision = monitor.observe(l as f64);
        if decision != Adaptation::None {
            println!(
                "monitor fired after {} drifted batches: {:?}",
                i + 1,
                decision
            );
            break;
        }
    }
    assert_ne!(decision, Adaptation::None, "drift must be detected");

    // Incremental update: freeze everything but the head.
    let frozen = armnet_finetune_from(&cfg);
    let c2_train = build_batches(AnalyticsWorkload::Ecommerce, 1, 40, 256, 3);
    let (rx, h) = stream_from_source(&hs(256), c2_train.into_iter());
    let ft = engine
        .finetune_streaming(out.mid, LossKind::Mse, 5e-3, frozen, rx)
        .unwrap();
    h.join().unwrap();
    println!(
        "fine-tuned layers {}.. in {:.3}s; loss {:.4} -> {:.4}",
        frozen,
        ft.total_seconds,
        ft.losses.first().unwrap(),
        ft.losses.last().unwrap()
    );
    let report = engine.models.storage_report();
    println!(
        "model storage: {} versions, {:.1}% saved vs full-copy versioning",
        report.versions,
        100.0 * report.savings()
    );

    // ---------- 3: transactional drift ------------------------------------
    println!("\n== transactional drift: uniform -> hotspot YCSB ==");
    let policy = Arc::new(LearnedCc::seeded());
    let txn_engine = Arc::new(TxnEngine::new(policy.clone(), EngineConfig::default()));
    let ycsb = Arc::new(Ycsb::new(YcsbConfig {
        records: 20_000,
        ..Default::default()
    }));
    ycsb.load(&txn_engine);
    let uniform = {
        let y = ycsb.clone();
        Arc::new(move |tid: usize, seq: u64| y.transaction_for(tid, seq))
    };
    let hotspot = Arc::new(move |tid: usize, seq: u64| {
        // All threads hammer 4 keys with multi-op RMW transactions: a
        // sharp contention regime shift (think flash sale).
        let h = (tid as u64)
            .wrapping_mul(31)
            .wrapping_add(seq.wrapping_mul(7));
        TxnSpec::new(
            0,
            vec![
                neurdb_txn::Op::Rmw(h % 4, 1),
                neurdb_txn::Op::Read(4 + h % 16),
                neurdb_txn::Op::Rmw((h + 1) % 4, 1),
                neurdb_txn::Op::Read(4 + (h * 3) % 16),
                neurdb_txn::Op::Rmw((h + 2) % 4, 1),
            ],
        )
    });
    let phases = vec![
        Phase {
            label: "uniform".into(),
            threads: 4,
            slices: 4,
            gen: uniform,
        },
        Phase {
            label: "hotspot".into(),
            threads: 4,
            slices: 6,
            gen: hotspot,
        },
    ];
    let timeline = run_learned_adaptive(
        &txn_engine,
        &policy,
        &phases,
        Duration::from_millis(120),
        AdaptConfig {
            candidates: 4,
            refine_iters: 4,
            ..Default::default()
        },
        9,
    );
    for p in &timeline {
        println!(
            "  t={:>6.2}s  {:>9.0} txn/s{}",
            p.t,
            p.throughput,
            if p.adapted {
                "  <- two-phase adaptation ran"
            } else {
                ""
            }
        );
    }
    let adapted = timeline.iter().any(|p| p.adapted);
    println!(
        "adaptation triggered: {adapted}; policy is '{}'",
        txn_engine.policy_name()
    );
}

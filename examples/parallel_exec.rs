//! Demo of the parallel + vectorized execution engine: morsel-driven
//! parallel scans behind `SET parallelism`, two-phase parallel
//! aggregation, partitioned parallel hash joins in all three shapes
//! (probe-parallel, parallel build via the repartitioning exchange,
//! and partition-wise with both sides repartitioned), aggregation
//! pushed into join workers, vectorized projections, planner-chosen
//! B-tree index scans, and ORDER BY over unprojected columns — all
//! surfaced through `EXPLAIN [ANALYZE]`.
//!
//! Run with: `cargo run --release --example parallel_exec`

use neurdb_core::Database;

fn show(db: &Database, sql: &str) {
    println!("\n> {sql}");
    let out = db.execute(sql).expect("statement");
    if let Some(rows) = out.rows() {
        for row in &rows.rows {
            println!("  {}", row.get(0).as_str().unwrap_or("?"));
        }
    }
}

fn main() {
    let db = Database::new();
    db.execute("CREATE TABLE events (eid INT PRIMARY KEY, kind INT, weight FLOAT)")
        .unwrap();
    for chunk in 0..5 {
        let mut stmt = String::from("INSERT INTO events VALUES ");
        for i in (chunk * 4000)..((chunk + 1) * 4000) {
            if i > chunk * 4000 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({i}, {}, {}.75)", i % 97, i % 31));
        }
        db.execute(&stmt).unwrap();
    }
    println!("loaded 20000 events");

    // Serial baseline plan.
    show(
        &db,
        "EXPLAIN SELECT kind, COUNT(*) FROM events WHERE weight > 3 GROUP BY kind",
    );

    // Fan the scan out to 4 morsel workers; the aggregate splits into
    // per-worker partials merged at the Gather's consumer.
    db.execute("SET parallelism = 4").unwrap();
    show(
        &db,
        "EXPLAIN ANALYZE SELECT kind, COUNT(*), SUM(weight) FROM events WHERE weight > 3 GROUP BY kind",
    );

    // Results are identical either way.
    let parallel = db
        .execute("SELECT COUNT(*), SUM(weight) FROM events WHERE kind < 50")
        .unwrap();
    db.execute("SET parallelism = 1").unwrap();
    let serial = db
        .execute("SELECT COUNT(*), SUM(weight) FROM events WHERE kind < 50")
        .unwrap();
    assert_eq!(
        parallel.rows().unwrap().rows,
        serial.rows().unwrap().rows,
        "parallel and serial must agree"
    );
    println!(
        "\nparallel == serial: {:?}",
        serial.rows().unwrap().rows[0].values
    );

    // A hash join probing the big table becomes a partitioned parallel
    // join: the dims build side is hash-partitioned and the events probe
    // side fans out across 4 workers (per-worker rows on the join line).
    db.execute("CREATE TABLE kinds (kid INT PRIMARY KEY, label INT)")
        .unwrap();
    for k in 0..97 {
        db.execute(&format!("INSERT INTO kinds VALUES ({k}, {})", k % 5))
            .unwrap();
    }
    db.execute("SET parallelism = 4").unwrap();
    show(
        &db,
        "EXPLAIN ANALYZE SELECT e.eid, k.label FROM events e, kinds k \
         WHERE e.kind = k.kid AND k.label = 2 AND e.weight > 20",
    );

    // With a build side big enough to clear the gate itself, both sides
    // repartition on the join key and the join runs partition-wise:
    // each worker owns one (build, probe) partition pair end-to-end.
    // The join line shows per-worker joined rows, per-worker build
    // routing, and per-partition build sizes (skew made visible).
    db.execute("CREATE TABLE readings (rid INT PRIMARY KEY, eref INT, val INT)")
        .unwrap();
    for chunk in 0..2 {
        let mut stmt = String::from("INSERT INTO readings VALUES ");
        for i in (chunk * 3000)..((chunk + 1) * 3000) {
            if i > chunk * 3000 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({i}, {}, {})", i % 20_000, i % 13));
        }
        db.execute(&stmt).unwrap();
    }
    show(
        &db,
        "EXPLAIN ANALYZE SELECT e.kind, r.val FROM events e, readings r \
         WHERE e.eid = r.eref AND r.val < 4",
    );

    // A small probe over a big build side takes the parallel-build
    // shape: repartition producers fan the build scan out and builder
    // threads own one hash partition each; the probe stays serial.
    db.execute("CREATE TABLE watch (wid INT PRIMARY KEY, eref INT)")
        .unwrap();
    for w in 0..50 {
        db.execute(&format!("INSERT INTO watch VALUES ({w}, {})", w * 397))
            .unwrap();
    }
    show(
        &db,
        "EXPLAIN ANALYZE SELECT w.wid, e.kind FROM watch w, events e \
         WHERE w.eref = e.eid",
    );

    // GROUP BY directly over the partition-wise join pushes the partial
    // aggregate into the join workers: only per-group state rows cross
    // the output channel, merged at the final HashAggregate.
    show(
        &db,
        "EXPLAIN ANALYZE SELECT r.val, COUNT(*), SUM(e.kind) FROM events e, readings r \
         WHERE e.eid = r.eref GROUP BY r.val",
    );
    let parallel = db
        .execute(
            "SELECT COUNT(*), SUM(e.kind) FROM events e, readings r \
             WHERE e.eid = r.eref",
        )
        .unwrap();
    db.execute("SET parallelism = 1").unwrap();
    let serial = db
        .execute(
            "SELECT COUNT(*), SUM(e.kind) FROM events e, readings r \
             WHERE e.eid = r.eref",
        )
        .unwrap();
    assert_eq!(
        parallel.rows().unwrap().rows,
        serial.rows().unwrap().rows,
        "partition-wise join + pushed aggregate must agree with serial"
    );
    println!(
        "\npartition-wise join+agg == serial: {:?}",
        serial.rows().unwrap().rows[0].values
    );

    // A selective predicate on an indexed column plans as an IndexScan.
    db.execute("CREATE INDEX ON events (eid)").unwrap();
    show(&db, "EXPLAIN SELECT * FROM events WHERE eid = 12345");
    let hit = db
        .execute("SELECT kind FROM events WHERE eid = 12345")
        .unwrap();
    assert_eq!(hit.rows().unwrap().len(), 1);

    // ORDER BY over an unprojected column (hidden sort key).
    let out = db
        .execute("SELECT eid FROM events WHERE eid < 10 ORDER BY weight DESC, eid LIMIT 3")
        .unwrap();
    println!("\ntop-3 by (hidden) weight: {:?}", out.rows().unwrap().rows);
}

//! Durability demo: crash a writing database process and recover.
//!
//! ```text
//! cargo run --release --example durability_crash -- write /tmp/ndb   # kill -9 this
//! cargo run --release --example durability_crash -- read  /tmp/ndb   # recovers
//! ```
//!
//! `write` loads a table, trains a PREDICT model, checkpoints, then
//! keeps appending committed batches forever (printing progress) until
//! killed. `read` reopens the directory, reports what crash recovery
//! restored, and serves a prediction from the recovered model without
//! retraining.

use neurdb_core::{Database, Output};
use neurdb_wal::{DurableStoreOptions, FsyncPolicy, WalOptions};
use std::time::Duration;

fn opts() -> DurableStoreOptions {
    DurableStoreOptions {
        frames: 512,
        wal: WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Group(Duration::from_millis(1)),
            ..WalOptions::default()
        },
        ..Default::default()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let dir = args.next().unwrap_or_else(|| "/tmp/neurdb-demo".into());
    match mode.as_str() {
        "write" => write(&dir),
        "read" => read(&dir),
        _ => {
            eprintln!("usage: durability_crash <write|read> <dir>");
            std::process::exit(2);
        }
    }
}

fn write(dir: &str) {
    let mut db = Database::open_with(dir, opts()).expect("open");
    db.train_sample_budget = 2_000;
    db.execute("CREATE TABLE review (id INT PRIMARY KEY, brand INT, stars INT, score FLOAT)")
        .expect("create");
    db.execute("CREATE INDEX ON review (id)").expect("index");
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO review VALUES ({i}, {}, {}, {:.1})",
            i % 4,
            i % 5,
            (i % 5) as f64
        ))
        .expect("insert");
    }
    let Output::Prediction(p) = db
        .execute("PREDICT VALUE OF score FROM review TRAIN ON brand, stars")
        .expect("predict")
    else {
        unreachable!()
    };
    println!(
        "trained model mid={} (versions {:?})",
        p.mid,
        db.ai.models.versions(p.mid).unwrap()
    );
    db.finetune("review", "score").expect("finetune");
    let ckpt_lsn = db.checkpoint().expect("checkpoint");
    println!("checkpoint at lsn {ckpt_lsn}");
    // Keep committing batches until killed.
    let mut next_id = 1_000i64;
    loop {
        let rows: Vec<String> = (0..10)
            .map(|k| {
                let id = next_id + k;
                format!("({id}, {}, {}, {:.1})", id % 4, id % 5, (id % 5) as f64)
            })
            .collect();
        db.execute(&format!("INSERT INTO review VALUES {}", rows.join(", ")))
            .expect("batch insert");
        next_id += 10;
        let stats = db.wal_stats().unwrap();
        println!(
            "committed through id {} | wal: {} records, {} fsyncs",
            next_id - 1,
            stats.appended_records,
            stats.fsyncs
        );
    }
}

fn read(dir: &str) {
    let db = Database::open_with(dir, opts()).expect("recovery");
    let rows = db
        .execute("SELECT * FROM review")
        .expect("select")
        .rows()
        .map(|r| r.rows.len())
        .unwrap_or(0);
    let t = db.table("review").expect("table");
    println!(
        "recovered {rows} rows, indexes on {:?}, tables {:?}",
        t.indexed_columns(),
        db.table_names()
    );
    let Output::Prediction(p) = db
        .execute("PREDICT VALUE OF score FROM review WHERE id < 3 TRAIN ON brand, stars")
        .expect("predict")
    else {
        unreachable!()
    };
    println!(
        "PREDICT served by recovered model mid={} retrained={} versions={:?}",
        p.mid,
        p.train_outcome.is_some(),
        db.ai.models.versions(p.mid).unwrap()
    );
    for row in &p.result.rows {
        println!("  {row:?}");
    }
}

//! # neurdb-server demo: SQL + PREDICT over the wire
//!
//! Starts a NeurDB server on an ephemeral port and hammers it from four
//! concurrent clients, each with its own session:
//!
//! 1. One client creates the schema and bulk-loads two tables (DDL +
//!    DML through the wire protocol).
//! 2. Four clients connect concurrently; each `SET parallelism = N`
//!    with a *different* N. Sessions are isolated — each client's
//!    `EXPLAIN ANALYZE` shows its own degree of parallelism (`dop`) in
//!    the parallel-join plan, proving `SET` no longer leaks across
//!    connections.
//! 3. One client trains and serves a model with `PREDICT ... TRAIN ON *`
//!    — the paper's in-database AI path, served over the network.
//! 4. `SHOW SESSIONS` lists every live connection with its settings.
//! 5. Graceful shutdown: in-flight statements drain, every server
//!    thread is joined — no zombies.
//!
//! Run with: `cargo run --release --example sql_server`
//!
//! Minimal client usage:
//!
//! ```rust,ignore
//! use neurdb::server::{Client, Server, ServerConfig};
//! let handle = Server::start(db, "127.0.0.1:0", ServerConfig::default())?;
//! let mut c = Client::connect(handle.local_addr())?;
//! c.affected("CREATE TABLE t (a INT)")?;
//! let rows = c.query("SELECT a FROM t")?;
//! handle.shutdown();
//! ```

use neurdb::core::Database;
use neurdb::server::{Client, Response, Server, ServerConfig};
use neurdb::storage::Value;
use std::sync::Arc;
use std::thread;

const USERS: usize = 2_000;
const ORDERS: usize = 6_000;

fn text_rows(rows: &neurdb::server::RowSet) -> Vec<String> {
    rows.rows
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.clone(),
            other => format!("{other:?}"),
        })
        .collect()
}

fn main() {
    let db = Arc::new(Database::new());
    let handle =
        Server::start(db, "127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.local_addr();
    println!("neurdb-server listening on {addr}");

    // --- 1. Schema + bulk load over the wire ------------------------
    let mut loader = Client::connect(addr).expect("connect loader");
    loader
        .affected("CREATE TABLE users (id INT PRIMARY KEY, segment INT, spend FLOAT)")
        .unwrap();
    loader
        .affected("CREATE TABLE orders (oid INT PRIMARY KEY, uid INT, amount INT)")
        .unwrap();
    let mut stmt = String::from("INSERT INTO users VALUES ");
    for i in 0..USERS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {}, {}.5)", i % 8, i % 40));
    }
    loader.affected(&stmt).unwrap();
    let mut stmt = String::from("INSERT INTO orders VALUES ");
    for i in 0..ORDERS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {}, {})", i % USERS, i % 100));
    }
    loader.affected(&stmt).unwrap();
    println!("loaded {USERS} users, {ORDERS} orders through one connection");

    // --- 2. Four concurrent sessions, four different dops -----------
    let mut workers = Vec::new();
    for parallelism in 1..=4usize {
        workers.push(thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect worker");
            c.affected(&format!("SET parallelism = {parallelism}"))
                .unwrap();
            // The parallel join: probe side fans out across this
            // session's workers when parallelism > 1.
            let join = "SELECT u.segment, COUNT(*), SUM(o.amount) \
                        FROM users u, orders o \
                        WHERE u.id = o.uid AND o.amount > 10 \
                        GROUP BY u.segment";
            let rows = c.query(join).unwrap();
            assert_eq!(rows.rows.len(), 8, "eight segments");
            let plan = text_rows(&c.query(&format!("EXPLAIN ANALYZE {join}")).unwrap());
            let dop_line = plan
                .iter()
                .find(|l| l.contains("dop="))
                .cloned()
                .unwrap_or_else(|| "(no parallel operator)".into());
            println!("session parallelism={parallelism}: {}", dop_line.trim());
            if parallelism > 1 {
                assert!(
                    plan.iter().any(|l| l.contains(&format!("dop={parallelism}"))),
                    "session with parallelism={parallelism} should plan dop={parallelism}: {plan:#?}"
                );
            }
            c.close().unwrap();
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    println!("4 concurrent sessions planned 4 different dops — no SET leakage");

    // --- 3. PREDICT over the wire -----------------------------------
    match loader
        .execute(
            "PREDICT VALUE OF spend FROM users WHERE segment = 0 \
             TRAIN ON * WITH segment <> 0",
        )
        .unwrap()
    {
        Response::Prediction { mid, trained, rows } => println!(
            "PREDICT served {} rows from model {mid} (trained just now: {trained})",
            rows.rows.len()
        ),
        other => panic!("expected prediction, got {other:?}"),
    }

    // --- 4. Introspection -------------------------------------------
    let sessions = loader.query("SHOW SESSIONS").unwrap();
    println!("SHOW SESSIONS ({} live):", sessions.rows.len());
    for row in &sessions.rows {
        println!(
            "  id={:?} peer={:?} statements={:?} parallelism={:?}",
            row[0], row[1], row[2], row[3]
        );
    }
    loader.close().unwrap();

    // --- 5. Graceful shutdown ---------------------------------------
    handle.shutdown(); // drains in-flight statements, joins every thread
    println!("server shut down cleanly — all threads joined");
}

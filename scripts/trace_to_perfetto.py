#!/usr/bin/env python3
"""Turn a `SHOW TRACE <id> FORMAT json` body into a Perfetto-loadable file.

The server already emits Chrome trace-event JSON (`ph:"X"` complete
events, microsecond timebase), which Perfetto and chrome://tracing load
directly — this script validates the body, optionally pretty-prints it,
and writes it with the `.json` name Perfetto's open dialog expects.

Usage:
    # Body saved from the single `trace` column of SHOW TRACE ... FORMAT json
    scripts/trace_to_perfetto.py trace_body.json -o trace.perfetto.json

    # Or pipe it straight through
    neurdb-cli "SHOW TRACE 5-3 FORMAT json" | scripts/trace_to_perfetto.py - -o out.json

Exit status is non-zero when the body is not a well-formed Chrome trace
(missing traceEvents, events without ts/dur, etc.), so CI can gate on it.
"""

import argparse
import json
import sys


def validate(doc):
    """Check the minimal Chrome trace-event contract Perfetto needs."""
    if not isinstance(doc, dict):
        raise ValueError("top level must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "B", "E", "i"):
            raise ValueError(f"event {i} has unsupported phase {ph!r}")
        if ph == "X":
            complete += 1
            for field in ("name", "ts", "dur", "pid", "tid"):
                if field not in ev:
                    raise ValueError(f"complete event {i} missing {field!r}")
            if ev["dur"] < 0 or ev["ts"] < 0:
                raise ValueError(f"event {i} has negative ts/dur")
    if complete == 0:
        raise ValueError("no complete (ph=X) span events")
    return complete


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("input", help="trace body file, or - for stdin")
    ap.add_argument("-o", "--out", default="trace.perfetto.json",
                    help="output path (default: trace.perfetto.json)")
    ap.add_argument("--compact", action="store_true",
                    help="write compact JSON instead of pretty-printed")
    args = ap.parse_args()

    raw = sys.stdin.read() if args.input == "-" else open(args.input).read()
    # Tolerate a surrounding result-table render: find the JSON object.
    start = raw.find("{")
    if start < 0:
        print("error: no JSON object in input", file=sys.stderr)
        return 1
    try:
        doc = json.loads(raw[start:raw.rfind("}") + 1])
        spans = validate(doc)
    except ValueError as e:
        print(f"error: not a Chrome trace: {e}", file=sys.stderr)
        return 1

    with open(args.out, "w") as f:
        if args.compact:
            json.dump(doc, f, separators=(",", ":"))
        else:
            json.dump(doc, f, indent=1)
        f.write("\n")
    meta = doc.get("otherData", {})
    label = meta.get("trace_id", "?")
    print(f"wrote {args.out}: trace {label}, {spans} spans "
          f"(open at https://ui.perfetto.dev or chrome://tracing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

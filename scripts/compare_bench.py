#!/usr/bin/env python3
"""Compare a fresh benchmark-trajectory JSON against a committed baseline.

Usage:
    compare_bench.py NEW.json [OLD.json] [--threshold 0.25]

NEW.json is the freshly produced trajectory (``cargo run -p neurdb-bench
--bin trajectory``). OLD.json defaults to the highest-numbered
``BENCH_*.json`` at the repository root — the committed reference run of
the previous PR. The script prints a per-group delta table and exits
non-zero if any group's median regressed by more than the threshold
(default 25%). Groups present on only one side (workloads added or
retired between PRs) are reported and skipped, never failed.

Groups may carry extra scalar facts beyond the timing summary (the
buffer-pool groups record ``point_hit_ratio`` and friends); those are
reported as a second delta table, informational only — hit ratios are
workload facts, not regressions to gate on.
"""

import argparse
import json
import re
import sys
from pathlib import Path


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "neurdb-bench-trajectory/v1":
        sys.exit(f"error: {path}: unexpected schema {doc.get('schema')!r}")
    return doc


def default_baseline(new_path):
    """Highest-numbered BENCH_<n>.json at the repo root, excluding NEW itself."""
    root = Path(__file__).resolve().parent.parent
    best, best_n = None, -1
    for p in root.glob("BENCH_*.json"):
        if p.resolve() == Path(new_path).resolve():
            continue
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = p, int(m.group(1))
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", help="fresh trajectory JSON")
    ap.add_argument("old", nargs="?", help="baseline JSON (default: newest BENCH_*.json)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated median regression as a fraction (default 0.25)",
    )
    args = ap.parse_args()

    old_path = args.old or default_baseline(args.new)
    if old_path is None:
        print("compare_bench: no committed BENCH_*.json baseline found; nothing to compare")
        return 0

    new = load(args.new)
    old = load(old_path)
    if new.get("mode") != old.get("mode"):
        print(
            f"compare_bench: warning: mode mismatch "
            f"(new={new.get('mode')!r}, old={old.get('mode')!r}); "
            f"quick and full runs use different data sizes, deltas may be meaningless"
        )

    new_groups = new.get("groups", {})
    old_groups = old.get("groups", {})
    regressions = []
    print(f"compare_bench: {args.new} vs {old_path} (threshold {args.threshold:.0%})")
    print(f"{'group':<22} {'old median':>14} {'new median':>14} {'delta':>9}")
    for name in sorted(set(new_groups) | set(old_groups)):
        if name not in old_groups:
            print(f"{name:<22} {'-':>14} {new_groups[name]['median_ns']:>14} {'new':>9}")
            continue
        if name not in new_groups:
            print(f"{name:<22} {old_groups[name]['median_ns']:>14} {'-':>14} {'retired':>9}")
            continue
        old_ns = old_groups[name]["median_ns"]
        new_ns = new_groups[name]["median_ns"]
        delta = (new_ns - old_ns) / old_ns if old_ns else 0.0
        flag = " <-- REGRESSION" if delta > args.threshold else ""
        print(f"{name:<22} {old_ns:>14} {new_ns:>14} {delta:>+8.1%}{flag}")
        if delta > args.threshold:
            regressions.append((name, delta))

    report_extras(new_groups, old_groups)

    if regressions:
        worst = ", ".join(f"{n} ({d:+.1%})" for n, d in regressions)
        print(f"compare_bench: FAIL: median regression past threshold in: {worst}")
        return 1
    print("compare_bench: OK: no group regressed past the threshold")
    return 0


TIMING_KEYS = {"median_ns", "min_ns", "max_ns", "iters"}


def report_extras(new_groups, old_groups):
    """Informational table of non-timing group facts (hit ratios etc.)."""
    rows = []
    for name in sorted(new_groups):
        group = new_groups[name]
        for key in sorted(set(group) - TIMING_KEYS):
            old_val = old_groups.get(name, {}).get(key)
            rows.append((name, key, old_val, group[key]))
    if not rows:
        return
    print()
    print(f"{'group':<24} {'fact':>26} {'old':>10} {'new':>10} {'delta':>9}")
    for name, key, old_val, new_val in rows:
        old_s = f"{old_val:.4f}" if old_val is not None else "-"
        delta_s = f"{new_val - old_val:+.4f}" if old_val is not None else "new"
        print(f"{name:<24} {key:>26} {old_s:>10} {new_val:>10.4f} {delta_s:>9}")


if __name__ == "__main__":
    sys.exit(main())

//! # neurdb
//!
//! Workspace facade crate: re-exports the public API of every NeurDB-RS
//! subsystem and hosts the cross-crate glue that would otherwise create
//! dependency cycles (e.g. routing transaction-engine commits through the
//! write-ahead log).

pub use neurdb_cc as cc;
pub use neurdb_core as core;
pub use neurdb_engine as engine;
pub use neurdb_nn as nn;
pub use neurdb_qo as qo;
pub use neurdb_server as server;
pub use neurdb_sql as sql;
pub use neurdb_storage as storage;
pub use neurdb_txn as txn;
pub use neurdb_wal as wal;
pub use neurdb_workloads as workloads;

use neurdb_txn::{DurabilityHook, TxnId};
use neurdb_wal::{DurableStore, WalRecord};
use std::sync::Arc;

/// Routes transaction-engine commits through the write-ahead log:
/// [`neurdb_txn::TxnEngine`] calls this after validation, under the
/// write-set locks, so the commit record is durable before the new
/// versions become visible (log-before-visible commit ordering).
///
/// Lives in the facade crate because it bridges two otherwise
/// independent layers (`txn` and `wal`).
pub struct WalCommitLog {
    store: Arc<DurableStore>,
}

impl WalCommitLog {
    pub fn new(store: Arc<DurableStore>) -> Self {
        WalCommitLog { store }
    }
}

impl DurabilityHook for WalCommitLog {
    fn persist_commit(&self, txn: TxnId, writes: &[(u64, u64)]) -> Result<(), String> {
        let record = WalRecord::KvCommit {
            txn,
            writes: writes.to_vec(),
        };
        match self.store.append_record(&record) {
            Some(lsn) => self.store.wait_durable(lsn).map_err(|e| e.to_string()),
            None => Ok(()), // volatile store: nothing to persist
        }
    }
}

/// Replay committed KV writes from recovered WAL records into a
/// transaction engine, in commit (log) order. Returns the number of
/// commits applied. Each write is installed as a loaded version, so a
/// reopened engine serves exactly the durable prefix — the missing half
/// of the `KvCommit` story (commits were logged but never reloaded).
pub fn replay_kv_commits(engine: &neurdb_txn::TxnEngine, records: &[WalRecord]) -> usize {
    let mut applied = 0;
    for rec in records {
        if let WalRecord::KvCommit { writes, .. } = rec {
            for &(key, value) in writes {
                engine.load(key, value);
            }
            applied += 1;
        }
    }
    applied
}

/// Open (or create) a durable KV transaction engine in `dir`: run store
/// recovery, replay every committed KV write back into a fresh engine,
/// and wire its future commits through the WAL. Returns the store (for
/// checkpoints / crash hooks) alongside the recovered engine.
pub fn open_kv_engine(
    dir: impl AsRef<std::path::Path>,
    policy: Arc<dyn neurdb_txn::CcPolicy>,
    cfg: neurdb_txn::EngineConfig,
    opts: neurdb_wal::DurableStoreOptions,
) -> neurdb_storage::StorageResult<(Arc<DurableStore>, neurdb_txn::TxnEngine)> {
    let (store, recovered) = DurableStore::open(dir.as_ref(), opts)?;
    let store = Arc::new(store);
    let mut engine = neurdb_txn::TxnEngine::new(policy, cfg);
    replay_kv_commits(&engine, &recovered.records);
    engine.set_durability(Arc::new(WalCommitLog::new(store.clone())));
    Ok((store, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::{execute_spec, EngineConfig, Op, TwoPhaseLocking, TxnEngine, TxnSpec};
    use neurdb_wal::DurableStoreOptions;

    #[test]
    fn txn_engine_commits_flow_through_the_wal() {
        let dir = std::env::temp_dir().join(format!("neurdb-kvwal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (store, _) = DurableStore::open(&dir, DurableStoreOptions::default()).unwrap();
            let store = Arc::new(store);
            let mut engine = TxnEngine::new(Arc::new(TwoPhaseLocking), EngineConfig::default());
            engine.set_durability(Arc::new(WalCommitLog::new(store.clone())));
            for k in 0..4 {
                engine.load(k, 0);
            }
            for i in 0..10 {
                let spec = TxnSpec::new(0, vec![Op::Rmw(i % 4, 1)]);
                execute_spec(&engine, &spec).unwrap();
            }
            store.sync().unwrap();
        }
        // Reopen: every committed KV write is in the recovered records,
        // in commit order.
        let (_, app) = DurableStore::open(&dir, DurableStoreOptions::default()).unwrap();
        let kv: Vec<_> = app
            .records
            .iter()
            .filter_map(|r| match r {
                WalRecord::KvCommit { writes, .. } => Some(writes.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(kv.len(), 10, "all ten commits logged");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kv_engine_recovers_committed_writes_on_open() {
        let dir = std::env::temp_dir().join(format!("neurdb-kvrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let keys = 6u64;
        {
            let (store, engine) = open_kv_engine(
                &dir,
                Arc::new(TwoPhaseLocking),
                EngineConfig::default(),
                DurableStoreOptions::default(),
            )
            .unwrap();
            for k in 0..keys {
                engine.load(k, 0);
            }
            // Each committed txn bumps its key to a recognizable value.
            for i in 0..30u64 {
                let spec = TxnSpec::new(0, vec![Op::Write(i % keys, 100 + i)]);
                execute_spec(&engine, &spec).unwrap();
            }
            store.sync().unwrap();
            // Drop without checkpoint: recovery must come from the log.
        }
        let (_store, recovered) = open_kv_engine(
            &dir,
            Arc::new(TwoPhaseLocking),
            EngineConfig::default(),
            DurableStoreOptions::default(),
        )
        .unwrap();
        // The last committed write per key survives the "crash" (the last
        // write to key k was at i = 24 + k, value 124 + k). The replay
        // covers committed transactions only — `load` seeding bypasses
        // commit and is the caller's job, as at first boot.
        for k in 0..keys {
            assert_eq!(recovered.peek(k), Some(124 + k), "key {k}");
        }
        // And the recovered engine keeps journaling: new commits append.
        let spec = TxnSpec::new(0, vec![Op::Write(0, 999)]);
        execute_spec(&recovered, &spec).unwrap();
        assert_eq!(recovered.peek(0), Some(999));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! # neurdb
//!
//! Workspace facade crate: re-exports the public API of every NeurDB-RS
//! subsystem and hosts the cross-crate glue that would otherwise create
//! dependency cycles (e.g. routing transaction-engine commits through the
//! write-ahead log).

pub use neurdb_cc as cc;
pub use neurdb_core as core;
pub use neurdb_engine as engine;
pub use neurdb_nn as nn;
pub use neurdb_qo as qo;
pub use neurdb_sql as sql;
pub use neurdb_storage as storage;
pub use neurdb_txn as txn;
pub use neurdb_wal as wal;
pub use neurdb_workloads as workloads;

use neurdb_txn::{DurabilityHook, TxnId};
use neurdb_wal::{DurableStore, WalRecord};
use std::sync::Arc;

/// Routes transaction-engine commits through the write-ahead log:
/// [`neurdb_txn::TxnEngine`] calls this after validation, under the
/// write-set locks, so the commit record is durable before the new
/// versions become visible (log-before-visible commit ordering).
///
/// Lives in the facade crate because it bridges two otherwise
/// independent layers (`txn` and `wal`).
pub struct WalCommitLog {
    store: Arc<DurableStore>,
}

impl WalCommitLog {
    pub fn new(store: Arc<DurableStore>) -> Self {
        WalCommitLog { store }
    }
}

impl DurabilityHook for WalCommitLog {
    fn persist_commit(&self, txn: TxnId, writes: &[(u64, u64)]) -> Result<(), String> {
        let record = WalRecord::KvCommit {
            txn,
            writes: writes.to_vec(),
        };
        match self.store.append_record(&record) {
            Some(lsn) => self.store.wait_durable(lsn).map_err(|e| e.to_string()),
            None => Ok(()), // volatile store: nothing to persist
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::{execute_spec, EngineConfig, Op, TwoPhaseLocking, TxnEngine, TxnSpec};
    use neurdb_wal::DurableStoreOptions;

    #[test]
    fn txn_engine_commits_flow_through_the_wal() {
        let dir = std::env::temp_dir().join(format!("neurdb-kvwal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (store, _) = DurableStore::open(&dir, DurableStoreOptions::default()).unwrap();
            let store = Arc::new(store);
            let mut engine = TxnEngine::new(Arc::new(TwoPhaseLocking), EngineConfig::default());
            engine.set_durability(Arc::new(WalCommitLog::new(store.clone())));
            for k in 0..4 {
                engine.load(k, 0);
            }
            for i in 0..10 {
                let spec = TxnSpec::new(0, vec![Op::Rmw(i % 4, 1)]);
                execute_spec(&engine, &spec).unwrap();
            }
            store.sync().unwrap();
        }
        // Reopen: every committed KV write is in the recovered records,
        // in commit order.
        let (_, app) = DurableStore::open(&dir, DurableStoreOptions::default()).unwrap();
        let kv: Vec<_> = app
            .records
            .iter()
            .filter_map(|r| match r {
                WalRecord::KvCommit { writes, .. } => Some(writes.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(kv.len(), 10, "all ten commits logged");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

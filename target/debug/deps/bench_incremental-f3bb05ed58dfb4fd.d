/root/repo/target/debug/deps/bench_incremental-f3bb05ed58dfb4fd.d: crates/bench/benches/bench_incremental.rs

/root/repo/target/debug/deps/libbench_incremental-f3bb05ed58dfb4fd.rmeta: crates/bench/benches/bench_incremental.rs

crates/bench/benches/bench_incremental.rs:

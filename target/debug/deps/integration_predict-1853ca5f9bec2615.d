/root/repo/target/debug/deps/integration_predict-1853ca5f9bec2615.d: tests/integration_predict.rs

/root/repo/target/debug/deps/integration_predict-1853ca5f9bec2615: tests/integration_predict.rs

tests/integration_predict.rs:

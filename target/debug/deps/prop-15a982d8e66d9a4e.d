/root/repo/target/debug/deps/prop-15a982d8e66d9a4e.d: crates/nn/tests/prop.rs

/root/repo/target/debug/deps/prop-15a982d8e66d9a4e: crates/nn/tests/prop.rs

crates/nn/tests/prop.rs:

/root/repo/target/debug/deps/integration_predict-1fc690d5f4238aa8.d: tests/integration_predict.rs

/root/repo/target/debug/deps/libintegration_predict-1fc690d5f4238aa8.rmeta: tests/integration_predict.rs

tests/integration_predict.rs:

/root/repo/target/debug/deps/neurdb_nn-ec32bead9163aba1.d: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

/root/repo/target/debug/deps/libneurdb_nn-ec32bead9163aba1.rlib: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

/root/repo/target/debug/deps/libneurdb_nn-ec32bead9163aba1.rmeta: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

crates/nn/src/lib.rs:
crates/nn/src/armnet.rs:
crates/nn/src/attention.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
crates/nn/src/tree.rs:

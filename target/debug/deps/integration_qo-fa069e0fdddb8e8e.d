/root/repo/target/debug/deps/integration_qo-fa069e0fdddb8e8e.d: tests/integration_qo.rs

/root/repo/target/debug/deps/libintegration_qo-fa069e0fdddb8e8e.rmeta: tests/integration_qo.rs

tests/integration_qo.rs:

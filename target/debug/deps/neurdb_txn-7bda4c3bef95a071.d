/root/repo/target/debug/deps/neurdb_txn-7bda4c3bef95a071.d: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_txn-7bda4c3bef95a071.rmeta: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs Cargo.toml

crates/txn/src/lib.rs:
crates/txn/src/engine.rs:
crates/txn/src/metrics.rs:
crates/txn/src/policy.rs:
crates/txn/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

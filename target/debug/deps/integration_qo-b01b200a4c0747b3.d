/root/repo/target/debug/deps/integration_qo-b01b200a4c0747b3.d: tests/integration_qo.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_qo-b01b200a4c0747b3.rmeta: tests/integration_qo.rs Cargo.toml

tests/integration_qo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde-7a002b78bcc9b5f5.d: third_party/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-7a002b78bcc9b5f5.rmeta: third_party/serde/src/lib.rs Cargo.toml

third_party/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

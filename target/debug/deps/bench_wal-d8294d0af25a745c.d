/root/repo/target/debug/deps/bench_wal-d8294d0af25a745c.d: crates/bench/benches/bench_wal.rs Cargo.toml

/root/repo/target/debug/deps/libbench_wal-d8294d0af25a745c.rmeta: crates/bench/benches/bench_wal.rs Cargo.toml

crates/bench/benches/bench_wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/prop-5115250a548f8ee7.d: crates/engine/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5115250a548f8ee7.rmeta: crates/engine/tests/prop.rs Cargo.toml

crates/engine/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/neurdb_engine-50f7bf83e935aee1.d: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_engine-50f7bf83e935aee1.rmeta: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/engine.rs:
crates/engine/src/model_manager.rs:
crates/engine/src/monitor.rs:
crates/engine/src/mselection.rs:
crates/engine/src/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figures-fb225019104a65d5.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-fb225019104a65d5: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:

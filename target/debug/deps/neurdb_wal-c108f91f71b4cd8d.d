/root/repo/target/debug/deps/neurdb_wal-c108f91f71b4cd8d.d: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

/root/repo/target/debug/deps/libneurdb_wal-c108f91f71b4cd8d.rmeta: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

crates/wal/src/lib.rs:
crates/wal/src/codec.rs:
crates/wal/src/crc32.rs:
crates/wal/src/disk.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/store.rs:

/root/repo/target/debug/deps/prop-a453af5e93a8edc7.d: crates/txn/tests/prop.rs

/root/repo/target/debug/deps/prop-a453af5e93a8edc7: crates/txn/tests/prop.rs

crates/txn/tests/prop.rs:

/root/repo/target/debug/deps/neurdb_wal-1c064ba58434fa2e.d: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

/root/repo/target/debug/deps/libneurdb_wal-1c064ba58434fa2e.rlib: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

/root/repo/target/debug/deps/libneurdb_wal-1c064ba58434fa2e.rmeta: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

crates/wal/src/lib.rs:
crates/wal/src/codec.rs:
crates/wal/src/crc32.rs:
crates/wal/src/disk.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/store.rs:

/root/repo/target/debug/deps/bench_cc-8c4c7ef51e647802.d: crates/bench/benches/bench_cc.rs

/root/repo/target/debug/deps/libbench_cc-8c4c7ef51e647802.rmeta: crates/bench/benches/bench_cc.rs

crates/bench/benches/bench_cc.rs:

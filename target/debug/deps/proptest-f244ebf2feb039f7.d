/root/repo/target/debug/deps/proptest-f244ebf2feb039f7.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f244ebf2feb039f7.rlib: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f244ebf2feb039f7.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:

/root/repo/target/debug/deps/bench_incremental-1a5d537222b03d09.d: crates/bench/benches/bench_incremental.rs Cargo.toml

/root/repo/target/debug/deps/libbench_incremental-1a5d537222b03d09.rmeta: crates/bench/benches/bench_incremental.rs Cargo.toml

crates/bench/benches/bench_incremental.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figures-7532c6f4333df7f2.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-7532c6f4333df7f2: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:

/root/repo/target/debug/deps/prop-c10854671b7ee137.d: crates/engine/tests/prop.rs

/root/repo/target/debug/deps/libprop-c10854671b7ee137.rmeta: crates/engine/tests/prop.rs

crates/engine/tests/prop.rs:

/root/repo/target/debug/deps/neurdb_cc-355f05b3413caa35.d: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

/root/repo/target/debug/deps/neurdb_cc-355f05b3413caa35: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

crates/cc/src/lib.rs:
crates/cc/src/adapt.rs:
crates/cc/src/driver.rs:
crates/cc/src/encoding.rs:
crates/cc/src/model.rs:
crates/cc/src/polyjuice.rs:

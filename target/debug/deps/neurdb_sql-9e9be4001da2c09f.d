/root/repo/target/debug/deps/neurdb_sql-9e9be4001da2c09f.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

/root/repo/target/debug/deps/libneurdb_sql-9e9be4001da2c09f.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/parser.rs:
crates/sql/src/token.rs:

/root/repo/target/debug/deps/prop-964b20e4b4ffed10.d: crates/sql/tests/prop.rs

/root/repo/target/debug/deps/prop-964b20e4b4ffed10: crates/sql/tests/prop.rs

crates/sql/tests/prop.rs:

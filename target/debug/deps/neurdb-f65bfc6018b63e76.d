/root/repo/target/debug/deps/neurdb-f65bfc6018b63e76.d: src/lib.rs

/root/repo/target/debug/deps/neurdb-f65bfc6018b63e76: src/lib.rs

src/lib.rs:

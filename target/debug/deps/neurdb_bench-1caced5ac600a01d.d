/root/repo/target/debug/deps/neurdb_bench-1caced5ac600a01d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_bench-1caced5ac600a01d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/criterion-5e0b9ac30f8baa62.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5e0b9ac30f8baa62.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:

/root/repo/target/debug/deps/integration_sql-6bfd66c4a7756e51.d: tests/integration_sql.rs

/root/repo/target/debug/deps/libintegration_sql-6bfd66c4a7756e51.rmeta: tests/integration_sql.rs

tests/integration_sql.rs:

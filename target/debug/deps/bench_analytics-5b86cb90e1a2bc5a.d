/root/repo/target/debug/deps/bench_analytics-5b86cb90e1a2bc5a.d: crates/bench/benches/bench_analytics.rs

/root/repo/target/debug/deps/libbench_analytics-5b86cb90e1a2bc5a.rmeta: crates/bench/benches/bench_analytics.rs

crates/bench/benches/bench_analytics.rs:

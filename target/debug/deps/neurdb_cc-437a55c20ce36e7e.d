/root/repo/target/debug/deps/neurdb_cc-437a55c20ce36e7e.d: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

/root/repo/target/debug/deps/libneurdb_cc-437a55c20ce36e7e.rmeta: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

crates/cc/src/lib.rs:
crates/cc/src/adapt.rs:
crates/cc/src/driver.rs:
crates/cc/src/encoding.rs:
crates/cc/src/model.rs:
crates/cc/src/polyjuice.rs:

/root/repo/target/debug/deps/serde_derive-8f7bda28d97bd61c.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-8f7bda28d97bd61c.rmeta: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:

/root/repo/target/debug/deps/serde_derive-0f49420bf1633e93.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-0f49420bf1633e93.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:

/root/repo/target/debug/deps/prop-f2a6b86f0a67fb67.d: crates/sql/tests/prop.rs

/root/repo/target/debug/deps/libprop-f2a6b86f0a67fb67.rmeta: crates/sql/tests/prop.rs

crates/sql/tests/prop.rs:

/root/repo/target/debug/deps/bench_storage-7087491bfe6b0f78.d: crates/bench/benches/bench_storage.rs

/root/repo/target/debug/deps/libbench_storage-7087491bfe6b0f78.rmeta: crates/bench/benches/bench_storage.rs

crates/bench/benches/bench_storage.rs:

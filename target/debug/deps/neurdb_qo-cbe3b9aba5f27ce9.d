/root/repo/target/debug/deps/neurdb_qo-cbe3b9aba5f27ce9.d: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

/root/repo/target/debug/deps/neurdb_qo-cbe3b9aba5f27ce9: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

crates/qo/src/lib.rs:
crates/qo/src/baselines.rs:
crates/qo/src/graph.rs:
crates/qo/src/model.rs:
crates/qo/src/plan.rs:
crates/qo/src/pretrain.rs:

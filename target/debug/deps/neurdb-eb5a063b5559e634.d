/root/repo/target/debug/deps/neurdb-eb5a063b5559e634.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb-eb5a063b5559e634.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

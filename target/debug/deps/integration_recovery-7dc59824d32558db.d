/root/repo/target/debug/deps/integration_recovery-7dc59824d32558db.d: tests/integration_recovery.rs

/root/repo/target/debug/deps/integration_recovery-7dc59824d32558db: tests/integration_recovery.rs

tests/integration_recovery.rs:

/root/repo/target/debug/deps/prop-b1e61c5be3194556.d: crates/storage/tests/prop.rs

/root/repo/target/debug/deps/libprop-b1e61c5be3194556.rmeta: crates/storage/tests/prop.rs

crates/storage/tests/prop.rs:

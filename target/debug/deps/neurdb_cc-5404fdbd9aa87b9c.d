/root/repo/target/debug/deps/neurdb_cc-5404fdbd9aa87b9c.d: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

/root/repo/target/debug/deps/libneurdb_cc-5404fdbd9aa87b9c.rlib: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

/root/repo/target/debug/deps/libneurdb_cc-5404fdbd9aa87b9c.rmeta: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

crates/cc/src/lib.rs:
crates/cc/src/adapt.rs:
crates/cc/src/driver.rs:
crates/cc/src/encoding.rs:
crates/cc/src/model.rs:
crates/cc/src/polyjuice.rs:

/root/repo/target/debug/deps/prop-3c5b8393b62d1fc4.d: crates/qo/tests/prop.rs

/root/repo/target/debug/deps/prop-3c5b8393b62d1fc4: crates/qo/tests/prop.rs

crates/qo/tests/prop.rs:

/root/repo/target/debug/deps/neurdb_qo-842bcab5e1a94482.d: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

/root/repo/target/debug/deps/libneurdb_qo-842bcab5e1a94482.rlib: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

/root/repo/target/debug/deps/libneurdb_qo-842bcab5e1a94482.rmeta: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

crates/qo/src/lib.rs:
crates/qo/src/baselines.rs:
crates/qo/src/graph.rs:
crates/qo/src/model.rs:
crates/qo/src/plan.rs:
crates/qo/src/pretrain.rs:

/root/repo/target/debug/deps/integration_cc-5653131884b04cbd.d: tests/integration_cc.rs

/root/repo/target/debug/deps/libintegration_cc-5653131884b04cbd.rmeta: tests/integration_cc.rs

tests/integration_cc.rs:

/root/repo/target/debug/deps/neurdb_engine-7ddda4cfed92a816.d: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs

/root/repo/target/debug/deps/neurdb_engine-7ddda4cfed92a816: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs

crates/engine/src/lib.rs:
crates/engine/src/engine.rs:
crates/engine/src/model_manager.rs:
crates/engine/src/monitor.rs:
crates/engine/src/mselection.rs:
crates/engine/src/streaming.rs:

/root/repo/target/debug/deps/integration_cc-518e3bf6507bf941.d: tests/integration_cc.rs

/root/repo/target/debug/deps/integration_cc-518e3bf6507bf941: tests/integration_cc.rs

tests/integration_cc.rs:

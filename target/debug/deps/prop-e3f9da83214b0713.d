/root/repo/target/debug/deps/prop-e3f9da83214b0713.d: crates/nn/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-e3f9da83214b0713.rmeta: crates/nn/tests/prop.rs Cargo.toml

crates/nn/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

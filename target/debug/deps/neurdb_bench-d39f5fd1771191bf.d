/root/repo/target/debug/deps/neurdb_bench-d39f5fd1771191bf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneurdb_bench-d39f5fd1771191bf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

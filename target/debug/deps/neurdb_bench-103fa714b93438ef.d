/root/repo/target/debug/deps/neurdb_bench-103fa714b93438ef.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/neurdb_bench-103fa714b93438ef: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/neurdb_txn-2dfcffad9b583a5a.d: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

/root/repo/target/debug/deps/libneurdb_txn-2dfcffad9b583a5a.rmeta: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

crates/txn/src/lib.rs:
crates/txn/src/engine.rs:
crates/txn/src/metrics.rs:
crates/txn/src/policy.rs:
crates/txn/src/workload.rs:

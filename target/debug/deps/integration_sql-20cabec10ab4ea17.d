/root/repo/target/debug/deps/integration_sql-20cabec10ab4ea17.d: tests/integration_sql.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_sql-20cabec10ab4ea17.rmeta: tests/integration_sql.rs Cargo.toml

tests/integration_sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

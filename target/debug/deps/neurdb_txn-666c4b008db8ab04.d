/root/repo/target/debug/deps/neurdb_txn-666c4b008db8ab04.d: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

/root/repo/target/debug/deps/neurdb_txn-666c4b008db8ab04: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

crates/txn/src/lib.rs:
crates/txn/src/engine.rs:
crates/txn/src/metrics.rs:
crates/txn/src/policy.rs:
crates/txn/src/workload.rs:

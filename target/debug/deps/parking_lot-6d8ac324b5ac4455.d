/root/repo/target/debug/deps/parking_lot-6d8ac324b5ac4455.d: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-6d8ac324b5ac4455.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-6d8ac324b5ac4455.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:

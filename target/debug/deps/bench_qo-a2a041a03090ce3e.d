/root/repo/target/debug/deps/bench_qo-a2a041a03090ce3e.d: crates/bench/benches/bench_qo.rs Cargo.toml

/root/repo/target/debug/deps/libbench_qo-a2a041a03090ce3e.rmeta: crates/bench/benches/bench_qo.rs Cargo.toml

crates/bench/benches/bench_qo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

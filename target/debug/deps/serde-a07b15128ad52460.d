/root/repo/target/debug/deps/serde-a07b15128ad52460.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a07b15128ad52460.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:

/root/repo/target/debug/deps/prop-7e68bdc777b9ade7.d: crates/nn/tests/prop.rs

/root/repo/target/debug/deps/libprop-7e68bdc777b9ade7.rmeta: crates/nn/tests/prop.rs

crates/nn/tests/prop.rs:

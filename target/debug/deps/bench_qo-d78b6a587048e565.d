/root/repo/target/debug/deps/bench_qo-d78b6a587048e565.d: crates/bench/benches/bench_qo.rs

/root/repo/target/debug/deps/libbench_qo-d78b6a587048e565.rmeta: crates/bench/benches/bench_qo.rs

crates/bench/benches/bench_qo.rs:

/root/repo/target/debug/deps/prop-6da7d994dd42a781.d: crates/txn/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-6da7d994dd42a781.rmeta: crates/txn/tests/prop.rs Cargo.toml

crates/txn/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

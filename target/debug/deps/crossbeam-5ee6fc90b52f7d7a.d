/root/repo/target/debug/deps/crossbeam-5ee6fc90b52f7d7a.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-5ee6fc90b52f7d7a.rlib: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-5ee6fc90b52f7d7a.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:

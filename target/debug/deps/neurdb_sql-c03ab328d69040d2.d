/root/repo/target/debug/deps/neurdb_sql-c03ab328d69040d2.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_sql-c03ab328d69040d2.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs Cargo.toml

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/parser.rs:
crates/sql/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

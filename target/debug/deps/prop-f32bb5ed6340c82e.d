/root/repo/target/debug/deps/prop-f32bb5ed6340c82e.d: crates/engine/tests/prop.rs

/root/repo/target/debug/deps/prop-f32bb5ed6340c82e: crates/engine/tests/prop.rs

crates/engine/tests/prop.rs:

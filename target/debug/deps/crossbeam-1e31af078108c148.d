/root/repo/target/debug/deps/crossbeam-1e31af078108c148.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1e31af078108c148.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:

/root/repo/target/debug/deps/proptest-7cf15463881d6a77.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7cf15463881d6a77.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:

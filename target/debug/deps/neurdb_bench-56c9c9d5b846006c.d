/root/repo/target/debug/deps/neurdb_bench-56c9c9d5b846006c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneurdb_bench-56c9c9d5b846006c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

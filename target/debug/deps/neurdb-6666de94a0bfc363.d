/root/repo/target/debug/deps/neurdb-6666de94a0bfc363.d: src/lib.rs

/root/repo/target/debug/deps/libneurdb-6666de94a0bfc363.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/prop-f32bbf3295e64a63.d: crates/storage/tests/prop.rs

/root/repo/target/debug/deps/prop-f32bbf3295e64a63: crates/storage/tests/prop.rs

crates/storage/tests/prop.rs:

/root/repo/target/debug/deps/neurdb_workloads-348c6a93041c5870.d: crates/workloads/src/lib.rs crates/workloads/src/avazu.rs crates/workloads/src/diabetes.rs crates/workloads/src/kmeans.rs crates/workloads/src/stats.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_workloads-348c6a93041c5870.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avazu.rs crates/workloads/src/diabetes.rs crates/workloads/src/kmeans.rs crates/workloads/src/stats.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/avazu.rs:
crates/workloads/src/diabetes.rs:
crates/workloads/src/kmeans.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde-880f5af277f5e501.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/serde-880f5af277f5e501: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:

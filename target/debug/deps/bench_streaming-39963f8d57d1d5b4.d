/root/repo/target/debug/deps/bench_streaming-39963f8d57d1d5b4.d: crates/bench/benches/bench_streaming.rs

/root/repo/target/debug/deps/libbench_streaming-39963f8d57d1d5b4.rmeta: crates/bench/benches/bench_streaming.rs

crates/bench/benches/bench_streaming.rs:

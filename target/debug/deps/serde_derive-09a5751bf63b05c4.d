/root/repo/target/debug/deps/serde_derive-09a5751bf63b05c4.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-09a5751bf63b05c4.rmeta: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:

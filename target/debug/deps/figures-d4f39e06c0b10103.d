/root/repo/target/debug/deps/figures-d4f39e06c0b10103.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-d4f39e06c0b10103.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/neurdb_qo-5c2c396786945d2d.d: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_qo-5c2c396786945d2d.rmeta: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs Cargo.toml

crates/qo/src/lib.rs:
crates/qo/src/baselines.rs:
crates/qo/src/graph.rs:
crates/qo/src/model.rs:
crates/qo/src/plan.rs:
crates/qo/src/pretrain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

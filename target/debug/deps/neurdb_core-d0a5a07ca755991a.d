/root/repo/target/debug/deps/neurdb_core-d0a5a07ca755991a.d: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_core-d0a5a07ca755991a.rmeta: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analytics.rs:
crates/core/src/compare.rs:
crates/core/src/database.rs:
crates/core/src/durability.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/expr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

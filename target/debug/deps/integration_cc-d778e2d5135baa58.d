/root/repo/target/debug/deps/integration_cc-d778e2d5135baa58.d: tests/integration_cc.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_cc-d778e2d5135baa58.rmeta: tests/integration_cc.rs Cargo.toml

tests/integration_cc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

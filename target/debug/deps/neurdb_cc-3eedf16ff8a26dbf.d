/root/repo/target/debug/deps/neurdb_cc-3eedf16ff8a26dbf.d: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_cc-3eedf16ff8a26dbf.rmeta: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs Cargo.toml

crates/cc/src/lib.rs:
crates/cc/src/adapt.rs:
crates/cc/src/driver.rs:
crates/cc/src/encoding.rs:
crates/cc/src/model.rs:
crates/cc/src/polyjuice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/integration_qo-bd0bb290441a5e29.d: tests/integration_qo.rs

/root/repo/target/debug/deps/integration_qo-bd0bb290441a5e29: tests/integration_qo.rs

tests/integration_qo.rs:

/root/repo/target/debug/deps/neurdb_storage-b8c6931d69385d8e.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/libneurdb_storage-b8c6931d69385d8e.rlib: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/libneurdb_storage-b8c6931d69385d8e.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/tuple.rs:
crates/storage/src/value.rs:

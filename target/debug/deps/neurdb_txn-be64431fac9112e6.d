/root/repo/target/debug/deps/neurdb_txn-be64431fac9112e6.d: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

/root/repo/target/debug/deps/libneurdb_txn-be64431fac9112e6.rmeta: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

crates/txn/src/lib.rs:
crates/txn/src/engine.rs:
crates/txn/src/metrics.rs:
crates/txn/src/policy.rs:
crates/txn/src/workload.rs:

/root/repo/target/debug/deps/neurdb-08cd1a4b3bc1fce9.d: src/lib.rs

/root/repo/target/debug/deps/libneurdb-08cd1a4b3bc1fce9.rlib: src/lib.rs

/root/repo/target/debug/deps/libneurdb-08cd1a4b3bc1fce9.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/neurdb_nn-8b4f32e9cc13f89f.d: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

/root/repo/target/debug/deps/neurdb_nn-8b4f32e9cc13f89f: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

crates/nn/src/lib.rs:
crates/nn/src/armnet.rs:
crates/nn/src/attention.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
crates/nn/src/tree.rs:

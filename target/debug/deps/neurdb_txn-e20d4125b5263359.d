/root/repo/target/debug/deps/neurdb_txn-e20d4125b5263359.d: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

/root/repo/target/debug/deps/libneurdb_txn-e20d4125b5263359.rlib: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

/root/repo/target/debug/deps/libneurdb_txn-e20d4125b5263359.rmeta: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

crates/txn/src/lib.rs:
crates/txn/src/engine.rs:
crates/txn/src/metrics.rs:
crates/txn/src/policy.rs:
crates/txn/src/workload.rs:

/root/repo/target/debug/deps/parking_lot-929ac8b59cab67a4.d: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-929ac8b59cab67a4.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:

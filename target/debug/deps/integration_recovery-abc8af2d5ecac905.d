/root/repo/target/debug/deps/integration_recovery-abc8af2d5ecac905.d: tests/integration_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_recovery-abc8af2d5ecac905.rmeta: tests/integration_recovery.rs Cargo.toml

tests/integration_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

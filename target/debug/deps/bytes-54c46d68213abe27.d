/root/repo/target/debug/deps/bytes-54c46d68213abe27.d: third_party/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-54c46d68213abe27.rmeta: third_party/bytes/src/lib.rs

third_party/bytes/src/lib.rs:

/root/repo/target/debug/deps/figures-b9c46086d3d2e56e.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-b9c46086d3d2e56e.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/neurdb_nn-d33b691ef4c00fa9.d: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_nn-d33b691ef4c00fa9.rmeta: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/armnet.rs:
crates/nn/src/attention.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
crates/nn/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/integration_recovery-adf82028edafeb06.d: tests/integration_recovery.rs

/root/repo/target/debug/deps/libintegration_recovery-adf82028edafeb06.rmeta: tests/integration_recovery.rs

tests/integration_recovery.rs:

/root/repo/target/debug/deps/neurdb_workloads-b267e93a5c9e409a.d: crates/workloads/src/lib.rs crates/workloads/src/avazu.rs crates/workloads/src/diabetes.rs crates/workloads/src/kmeans.rs crates/workloads/src/stats.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/neurdb_workloads-b267e93a5c9e409a: crates/workloads/src/lib.rs crates/workloads/src/avazu.rs crates/workloads/src/diabetes.rs crates/workloads/src/kmeans.rs crates/workloads/src/stats.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avazu.rs:
crates/workloads/src/diabetes.rs:
crates/workloads/src/kmeans.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:

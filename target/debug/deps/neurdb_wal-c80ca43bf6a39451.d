/root/repo/target/debug/deps/neurdb_wal-c80ca43bf6a39451.d: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_wal-c80ca43bf6a39451.rmeta: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs Cargo.toml

crates/wal/src/lib.rs:
crates/wal/src/codec.rs:
crates/wal/src/crc32.rs:
crates/wal/src/disk.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

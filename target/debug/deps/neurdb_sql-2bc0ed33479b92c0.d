/root/repo/target/debug/deps/neurdb_sql-2bc0ed33479b92c0.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

/root/repo/target/debug/deps/neurdb_sql-2bc0ed33479b92c0: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/parser.rs:
crates/sql/src/token.rs:

/root/repo/target/debug/deps/bytes-074fe3517c2f1cef.d: third_party/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-074fe3517c2f1cef.rlib: third_party/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-074fe3517c2f1cef.rmeta: third_party/bytes/src/lib.rs

third_party/bytes/src/lib.rs:

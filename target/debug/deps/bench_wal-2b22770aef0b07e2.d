/root/repo/target/debug/deps/bench_wal-2b22770aef0b07e2.d: crates/bench/benches/bench_wal.rs

/root/repo/target/debug/deps/libbench_wal-2b22770aef0b07e2.rmeta: crates/bench/benches/bench_wal.rs

crates/bench/benches/bench_wal.rs:

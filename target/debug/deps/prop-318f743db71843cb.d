/root/repo/target/debug/deps/prop-318f743db71843cb.d: crates/txn/tests/prop.rs

/root/repo/target/debug/deps/libprop-318f743db71843cb.rmeta: crates/txn/tests/prop.rs

crates/txn/tests/prop.rs:

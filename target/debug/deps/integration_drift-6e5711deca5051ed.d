/root/repo/target/debug/deps/integration_drift-6e5711deca5051ed.d: tests/integration_drift.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_drift-6e5711deca5051ed.rmeta: tests/integration_drift.rs Cargo.toml

tests/integration_drift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

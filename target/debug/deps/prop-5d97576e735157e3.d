/root/repo/target/debug/deps/prop-5d97576e735157e3.d: crates/qo/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5d97576e735157e3.rmeta: crates/qo/tests/prop.rs Cargo.toml

crates/qo/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/criterion-2ddf944cfeda7cd6.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-2ddf944cfeda7cd6.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:

/root/repo/target/debug/deps/serde-4ae0751102ce611a.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4ae0751102ce611a.rlib: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4ae0751102ce611a.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:

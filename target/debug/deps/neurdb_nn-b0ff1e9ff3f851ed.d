/root/repo/target/debug/deps/neurdb_nn-b0ff1e9ff3f851ed.d: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

/root/repo/target/debug/deps/libneurdb_nn-b0ff1e9ff3f851ed.rmeta: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

crates/nn/src/lib.rs:
crates/nn/src/armnet.rs:
crates/nn/src/attention.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
crates/nn/src/tree.rs:

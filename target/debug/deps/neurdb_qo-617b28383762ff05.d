/root/repo/target/debug/deps/neurdb_qo-617b28383762ff05.d: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

/root/repo/target/debug/deps/libneurdb_qo-617b28383762ff05.rmeta: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

crates/qo/src/lib.rs:
crates/qo/src/baselines.rs:
crates/qo/src/graph.rs:
crates/qo/src/model.rs:
crates/qo/src/plan.rs:
crates/qo/src/pretrain.rs:

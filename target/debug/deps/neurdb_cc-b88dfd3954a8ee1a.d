/root/repo/target/debug/deps/neurdb_cc-b88dfd3954a8ee1a.d: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

/root/repo/target/debug/deps/libneurdb_cc-b88dfd3954a8ee1a.rmeta: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

crates/cc/src/lib.rs:
crates/cc/src/adapt.rs:
crates/cc/src/driver.rs:
crates/cc/src/encoding.rs:
crates/cc/src/model.rs:
crates/cc/src/polyjuice.rs:

/root/repo/target/debug/deps/neurdb_sql-44706e242e9c0144.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

/root/repo/target/debug/deps/libneurdb_sql-44706e242e9c0144.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

/root/repo/target/debug/deps/libneurdb_sql-44706e242e9c0144.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/parser.rs:
crates/sql/src/token.rs:

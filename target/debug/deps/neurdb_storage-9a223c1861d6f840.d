/root/repo/target/debug/deps/neurdb_storage-9a223c1861d6f840.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_storage-9a223c1861d6f840.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/tuple.rs:
crates/storage/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

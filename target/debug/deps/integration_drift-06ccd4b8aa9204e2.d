/root/repo/target/debug/deps/integration_drift-06ccd4b8aa9204e2.d: tests/integration_drift.rs

/root/repo/target/debug/deps/integration_drift-06ccd4b8aa9204e2: tests/integration_drift.rs

tests/integration_drift.rs:

/root/repo/target/debug/deps/proptest-7cbd83921790a1e7.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7cbd83921790a1e7.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:

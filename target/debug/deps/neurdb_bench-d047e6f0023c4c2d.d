/root/repo/target/debug/deps/neurdb_bench-d047e6f0023c4c2d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_bench-d047e6f0023c4c2d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/neurdb_sql-b0b38f53fd3fbc4c.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

/root/repo/target/debug/deps/libneurdb_sql-b0b38f53fd3fbc4c.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/parser.rs:
crates/sql/src/token.rs:

/root/repo/target/debug/deps/rand-311e0c34c20c2070.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-311e0c34c20c2070.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:

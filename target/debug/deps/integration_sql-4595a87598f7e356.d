/root/repo/target/debug/deps/integration_sql-4595a87598f7e356.d: tests/integration_sql.rs

/root/repo/target/debug/deps/integration_sql-4595a87598f7e356: tests/integration_sql.rs

tests/integration_sql.rs:

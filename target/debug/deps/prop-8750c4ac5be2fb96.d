/root/repo/target/debug/deps/prop-8750c4ac5be2fb96.d: crates/qo/tests/prop.rs

/root/repo/target/debug/deps/libprop-8750c4ac5be2fb96.rmeta: crates/qo/tests/prop.rs

crates/qo/tests/prop.rs:

/root/repo/target/debug/deps/prop-4b8586036d97a182.d: crates/sql/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-4b8586036d97a182.rmeta: crates/sql/tests/prop.rs Cargo.toml

crates/sql/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde-302bd7e056bb4a46.d: third_party/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-302bd7e056bb4a46.rmeta: third_party/serde/src/lib.rs Cargo.toml

third_party/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/neurdb_storage-e00d58522254d8d5.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/libneurdb_storage-e00d58522254d8d5.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/tuple.rs:
crates/storage/src/value.rs:

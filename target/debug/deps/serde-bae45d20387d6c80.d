/root/repo/target/debug/deps/serde-bae45d20387d6c80.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-bae45d20387d6c80.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:

/root/repo/target/debug/deps/neurdb_engine-a964128968d8317e.d: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb_engine-a964128968d8317e.rmeta: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/engine.rs:
crates/engine/src/model_manager.rs:
crates/engine/src/monitor.rs:
crates/engine/src/mselection.rs:
crates/engine/src/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/integration_predict-e01a849f9b493440.d: tests/integration_predict.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_predict-e01a849f9b493440.rmeta: tests/integration_predict.rs Cargo.toml

tests/integration_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

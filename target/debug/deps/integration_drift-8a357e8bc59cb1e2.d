/root/repo/target/debug/deps/integration_drift-8a357e8bc59cb1e2.d: tests/integration_drift.rs

/root/repo/target/debug/deps/libintegration_drift-8a357e8bc59cb1e2.rmeta: tests/integration_drift.rs

tests/integration_drift.rs:

/root/repo/target/debug/deps/bench_nn-ca41b7df03c73228.d: crates/bench/benches/bench_nn.rs Cargo.toml

/root/repo/target/debug/deps/libbench_nn-ca41b7df03c73228.rmeta: crates/bench/benches/bench_nn.rs Cargo.toml

crates/bench/benches/bench_nn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

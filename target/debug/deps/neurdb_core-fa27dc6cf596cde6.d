/root/repo/target/debug/deps/neurdb_core-fa27dc6cf596cde6.d: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs

/root/repo/target/debug/deps/libneurdb_core-fa27dc6cf596cde6.rlib: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs

/root/repo/target/debug/deps/libneurdb_core-fa27dc6cf596cde6.rmeta: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs

crates/core/src/lib.rs:
crates/core/src/analytics.rs:
crates/core/src/compare.rs:
crates/core/src/database.rs:
crates/core/src/durability.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/expr.rs:

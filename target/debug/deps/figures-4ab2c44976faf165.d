/root/repo/target/debug/deps/figures-4ab2c44976faf165.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-4ab2c44976faf165.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:

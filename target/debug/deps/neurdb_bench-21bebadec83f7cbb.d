/root/repo/target/debug/deps/neurdb_bench-21bebadec83f7cbb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneurdb_bench-21bebadec83f7cbb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneurdb_bench-21bebadec83f7cbb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

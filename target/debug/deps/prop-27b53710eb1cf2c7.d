/root/repo/target/debug/deps/prop-27b53710eb1cf2c7.d: crates/storage/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-27b53710eb1cf2c7.rmeta: crates/storage/tests/prop.rs Cargo.toml

crates/storage/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_streaming-cd3514b02dddd34d.d: crates/bench/benches/bench_streaming.rs Cargo.toml

/root/repo/target/debug/deps/libbench_streaming-cd3514b02dddd34d.rmeta: crates/bench/benches/bench_streaming.rs Cargo.toml

crates/bench/benches/bench_streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_nn-26fd95d84e75fc00.d: crates/bench/benches/bench_nn.rs

/root/repo/target/debug/deps/libbench_nn-26fd95d84e75fc00.rmeta: crates/bench/benches/bench_nn.rs

crates/bench/benches/bench_nn.rs:

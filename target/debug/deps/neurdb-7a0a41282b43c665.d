/root/repo/target/debug/deps/neurdb-7a0a41282b43c665.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneurdb-7a0a41282b43c665.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_storage-ba82cdf322c3e973.d: crates/bench/benches/bench_storage.rs Cargo.toml

/root/repo/target/debug/deps/libbench_storage-ba82cdf322c3e973.rmeta: crates/bench/benches/bench_storage.rs Cargo.toml

crates/bench/benches/bench_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

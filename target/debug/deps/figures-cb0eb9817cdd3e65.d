/root/repo/target/debug/deps/figures-cb0eb9817cdd3e65.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-cb0eb9817cdd3e65.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:

/root/repo/target/debug/deps/neurdb-9157aa9a221bcbbb.d: src/lib.rs

/root/repo/target/debug/deps/libneurdb-9157aa9a221bcbbb.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/bench_analytics-9447aeacecd74f26.d: crates/bench/benches/bench_analytics.rs Cargo.toml

/root/repo/target/debug/deps/libbench_analytics-9447aeacecd74f26.rmeta: crates/bench/benches/bench_analytics.rs Cargo.toml

crates/bench/benches/bench_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_cc-53e9cfc32b06c723.d: crates/bench/benches/bench_cc.rs Cargo.toml

/root/repo/target/debug/deps/libbench_cc-53e9cfc32b06c723.rmeta: crates/bench/benches/bench_cc.rs Cargo.toml

crates/bench/benches/bench_cc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

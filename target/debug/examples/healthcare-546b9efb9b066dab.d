/root/repo/target/debug/examples/healthcare-546b9efb9b066dab.d: examples/healthcare.rs Cargo.toml

/root/repo/target/debug/examples/libhealthcare-546b9efb9b066dab.rmeta: examples/healthcare.rs Cargo.toml

examples/healthcare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/healthcare-b40e6b412faf756c.d: examples/healthcare.rs

/root/repo/target/debug/examples/healthcare-b40e6b412faf756c: examples/healthcare.rs

examples/healthcare.rs:

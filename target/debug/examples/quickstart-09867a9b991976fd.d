/root/repo/target/debug/examples/quickstart-09867a9b991976fd.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-09867a9b991976fd.rmeta: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/ecommerce_ctr-fad1d0f2af6acffa.d: examples/ecommerce_ctr.rs

/root/repo/target/debug/examples/ecommerce_ctr-fad1d0f2af6acffa: examples/ecommerce_ctr.rs

examples/ecommerce_ctr.rs:

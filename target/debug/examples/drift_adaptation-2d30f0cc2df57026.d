/root/repo/target/debug/examples/drift_adaptation-2d30f0cc2df57026.d: examples/drift_adaptation.rs

/root/repo/target/debug/examples/libdrift_adaptation-2d30f0cc2df57026.rmeta: examples/drift_adaptation.rs

examples/drift_adaptation.rs:

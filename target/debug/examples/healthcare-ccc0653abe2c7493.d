/root/repo/target/debug/examples/healthcare-ccc0653abe2c7493.d: examples/healthcare.rs

/root/repo/target/debug/examples/libhealthcare-ccc0653abe2c7493.rmeta: examples/healthcare.rs

examples/healthcare.rs:

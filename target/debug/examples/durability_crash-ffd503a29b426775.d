/root/repo/target/debug/examples/durability_crash-ffd503a29b426775.d: examples/durability_crash.rs Cargo.toml

/root/repo/target/debug/examples/libdurability_crash-ffd503a29b426775.rmeta: examples/durability_crash.rs Cargo.toml

examples/durability_crash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

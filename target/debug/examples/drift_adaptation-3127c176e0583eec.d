/root/repo/target/debug/examples/drift_adaptation-3127c176e0583eec.d: examples/drift_adaptation.rs Cargo.toml

/root/repo/target/debug/examples/libdrift_adaptation-3127c176e0583eec.rmeta: examples/drift_adaptation.rs Cargo.toml

examples/drift_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/drift_adaptation-ee2f8cacda904c42.d: examples/drift_adaptation.rs

/root/repo/target/debug/examples/drift_adaptation-ee2f8cacda904c42: examples/drift_adaptation.rs

examples/drift_adaptation.rs:

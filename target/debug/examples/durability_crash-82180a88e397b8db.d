/root/repo/target/debug/examples/durability_crash-82180a88e397b8db.d: examples/durability_crash.rs

/root/repo/target/debug/examples/libdurability_crash-82180a88e397b8db.rmeta: examples/durability_crash.rs

examples/durability_crash.rs:

/root/repo/target/debug/examples/durability_crash-4157d2b23ec9311c.d: examples/durability_crash.rs

/root/repo/target/debug/examples/durability_crash-4157d2b23ec9311c: examples/durability_crash.rs

examples/durability_crash.rs:

/root/repo/target/debug/examples/quickstart-f8af3a1bebf23e3c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f8af3a1bebf23e3c: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/ecommerce_ctr-9c66815dc1537d44.d: examples/ecommerce_ctr.rs Cargo.toml

/root/repo/target/debug/examples/libecommerce_ctr-9c66815dc1537d44.rmeta: examples/ecommerce_ctr.rs Cargo.toml

examples/ecommerce_ctr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

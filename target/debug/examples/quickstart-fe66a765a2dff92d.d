/root/repo/target/debug/examples/quickstart-fe66a765a2dff92d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-fe66a765a2dff92d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/ecommerce_ctr-d5004e0d07d5cb97.d: examples/ecommerce_ctr.rs

/root/repo/target/debug/examples/libecommerce_ctr-d5004e0d07d5cb97.rmeta: examples/ecommerce_ctr.rs

examples/ecommerce_ctr.rs:

/root/repo/target/release/deps/serde_derive-4314a4f736bbfcdd.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4314a4f736bbfcdd.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:

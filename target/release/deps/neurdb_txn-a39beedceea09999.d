/root/repo/target/release/deps/neurdb_txn-a39beedceea09999.d: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

/root/repo/target/release/deps/libneurdb_txn-a39beedceea09999.rlib: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

/root/repo/target/release/deps/libneurdb_txn-a39beedceea09999.rmeta: crates/txn/src/lib.rs crates/txn/src/engine.rs crates/txn/src/metrics.rs crates/txn/src/policy.rs crates/txn/src/workload.rs

crates/txn/src/lib.rs:
crates/txn/src/engine.rs:
crates/txn/src/metrics.rs:
crates/txn/src/policy.rs:
crates/txn/src/workload.rs:

/root/repo/target/release/deps/neurdb_sql-2ec52ac4da90e390.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

/root/repo/target/release/deps/libneurdb_sql-2ec52ac4da90e390.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

/root/repo/target/release/deps/libneurdb_sql-2ec52ac4da90e390.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/parser.rs crates/sql/src/token.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/parser.rs:
crates/sql/src/token.rs:

/root/repo/target/release/deps/neurdb_nn-b31b8469f53fbc13.d: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

/root/repo/target/release/deps/libneurdb_nn-b31b8469f53fbc13.rlib: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

/root/repo/target/release/deps/libneurdb_nn-b31b8469f53fbc13.rmeta: crates/nn/src/lib.rs crates/nn/src/armnet.rs crates/nn/src/attention.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs crates/nn/src/tree.rs

crates/nn/src/lib.rs:
crates/nn/src/armnet.rs:
crates/nn/src/attention.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
crates/nn/src/tree.rs:

/root/repo/target/release/deps/neurdb_engine-69297e84cf322477.d: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs

/root/repo/target/release/deps/libneurdb_engine-69297e84cf322477.rlib: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs

/root/repo/target/release/deps/libneurdb_engine-69297e84cf322477.rmeta: crates/engine/src/lib.rs crates/engine/src/engine.rs crates/engine/src/model_manager.rs crates/engine/src/monitor.rs crates/engine/src/mselection.rs crates/engine/src/streaming.rs

crates/engine/src/lib.rs:
crates/engine/src/engine.rs:
crates/engine/src/model_manager.rs:
crates/engine/src/monitor.rs:
crates/engine/src/mselection.rs:
crates/engine/src/streaming.rs:

/root/repo/target/release/deps/neurdb-59094f1217d0a513.d: src/lib.rs

/root/repo/target/release/deps/libneurdb-59094f1217d0a513.rlib: src/lib.rs

/root/repo/target/release/deps/libneurdb-59094f1217d0a513.rmeta: src/lib.rs

src/lib.rs:

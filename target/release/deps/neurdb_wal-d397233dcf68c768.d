/root/repo/target/release/deps/neurdb_wal-d397233dcf68c768.d: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

/root/repo/target/release/deps/libneurdb_wal-d397233dcf68c768.rlib: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

/root/repo/target/release/deps/libneurdb_wal-d397233dcf68c768.rmeta: crates/wal/src/lib.rs crates/wal/src/codec.rs crates/wal/src/crc32.rs crates/wal/src/disk.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/store.rs

crates/wal/src/lib.rs:
crates/wal/src/codec.rs:
crates/wal/src/crc32.rs:
crates/wal/src/disk.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/store.rs:

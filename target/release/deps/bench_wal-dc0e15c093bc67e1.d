/root/repo/target/release/deps/bench_wal-dc0e15c093bc67e1.d: crates/bench/benches/bench_wal.rs

/root/repo/target/release/deps/bench_wal-dc0e15c093bc67e1: crates/bench/benches/bench_wal.rs

crates/bench/benches/bench_wal.rs:

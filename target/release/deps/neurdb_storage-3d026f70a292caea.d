/root/repo/target/release/deps/neurdb_storage-3d026f70a292caea.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

/root/repo/target/release/deps/libneurdb_storage-3d026f70a292caea.rlib: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

/root/repo/target/release/deps/libneurdb_storage-3d026f70a292caea.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/tuple.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/tuple.rs:
crates/storage/src/value.rs:

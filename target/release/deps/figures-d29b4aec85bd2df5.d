/root/repo/target/release/deps/figures-d29b4aec85bd2df5.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-d29b4aec85bd2df5: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:

/root/repo/target/release/deps/neurdb_core-c8854249ff17a550.d: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs

/root/repo/target/release/deps/libneurdb_core-c8854249ff17a550.rlib: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs

/root/repo/target/release/deps/libneurdb_core-c8854249ff17a550.rmeta: crates/core/src/lib.rs crates/core/src/analytics.rs crates/core/src/compare.rs crates/core/src/database.rs crates/core/src/durability.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/expr.rs

crates/core/src/lib.rs:
crates/core/src/analytics.rs:
crates/core/src/compare.rs:
crates/core/src/database.rs:
crates/core/src/durability.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/expr.rs:

/root/repo/target/release/deps/neurdb_bench-1b94976a1d43e706.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libneurdb_bench-1b94976a1d43e706.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libneurdb_bench-1b94976a1d43e706.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/release/deps/serde-53688061084e81df.d: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-53688061084e81df.rlib: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-53688061084e81df.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:

/root/repo/target/release/deps/crossbeam-fededd02f6acc14a.d: third_party/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-fededd02f6acc14a.rlib: third_party/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-fededd02f6acc14a.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:

/root/repo/target/release/deps/neurdb_qo-f1532b415f0bcfe7.d: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

/root/repo/target/release/deps/libneurdb_qo-f1532b415f0bcfe7.rlib: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

/root/repo/target/release/deps/libneurdb_qo-f1532b415f0bcfe7.rmeta: crates/qo/src/lib.rs crates/qo/src/baselines.rs crates/qo/src/graph.rs crates/qo/src/model.rs crates/qo/src/plan.rs crates/qo/src/pretrain.rs

crates/qo/src/lib.rs:
crates/qo/src/baselines.rs:
crates/qo/src/graph.rs:
crates/qo/src/model.rs:
crates/qo/src/plan.rs:
crates/qo/src/pretrain.rs:

/root/repo/target/release/deps/bytes-ab4a1675633c13cf.d: third_party/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ab4a1675633c13cf.rlib: third_party/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ab4a1675633c13cf.rmeta: third_party/bytes/src/lib.rs

third_party/bytes/src/lib.rs:

/root/repo/target/release/deps/neurdb_workloads-865761d243918130.d: crates/workloads/src/lib.rs crates/workloads/src/avazu.rs crates/workloads/src/diabetes.rs crates/workloads/src/kmeans.rs crates/workloads/src/stats.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libneurdb_workloads-865761d243918130.rlib: crates/workloads/src/lib.rs crates/workloads/src/avazu.rs crates/workloads/src/diabetes.rs crates/workloads/src/kmeans.rs crates/workloads/src/stats.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libneurdb_workloads-865761d243918130.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avazu.rs crates/workloads/src/diabetes.rs crates/workloads/src/kmeans.rs crates/workloads/src/stats.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avazu.rs:
crates/workloads/src/diabetes.rs:
crates/workloads/src/kmeans.rs:
crates/workloads/src/stats.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:

/root/repo/target/release/deps/neurdb_cc-c0feecfa5e49300f.d: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

/root/repo/target/release/deps/libneurdb_cc-c0feecfa5e49300f.rlib: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

/root/repo/target/release/deps/libneurdb_cc-c0feecfa5e49300f.rmeta: crates/cc/src/lib.rs crates/cc/src/adapt.rs crates/cc/src/driver.rs crates/cc/src/encoding.rs crates/cc/src/model.rs crates/cc/src/polyjuice.rs

crates/cc/src/lib.rs:
crates/cc/src/adapt.rs:
crates/cc/src/driver.rs:
crates/cc/src/encoding.rs:
crates/cc/src/model.rs:
crates/cc/src/polyjuice.rs:

/root/repo/target/release/libbytes.rlib: /root/repo/third_party/bytes/src/lib.rs

/root/repo/target/release/libcriterion.rlib: /root/repo/third_party/criterion/src/lib.rs

/root/repo/target/release/libproptest.rlib: /root/repo/third_party/proptest/src/lib.rs

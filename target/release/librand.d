/root/repo/target/release/librand.rlib: /root/repo/third_party/rand/src/lib.rs

/root/repo/target/release/libcrossbeam.rlib: /root/repo/third_party/crossbeam/src/lib.rs

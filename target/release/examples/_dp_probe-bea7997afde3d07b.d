/root/repo/target/release/examples/_dp_probe-bea7997afde3d07b.d: examples/_dp_probe.rs

/root/repo/target/release/examples/_dp_probe-bea7997afde3d07b: examples/_dp_probe.rs

examples/_dp_probe.rs:

/root/repo/target/release/examples/durability_crash-72c072a5a663a2b7.d: examples/durability_crash.rs

/root/repo/target/release/examples/durability_crash-72c072a5a663a2b7: examples/durability_crash.rs

examples/durability_crash.rs:

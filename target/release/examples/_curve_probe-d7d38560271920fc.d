/root/repo/target/release/examples/_curve_probe-d7d38560271920fc.d: examples/_curve_probe.rs

/root/repo/target/release/examples/_curve_probe-d7d38560271920fc: examples/_curve_probe.rs

examples/_curve_probe.rs:

/root/repo/target/release/examples/_audit-f741e4405b53437c.d: examples/_audit.rs

/root/repo/target/release/examples/_audit-f741e4405b53437c: examples/_audit.rs

examples/_audit.rs:

//! Property-based tests for the storage substrate, including crash
//! recovery through the `neurdb-wal` durable store (a dev-dependency:
//! `wal` sits above `storage`, and cargo permits dev-dep cycles).

use neurdb_storage::{
    BTreeIndex, ColumnDef, DataType, Histogram, Page, RecordId, Schema, Tuple, Value,
};
use neurdb_wal::{DurableStore, DurableStoreOptions, FsyncPolicy, WalOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; NaN breaks equality round-trips by design.
        (-1e15f64..1e15).prop_map(Value::Float),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::Text),
    ]
}

fn type_of(v: &Value) -> DataType {
    match v {
        Value::Null => DataType::Int, // arbitrary; nulls fit any column
        Value::Bool(_) => DataType::Bool,
        Value::Int(_) => DataType::Int,
        Value::Float(_) => DataType::Float,
        Value::Text(_) => DataType::Text,
    }
}

proptest! {
    /// Tuple encode/decode is the identity for schema-compatible rows.
    #[test]
    fn tuple_codec_roundtrip(values in prop::collection::vec(arb_value(), 1..12)) {
        let types: Vec<DataType> = values.iter().map(type_of).collect();
        let t = Tuple::new(values);
        let enc = t.encode(&types).unwrap();
        let dec = Tuple::decode(&enc, &types).unwrap();
        prop_assert_eq!(t, dec);
    }

    /// A page's live tuples survive arbitrary insert/delete interleavings.
    #[test]
    fn page_tracks_live_set(ops in prop::collection::vec((any::<bool>(), 1usize..64), 1..120)) {
        let mut page = Page::new();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        for (i, (insert, size)) in ops.into_iter().enumerate() {
            if insert || live.is_empty() {
                let payload = vec![(i % 251) as u8; size];
                if let Ok(slot) = page.insert(&payload) {
                    live.retain(|(s, _)| *s != slot);
                    live.push((slot, payload));
                }
            } else {
                let (slot, _) = live.remove(i % live.len());
                page.delete(slot).unwrap();
            }
        }
        prop_assert_eq!(page.live_count(), live.len());
        for (slot, payload) in &live {
            prop_assert_eq!(page.get(*slot).unwrap(), &payload[..]);
        }
    }

    /// The B-tree behaves exactly like a sorted map of posting lists.
    #[test]
    fn btree_matches_btreemap(
        keys in prop::collection::vec(-500i64..500, 1..400),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..50),
    ) {
        let mut tree = BTreeIndex::with_order(8);
        let mut model: BTreeMap<i64, Vec<RecordId>> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let rid = RecordId::new(i as u64, 0);
            tree.insert(Value::Int(*k), rid);
            model.entry(*k).or_default().push(rid);
        }
        for idx in removals {
            let i = idx.index(keys.len());
            let k = keys[i];
            let rid = RecordId::new(i as u64, 0);
            let in_model = model.get_mut(&k).map(|v| {
                if let Some(pos) = v.iter().position(|r| *r == rid) {
                    v.remove(pos);
                    true
                } else {
                    false
                }
            }).unwrap_or(false);
            if in_model && model[&k].is_empty() {
                model.remove(&k);
            }
            prop_assert_eq!(tree.remove(&Value::Int(k), rid), in_model);
        }
        // Point lookups agree.
        for k in -500i64..500 {
            let mut got = tree.get(&Value::Int(k));
            got.sort();
            let mut want = model.get(&k).cloned().unwrap_or_default();
            want.sort();
            prop_assert_eq!(got, want);
        }
        // Full scan is key-ordered and complete.
        let scan = tree.range(None, None);
        let total: usize = model.values().map(|v| v.len()).sum();
        prop_assert_eq!(scan.len(), total);
        for w in scan.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    /// Histogram CDF is monotone and hits 0/1 at the extremes.
    #[test]
    fn histogram_cdf_monotone(samples in prop::collection::vec(-1e6f64..1e6, 2..500)) {
        let h = Histogram::build(samples.clone(), 8).unwrap();
        prop_assert_eq!(h.cdf(h.min - 1.0), 0.0);
        prop_assert_eq!(h.cdf(h.max + 1.0), 1.0);
        let mut prev = 0.0;
        for i in 0..=50 {
            let x = h.min + (h.max - h.min) * i as f64 / 50.0;
            let c = h.cdf(x);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            prop_assert!(c + 1e-9 >= prev, "CDF decreased at {x}: {c} < {prev}");
            prev = c;
        }
    }

    /// Crash recovery: a random committed op sequence, a crash at a
    /// random WAL position (with the tail past it lost, possibly torn),
    /// and a reopen yield exactly the durable prefix — identical table
    /// contents and identical index lookups, with nothing uncommitted.
    #[test]
    fn random_ops_crash_recover_roundtrip(
        ops in prop::collection::vec((0u8..10, 0i64..40, -1000i64..1000), 1..60),
        crash_frac in 0.05f64..1.0,
        torn in any::<bool>(),
        ckpt_at in any::<prop::sample::Index>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "neurdb-storage-prop-{}",
            std::process::id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = || DurableStoreOptions {
            frames: 16,
            wal: WalOptions { segment_bytes: 8 << 10, fsync: FsyncPolicy::Never, ..WalOptions::default() },
            ..Default::default()
        };
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ]);
        let row = |k: i64, v: i64| Tuple::new(vec![Value::Int(k), Value::Int(v)]);
        // Digest = sorted rows + per-key index lookups (sorted).
        let digest = |store: &DurableStore| -> Vec<String> {
            let mut out = Vec::new();
            if let Some(t) = store.table("t") {
                let mut rows: Vec<String> =
                    t.scan().unwrap().iter().map(|(_, r)| format!("{r:?}")).collect();
                rows.sort();
                out.append(&mut rows);
                if t.has_index(0) {
                    for k in 0..40 {
                        let mut hits: Vec<String> = t
                            .lookup(0, &Value::Int(k))
                            .unwrap()
                            .iter()
                            .map(|(_, r)| format!("{r:?}"))
                            .collect();
                        hits.sort();
                        out.push(format!("idx {k}: {hits:?}"));
                    }
                }
            }
            out
        };

        // Run: every op is its own committed transaction; snapshot the
        // digest + record count after each commit.
        let mut snapshots: Vec<(u64, Vec<String>)> = Vec::new();
        let ckpt_step = ckpt_at.index(ops.len());
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "t", schema.clone()).unwrap();
            store.create_index(txn, "t", 0).unwrap();
            store.commit(txn).unwrap();
            snapshots.push((store.wal_stats().unwrap().appended_records, digest(&store)));
            for (i, (kind, k, v)) in ops.iter().enumerate() {
                let t = store.table("t").unwrap();
                let txn = store.begin();
                match kind {
                    0..=4 => {
                        store.insert(txn, "t", row(*k, *v)).unwrap();
                    }
                    5..=6 => {
                        if let Some((rid, _)) = t.lookup(0, &Value::Int(*k)).unwrap().first() {
                            store.update(txn, "t", *rid, row(*k, v.wrapping_add(1))).unwrap();
                        }
                    }
                    _ => {
                        if let Some((rid, _)) = t.lookup(0, &Value::Int(*k)).unwrap().first() {
                            store.delete(txn, "t", *rid).unwrap();
                        }
                    }
                }
                store.commit(txn).unwrap();
                if i == ckpt_step {
                    store.checkpoint(Vec::new).unwrap();
                }
                snapshots.push((store.wal_stats().unwrap().appended_records, digest(&store)));
            }
        }
        let total = snapshots.last().unwrap().0;

        // Crash run: same script, tail past `crash_at` lost.
        let crash_at = ((total as f64 * crash_frac) as u64).max(1);
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            store.lose_after_records(crash_at, torn);
            let txn = store.begin();
            store.create_table(txn, "t", schema.clone()).unwrap();
            store.create_index(txn, "t", 0).unwrap();
            store.commit(txn).unwrap();
            for (i, (kind, k, v)) in ops.iter().enumerate() {
                let t = store.table("t").unwrap();
                let txn = store.begin();
                match kind {
                    0..=4 => {
                        store.insert(txn, "t", row(*k, *v)).unwrap();
                    }
                    5..=6 => {
                        if let Some((rid, _)) = t.lookup(0, &Value::Int(*k)).unwrap().first() {
                            store.update(txn, "t", *rid, row(*k, v.wrapping_add(1))).unwrap();
                        }
                    }
                    _ => {
                        if let Some((rid, _)) = t.lookup(0, &Value::Int(*k)).unwrap().first() {
                            store.delete(txn, "t", *rid).unwrap();
                        }
                    }
                }
                store.commit(txn).unwrap();
                // Checkpoints cannot outrun a power failure: only taken
                // safely before the crash point.
                if i == ckpt_step
                    && store.wal_stats().unwrap().appended_records + 8 < crash_at
                {
                    store.checkpoint(Vec::new).unwrap();
                }
            }
            // Crash: drop with no clean shutdown.
        }
        let (store, _) = DurableStore::open(&dir, opts()).unwrap();
        let expected = snapshots.iter().rev().find(|(r, _)| *r <= crash_at);
        match expected {
            Some((_, want)) => prop_assert_eq!(&digest(&store), want),
            None => prop_assert!(store.table("t").is_none()),
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Value total order: antisymmetric & transitive over random triples.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        // Antisymmetry.
        match a.total_cmp(&b) {
            Less => prop_assert_eq!(b.total_cmp(&a), Greater),
            Greater => prop_assert_eq!(b.total_cmp(&a), Less),
            Equal => prop_assert_eq!(b.total_cmp(&a), Equal),
        }
        // Transitivity (only the <= chain needs checking for a total order
        // validated pairwise).
        if a.total_cmp(&b) != Greater && b.total_cmp(&c) != Greater {
            prop_assert!(a.total_cmp(&c) != Greater);
        }
    }
}

//! Concurrency and equivalence suites for the sharded buffer pool:
//! deterministic multi-thread stress under capacity pressure, a
//! flush-then-reopen durability round trip over a real file disk, and
//! property tests proving all replacement policies serve identical
//! contents for identical access traces.

use neurdb_storage::{
    AccessHint, BufferConfig, BufferPool, DiskBackend, DiskManager, Page, PolicyKind,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

fn pool_with(capacity: usize, shards: usize, policy: PolicyKind) -> BufferPool {
    BufferPool::with_config(
        Arc::new(DiskManager::new()),
        BufferConfig {
            shards,
            capacity,
            policy,
            scan_resistant: true,
        },
    )
}

/// Each page stores one little-endian u64 counter in slot 0.
fn init_counter_pages(pool: &BufferPool, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| p.insert(&0u64.to_le_bytes()).unwrap())
                .unwrap();
            id
        })
        .collect()
}

fn read_counter(pool: &BufferPool, id: u64) -> u64 {
    pool.with_page(id, |p| {
        u64::from_le_bytes(p.get(0).unwrap().try_into().unwrap())
    })
    .unwrap()
}

/// N threads doing mixed reads/writes/allocations across shards with the
/// pool far smaller than the page set: no increment may be lost, and a
/// final `flush_all` must land every counter on disk.
#[test]
fn concurrent_mixed_ops_lose_no_writes() {
    for policy in PolicyKind::ALL {
        let disk = Arc::new(DiskManager::new());
        let pool = Arc::new(BufferPool::with_config(
            disk.clone(),
            BufferConfig {
                shards: 4,
                capacity: 8, // 64 counter pages >> 8 frames: constant eviction
                policy,
                scan_resistant: true,
            },
        ));
        const THREADS: usize = 8;
        const PAGES_PER_THREAD: usize = 8;
        const INCREMENTS: usize = 320; // divisible by PAGES_PER_THREAD
        let pages = init_counter_pages(&pool, THREADS * PAGES_PER_THREAD);

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = pool.clone();
                let mine: Vec<u64> =
                    pages[t * PAGES_PER_THREAD..(t + 1) * PAGES_PER_THREAD].to_vec();
                let all = pages.clone();
                thread::spawn(move || {
                    for i in 0..INCREMENTS {
                        // Write my own pages (disjoint ownership: the sum
                        // of increments is exact, not racy).
                        let target = mine[i % mine.len()];
                        pool.with_page_mut(target, |p| {
                            let v = u64::from_le_bytes(p.get(0).unwrap().try_into().unwrap());
                            p.update(0, &(v + 1).to_le_bytes()).unwrap();
                        })
                        .unwrap();
                        // Read somebody's page with a mixed hint and an
                        // occasional allocation, to churn the shards.
                        let other = all[(i * 7 + t * 13) % all.len()];
                        let hint = match i % 3 {
                            0 => AccessHint::Point,
                            1 => AccessHint::Sequential,
                            _ => AccessHint::Index,
                        };
                        pool.with_page_hint(other, hint, |p| p.live_count())
                            .unwrap();
                        if i % 97 == 0 {
                            pool.allocate_page().unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let expected = (INCREMENTS / PAGES_PER_THREAD) as u64;
        for &id in &pages {
            assert_eq!(
                read_counter(&pool, id),
                expected,
                "policy {policy:?}: lost increment on page {id}"
            );
        }
        // Flush everything and verify the raw disk images agree.
        pool.flush_all().unwrap();
        assert_eq!(pool.dirty_count(), 0, "policy {policy:?}");
        for &id in &pages {
            let page = Page::from_bytes(&disk.read(id).unwrap()).unwrap();
            let v = u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap());
            assert_eq!(v, expected, "policy {policy:?}: stale flush of page {id}");
        }
    }
}

/// Concurrent writers racing a concurrent flusher, then a reopen over the
/// same file disk: every committed increment must be on disk once the
/// last flush completes (the copy-out/re-verify flush cannot lose a write
/// that lands while it is off the latch).
#[test]
fn flush_race_then_reopen_over_file_disk() {
    let dir = std::env::temp_dir().join(format!("neurdb-bufstress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.ndb");

    const PAGES: usize = 24;
    const THREADS: usize = 4;
    const INCREMENTS: usize = 396; // divisible by PAGES / THREADS = 6 pages each
    {
        let disk = Arc::new(neurdb_wal::FileDisk::open(&path).unwrap());
        let pool = Arc::new(BufferPool::with_config(
            disk,
            BufferConfig {
                shards: 4,
                capacity: 6,
                policy: PolicyKind::Sieve,
                scan_resistant: true,
            },
        ));
        let pages = init_counter_pages(&pool, PAGES);
        let writers: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = pool.clone();
                let mine: Vec<u64> = pages.iter().copied().skip(t).step_by(THREADS).collect();
                thread::spawn(move || {
                    for i in 0..INCREMENTS {
                        let target = mine[i % mine.len()];
                        pool.with_page_mut(target, |p| {
                            let v = u64::from_le_bytes(p.get(0).unwrap().try_into().unwrap());
                            p.update(0, &(v + 1).to_le_bytes()).unwrap();
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        // Flush concurrently with the writers, repeatedly.
        let flusher = {
            let pool = pool.clone();
            thread::spawn(move || {
                for _ in 0..20 {
                    pool.flush_all().unwrap();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        flusher.join().unwrap();
        // Quiesced final flush: everything must reach the file.
        pool.flush_all_and_sync().unwrap();
        assert_eq!(pool.dirty_count(), 0);
    }
    // Reopen the file with a fresh pool: no lost writes.
    let disk = Arc::new(neurdb_wal::FileDisk::open(&path).unwrap());
    let pool = BufferPool::new(disk, 16);
    let expected = (THREADS * INCREMENTS / PAGES) as u64;
    for id in 0..PAGES as u64 {
        assert_eq!(
            read_counter(&pool, id),
            expected,
            "page {id} lost writes across reopen"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One op of a single-threaded model trace.
#[derive(Debug, Clone)]
enum TraceOp {
    Read { page: usize, hint: u8 },
    Write { page: usize, value: u64 },
}

fn trace_strategy(pages: usize, len: usize) -> impl Strategy<Value = Vec<TraceOp>> {
    let op = prop_oneof![
        (0..pages, 0u8..3).prop_map(|(page, hint)| TraceOp::Read { page, hint }),
        (0..pages, any::<u64>()).prop_map(|(page, value)| TraceOp::Write { page, value }),
    ];
    proptest::collection::vec(op, 1..len)
}

proptest! {
    /// Against a `Vec<u64>` model: every read through every policy (and
    /// both shard geometries) returns the model's value, under constant
    /// eviction pressure.
    #[test]
    fn policies_match_model_under_random_traces(trace in trace_strategy(20, 120)) {
        for policy in PolicyKind::ALL {
            for shards in [1usize, 4] {
                let pool = pool_with(5, shards, policy);
                let ids = init_counter_pages(&pool, 20);
                let mut model = [0u64; 20];
                for op in &trace {
                    match *op {
                        TraceOp::Write { page, value } => {
                            model[page] = value;
                            pool.with_page_mut(ids[page], |p| {
                                p.update(0, &value.to_le_bytes()).unwrap()
                            }).unwrap();
                        }
                        TraceOp::Read { page, hint } => {
                            let hint = match hint {
                                0 => AccessHint::Point,
                                1 => AccessHint::Sequential,
                                _ => AccessHint::Index,
                            };
                            let got = pool.with_page_hint(ids[page], hint, |p| {
                                u64::from_le_bytes(p.get(0).unwrap().try_into().unwrap())
                            }).unwrap();
                            prop_assert_eq!(
                                got, model[page],
                                "policy {:?} shards {} page {}", policy, shards, page
                            );
                        }
                    }
                }
                // And the flushed images agree with the model too.
                pool.flush_all().unwrap();
                for (page, &id) in ids.iter().enumerate() {
                    prop_assert_eq!(read_counter(&pool, id), model[page]);
                }
            }
        }
    }

    /// Mid-trace policy switches never change observable contents.
    #[test]
    fn runtime_policy_switches_are_transparent(
        trace in trace_strategy(12, 80),
        switches in proptest::collection::vec(0u8..3, 1..6),
    ) {
        let pool = pool_with(4, 2, PolicyKind::Clock);
        let ids = init_counter_pages(&pool, 12);
        let mut model = [0u64; 12];
        let switch_every = (trace.len() / (switches.len() + 1)).max(1);
        for (i, op) in trace.iter().enumerate() {
            if i % switch_every == 0 {
                let kind = PolicyKind::ALL[switches[(i / switch_every) % switches.len()] as usize];
                pool.set_policy(kind);
            }
            match *op {
                TraceOp::Write { page, value } => {
                    model[page] = value;
                    pool.with_page_mut(ids[page], |p| {
                        p.update(0, &value.to_le_bytes()).unwrap()
                    }).unwrap();
                }
                TraceOp::Read { page, .. } => {
                    let got = read_counter(&pool, ids[page]);
                    prop_assert_eq!(got, model[page]);
                }
            }
        }
    }
}

//! Error types for the storage substrate.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that does not exist on "disk".
    PageNotFound(u64),
    /// The buffer pool has no evictable frame (all pages pinned).
    BufferPoolFull,
    /// A tuple did not fit in a page, or a slot id was invalid.
    PageOverflow {
        /// Bytes requested by the caller.
        needed: usize,
        /// Bytes actually available in the page.
        available: usize,
    },
    /// A slot id referenced a missing or deleted tuple.
    SlotNotFound { page: u64, slot: u16 },
    /// Tuple encode/decode failure (corrupt bytes or schema mismatch).
    Codec(String),
    /// Catalog-level failure: unknown table/column, duplicate names, etc.
    Catalog(String),
    /// A value violated a column constraint (type mismatch, null in
    /// non-nullable column, duplicate in unique column).
    Constraint(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageNotFound(id) => write!(f, "page {id} not found"),
            StorageError::BufferPoolFull => write!(f, "buffer pool full: all frames pinned"),
            StorageError::PageOverflow { needed, available } => {
                write!(
                    f,
                    "page overflow: needed {needed} bytes, {available} available"
                )
            }
            StorageError::SlotNotFound { page, slot } => {
                write!(f, "slot {slot} not found in page {page}")
            }
            StorageError::Codec(msg) => write!(f, "codec error: {msg}"),
            StorageError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            StorageError::Constraint(msg) => write!(f, "constraint violation: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

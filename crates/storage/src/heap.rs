//! Heap files: unordered collections of tuples over buffer-pool pages.

use crate::buffer::{AccessHint, BufferPool};
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, RecordId};
use crate::tuple::Tuple;
use crate::value::DataType;
use parking_lot::RwLock;
use std::sync::Arc;

/// A heap file: an append-friendly list of pages owned by one table.
///
/// Insertion tries the last page first (the common append path), then scans
/// earlier pages for reusable space before allocating a new page.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: RwLock<Vec<PageId>>,
    types: Vec<DataType>,
}

impl HeapFile {
    pub fn new(pool: Arc<BufferPool>, types: Vec<DataType>) -> Self {
        HeapFile {
            pool,
            pages: RwLock::new(Vec::new()),
            types,
        }
    }

    /// Re-attach a heap to pages that already exist on disk — used by
    /// crash recovery to rebuild a table from a checkpoint manifest.
    pub fn with_pages(pool: Arc<BufferPool>, types: Vec<DataType>, pages: Vec<PageId>) -> Self {
        HeapFile {
            pool,
            pages: RwLock::new(pages),
            types,
        }
    }

    /// The ordered page ids backing this heap (checkpoint manifest input).
    pub fn page_ids(&self) -> Vec<PageId> {
        self.pages.read().clone()
    }

    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    pub fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Insert a tuple, returning its record id.
    pub fn insert(&self, tuple: &Tuple) -> StorageResult<RecordId> {
        let payload = tuple.encode(&self.types)?;
        // Fast path: try the last page.
        let last = self.pages.read().last().copied();
        if let Some(pid) = last {
            let res = self.pool.with_page_mut(pid, |p| p.insert(&payload))?;
            if let Ok(slot) = res {
                return Ok(RecordId::new(pid, slot));
            }
        }
        // Slow path: scan earlier pages for a hole big enough.
        let pages = self.pages.read().clone();
        for pid in pages.iter().rev().skip(1) {
            let res = self.pool.with_page_mut(*pid, |p| {
                if p.free_space() >= payload.len() + 8 {
                    p.insert(&payload)
                } else {
                    Err(StorageError::PageOverflow {
                        needed: payload.len(),
                        available: p.free_space(),
                    })
                }
            })?;
            if let Ok(slot) = res {
                return Ok(RecordId::new(*pid, slot));
            }
        }
        // Allocate a fresh page.
        let pid = self.pool.allocate_page()?;
        self.pages.write().push(pid);
        let slot = self.pool.with_page_mut(pid, |p| p.insert(&payload))??;
        Ok(RecordId::new(pid, slot))
    }

    /// Fetch the tuple at `rid` (point-access hint).
    pub fn get(&self, rid: RecordId) -> StorageResult<Tuple> {
        self.get_with_hint(rid, AccessHint::Point)
    }

    /// Fetch the tuple at `rid`, telling the buffer pool how this access
    /// participates in the workload (e.g. `Index` for fetches performed
    /// on behalf of an index scan).
    pub fn get_with_hint(&self, rid: RecordId, hint: AccessHint) -> StorageResult<Tuple> {
        let bytes = self
            .pool
            .with_page_hint(rid.page, hint, |p| p.get(rid.slot).map(|b| b.to_vec()))??;
        Tuple::decode(&bytes, &self.types)
    }

    /// Overwrite the tuple at `rid`.
    pub fn update(&self, rid: RecordId, tuple: &Tuple) -> StorageResult<()> {
        let payload = tuple.encode(&self.types)?;
        self.pool
            .with_page_mut(rid.page, |p| p.update(rid.slot, &payload))?
    }

    /// Delete the tuple at `rid`.
    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        self.pool.with_page_mut(rid.page, |p| p.delete(rid.slot))?
    }

    /// Materialize all live `(rid, tuple)` pairs. Used by sequential scans;
    /// decodes page-by-page so only one page is borrowed at a time.
    /// Admitted cold (`Sequential` hint): a full materialize must not
    /// flush the pool's hot set.
    pub fn scan(&self) -> StorageResult<Vec<(RecordId, Tuple)>> {
        let pages = self.pages.read().clone();
        let mut out = Vec::new();
        for pid in pages {
            let raw: Vec<(u16, Vec<u8>)> =
                self.pool.with_page_hint(pid, AccessHint::Sequential, |p| {
                    p.iter().map(|(s, d)| (s, d.to_vec())).collect()
                })?;
            for (slot, bytes) in raw {
                out.push((
                    RecordId::new(pid, slot),
                    Tuple::decode(&bytes, &self.types)?,
                ));
            }
        }
        Ok(out)
    }

    /// Pull-based batched scan: yields batches of roughly `target_rows`
    /// live tuples, decoding one page at a time. The page list is
    /// snapshotted at creation (like [`HeapFile::scan`]); concurrent
    /// inserts into new pages are not observed.
    pub fn scan_batches(&self, target_rows: usize) -> HeapBatchScan {
        self.scan_batches_hinted(target_rows, AccessHint::Sequential)
    }

    /// [`HeapFile::scan_batches`] with an explicit access hint — the
    /// executor's scan operators pass `Sequential` so morsel sweeps admit
    /// cold; callers draining a tiny heap they intend to reuse may pass
    /// `Point` to keep its pages warm.
    pub fn scan_batches_hinted(&self, target_rows: usize, hint: AccessHint) -> HeapBatchScan {
        HeapBatchScan {
            pool: self.pool.clone(),
            types: self.types.clone(),
            pages: self.pages.read().clone(),
            next_page: 0,
            target_rows: target_rows.max(1),
            hint,
        }
    }

    /// Partition the heap into `n` independent batched cursors over
    /// disjoint contiguous page ranges (morsel-driven parallel scan: each
    /// worker drains one partition). The page list is snapshotted once,
    /// so the union of the partitions equals exactly one
    /// [`HeapFile::scan_batches`] snapshot. Partitions may be empty when
    /// the heap has fewer pages than `n`.
    pub fn scan_partitions(&self, n: usize, target_rows: usize) -> Vec<HeapBatchScan> {
        self.scan_partitions_hinted(n, target_rows, AccessHint::Sequential)
    }

    /// [`HeapFile::scan_partitions`] with an explicit access hint (see
    /// [`HeapFile::scan_batches_hinted`]).
    pub fn scan_partitions_hinted(
        &self,
        n: usize,
        target_rows: usize,
        hint: AccessHint,
    ) -> Vec<HeapBatchScan> {
        let pages = self.pages.read().clone();
        let n = n.max(1);
        let chunk = pages.len().div_ceil(n).max(1);
        let mut parts = Vec::with_capacity(n);
        for i in 0..n {
            let lo = (i * chunk).min(pages.len());
            let hi = ((i + 1) * chunk).min(pages.len());
            parts.push(HeapBatchScan {
                pool: self.pool.clone(),
                types: self.types.clone(),
                pages: pages[lo..hi].to_vec(),
                next_page: 0,
                target_rows: target_rows.max(1),
                hint,
            });
        }
        parts
    }

    /// Count live tuples (scans pages; O(pages)).
    pub fn len(&self) -> StorageResult<usize> {
        let pages = self.pages.read().clone();
        let mut n = 0;
        for pid in pages {
            n += self
                .pool
                .with_page_hint(pid, AccessHint::Sequential, |p| p.live_count())?;
        }
        Ok(n)
    }

    pub fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }
}

/// Cursor state of a batched heap scan (see [`HeapFile::scan_batches`]).
/// Each [`HeapBatchScan::next_batch`] call borrows pages one at a time,
/// so a long-running scan never pins more than one buffer-pool frame.
pub struct HeapBatchScan {
    pool: Arc<BufferPool>,
    types: Vec<DataType>,
    pages: Vec<PageId>,
    next_page: usize,
    target_rows: usize,
    hint: AccessHint,
}

impl HeapBatchScan {
    /// The next batch of live `(rid, tuple)` pairs (page-aligned: batches
    /// hold whole pages until `target_rows` is reached), or `None` once
    /// the heap is exhausted.
    pub fn next_batch(&mut self) -> StorageResult<Option<Vec<(RecordId, Tuple)>>> {
        let mut out = Vec::new();
        while self.next_page < self.pages.len() && out.len() < self.target_rows {
            let pid = self.pages[self.next_page];
            self.next_page += 1;
            let raw: Vec<(u16, Vec<u8>)> = self.pool.with_page_hint(pid, self.hint, |p| {
                p.iter().map(|(s, d)| (s, d.to_vec())).collect()
            })?;
            out.reserve(raw.len());
            for (slot, bytes) in raw {
                out.push((
                    RecordId::new(pid, slot),
                    Tuple::decode(&bytes, &self.types)?,
                ));
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DiskManager;
    use crate::value::Value;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 16));
        HeapFile::new(pool, vec![DataType::Int, DataType::Text])
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Text(format!("row-{i}"))])
    }

    #[test]
    fn insert_get() {
        let h = heap();
        let rid = h.insert(&row(1)).unwrap();
        assert_eq!(h.get(rid).unwrap(), row(1));
    }

    #[test]
    fn spans_multiple_pages() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..2000 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        assert!(h.num_pages() > 1, "2000 rows should not fit in one page");
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap().get(0), &Value::Int(i as i64));
        }
        assert_eq!(h.len().unwrap(), 2000);
    }

    #[test]
    fn update_and_delete() {
        let h = heap();
        let rid = h.insert(&row(1)).unwrap();
        h.update(rid, &row(99)).unwrap();
        assert_eq!(h.get(rid).unwrap().get(0), &Value::Int(99));
        h.delete(rid).unwrap();
        assert!(h.get(rid).is_err());
    }

    #[test]
    fn scan_returns_live_rows_only() {
        let h = heap();
        let r0 = h.insert(&row(0)).unwrap();
        h.insert(&row(1)).unwrap();
        h.insert(&row(2)).unwrap();
        h.delete(r0).unwrap();
        let rows = h.scan().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, t)| t.get(0) != &Value::Int(0)));
    }

    #[test]
    fn batched_scan_matches_full_scan() {
        let h = heap();
        for i in 0..2000 {
            h.insert(&row(i)).unwrap();
        }
        let full = h.scan().unwrap();
        let mut cursor = h.scan_batches(128);
        let mut got = Vec::new();
        let mut batches = 0;
        while let Some(b) = cursor.next_batch().unwrap() {
            assert!(!b.is_empty());
            batches += 1;
            got.extend(b);
        }
        assert!(batches > 1, "2000 rows at 128/batch must span batches");
        assert_eq!(got, full);
        // Empty heap yields None immediately.
        assert!(heap().scan_batches(64).next_batch().unwrap().is_none());
    }

    #[test]
    fn partitioned_scan_covers_heap_exactly_once() {
        let h = heap();
        for i in 0..2000 {
            h.insert(&row(i)).unwrap();
        }
        let full = h.scan().unwrap();
        for n in [1, 2, 3, 7, 64] {
            let parts = h.scan_partitions(n, 100);
            assert_eq!(parts.len(), n);
            let mut got = Vec::new();
            for mut p in parts {
                while let Some(b) = p.next_batch().unwrap() {
                    got.extend(b);
                }
            }
            // Contiguous page ranges: concatenation preserves heap order.
            assert_eq!(got, full, "n={n}");
        }
        // More partitions than pages: the extras are empty, not panics.
        let extras = h.scan_partitions(1000, 100);
        let non_empty = extras.into_iter().filter(|p| !p.pages.is_empty()).count();
        assert_eq!(non_empty, h.num_pages());
    }

    #[test]
    fn reuses_space_after_delete() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..500 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        let pages_before = h.num_pages();
        for rid in &rids {
            h.delete(*rid).unwrap();
        }
        for i in 0..500 {
            h.insert(&row(i + 1000)).unwrap();
        }
        // Tombstone reuse means little or no page growth.
        assert!(h.num_pages() <= pages_before + 1);
    }
}

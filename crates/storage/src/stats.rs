//! Per-column statistics: equi-depth histograms, distinct counts,
//! selectivity estimation, and distribution-drift measurement.
//!
//! These feed two consumers in the paper's architecture:
//! 1. the classic cost-based optimizer (cardinality estimates), and
//! 2. the learned query optimizer's *system condition* vector ("data
//!    statistics representing each attribute's distribution", Fig. 5), plus
//!    the monitor's data-drift detector (histogram divergence).

use crate::value::Value;
use std::collections::HashMap;

/// Number of buckets used by default histograms.
pub const DEFAULT_BUCKETS: usize = 16;

/// An equi-depth histogram over the numeric view of a column.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket boundaries, length `buckets + 1`, non-decreasing.
    pub bounds: Vec<f64>,
    /// Rows per bucket (equi-depth: roughly equal).
    pub counts: Vec<u64>,
    /// Total rows summarized (excludes NULL / non-numeric).
    pub total: u64,
    pub min: f64,
    pub max: f64,
}

impl Histogram {
    /// Build an equi-depth histogram from numeric samples.
    pub fn build(mut samples: Vec<f64>, buckets: usize) -> Option<Histogram> {
        samples.retain(|x| x.is_finite());
        if samples.is_empty() || buckets == 0 {
            return None;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        let min = samples[0];
        let max = samples[n - 1];
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        bounds.push(min);
        let mut prev_idx = 0usize;
        for b in 1..=buckets {
            let idx = (b * n) / buckets;
            let idx = idx.min(n);
            let bound = if idx == n {
                max
            } else {
                samples[idx.saturating_sub(1)]
            };
            bounds.push(bound.max(*bounds.last().unwrap()));
            counts.push((idx - prev_idx) as u64);
            prev_idx = idx;
        }
        Some(Histogram {
            bounds,
            counts,
            total: n as u64,
            min,
            max,
        })
    }

    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Estimated fraction of rows with value <= `x` (CDF), assuming uniform
    /// spread inside each bucket.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let mut acc = 0u64;
        for i in 0..self.counts.len() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if x >= hi {
                acc += self.counts[i];
                continue;
            }
            let frac = if hi > lo { (x - lo) / (hi - lo) } else { 1.0 };
            return (acc as f64 + self.counts[i] as f64 * frac.clamp(0.0, 1.0)) / self.total as f64;
        }
        1.0
    }

    /// Estimated selectivity of `lo <= col <= hi`.
    pub fn range_selectivity(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let lo_cdf = lo.map_or(0.0, |v| self.cdf(v - f64::EPSILON));
        let hi_cdf = hi.map_or(1.0, |v| self.cdf(v));
        (hi_cdf - lo_cdf).clamp(0.0, 1.0)
    }

    /// Normalized per-bucket frequency vector (sums to 1); the learned QO
    /// embeds this directly.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|c| *c as f64 / self.total as f64)
            .collect()
    }

    /// Symmetric Kullback–Leibler-style divergence between two histograms
    /// *rebinned onto a common grid*; the drift monitor thresholds this.
    pub fn divergence(&self, other: &Histogram) -> f64 {
        let lo = self.min.min(other.min);
        let hi = self.max.max(other.max);
        if hi <= lo {
            return 0.0;
        }
        let grid = 32usize;
        let step = (hi - lo) / grid as f64;
        let mut d = 0.0;
        let eps = 1e-9;
        for g in 0..grid {
            let a0 = lo + g as f64 * step;
            let a1 = a0 + step;
            let p = (self.cdf(a1) - self.cdf(a0)).max(0.0) + eps;
            let q = (other.cdf(a1) - other.cdf(a0)).max(0.0) + eps;
            d += p * (p / q).ln() + q * (q / p).ln();
        }
        d / 2.0
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    pub histogram: Option<Histogram>,
    pub distinct: u64,
    pub null_count: u64,
    pub row_count: u64,
    /// Most common values with frequencies (top-8), for equality estimates
    /// on skewed/categorical columns.
    pub mcv: Vec<(Value, u64)>,
}

impl ColumnStats {
    /// Build stats from the column's values.
    pub fn build(values: &[Value], buckets: usize) -> ColumnStats {
        let row_count = values.len() as u64;
        let null_count = values.iter().filter(|v| v.is_null()).count() as u64;
        let mut freq: HashMap<Value, u64> = HashMap::new();
        for v in values.iter().filter(|v| !v.is_null()) {
            *freq.entry(v.clone()).or_insert(0) += 1;
        }
        let distinct = freq.len() as u64;
        let mut mcv: Vec<(Value, u64)> = freq.into_iter().collect();
        mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        mcv.truncate(8);
        let numeric: Vec<f64> = values.iter().filter_map(|v| v.as_f64()).collect();
        let histogram = Histogram::build(numeric, buckets);
        ColumnStats {
            histogram,
            distinct,
            null_count,
            row_count,
            mcv,
        }
    }

    /// Estimated selectivity of `col = v`.
    pub fn eq_selectivity(&self, v: &Value) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        if let Some((_, c)) = self.mcv.iter().find(|(mv, _)| mv == v) {
            return *c as f64 / self.row_count as f64;
        }
        if self.distinct == 0 {
            return 0.0;
        }
        // Uniformity over the non-MCV remainder.
        let mcv_rows: u64 = self.mcv.iter().map(|(_, c)| *c).sum();
        let rest_rows = self.row_count.saturating_sub(mcv_rows + self.null_count);
        let rest_distinct = self.distinct.saturating_sub(self.mcv.len() as u64);
        if rest_distinct == 0 {
            return 1.0 / self.distinct.max(1) as f64;
        }
        (rest_rows as f64 / rest_distinct as f64) / self.row_count as f64
    }

    /// Estimated selectivity of a numeric range predicate.
    pub fn range_selectivity(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        match &self.histogram {
            Some(h) => h.range_selectivity(lo, hi),
            None => 0.33, // classic guess when no numeric stats exist
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Build from column-major values: `columns[i]` holds column i's values.
    pub fn build(columns: &[Vec<Value>]) -> TableStats {
        let row_count = columns.first().map_or(0, |c| c.len() as u64);
        TableStats {
            row_count,
            columns: columns
                .iter()
                .map(|c| ColumnStats::build(c, DEFAULT_BUCKETS))
                .collect(),
        }
    }

    /// Flattened feature vector describing the data distribution, consumed
    /// by the learned QO (fixed length: per column, `[ndv_frac, null_frac,
    /// 16 bucket freqs]`, truncated/padded to `max_cols` columns).
    pub fn condition_vector(&self, max_cols: usize) -> Vec<f64> {
        let per_col = 2 + DEFAULT_BUCKETS;
        let mut v = vec![0.0; max_cols * per_col];
        for (i, c) in self.columns.iter().take(max_cols).enumerate() {
            let base = i * per_col;
            let rows = c.row_count.max(1) as f64;
            v[base] = c.distinct as f64 / rows;
            v[base + 1] = c.null_count as f64 / rows;
            if let Some(h) = &c.histogram {
                for (j, f) in h.frequencies().iter().take(DEFAULT_BUCKETS).enumerate() {
                    v[base + 2 + j] = *f;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_buckets_balanced() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(samples, 10).unwrap();
        assert_eq!(h.num_buckets(), 10);
        for c in &h.counts {
            assert_eq!(*c, 100);
        }
        assert_eq!(h.total, 1000);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let samples: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let h = Histogram::build(samples, 8).unwrap();
        let mut prev = 0.0;
        for i in 0..100 {
            let x = h.min + (h.max - h.min) * i as f64 / 99.0;
            let c = h.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c + 1e-12 >= prev, "CDF must be monotone");
            prev = c;
        }
        assert_eq!(h.cdf(h.max + 1.0), 1.0);
        assert_eq!(h.cdf(h.min - 1.0), 0.0);
    }

    #[test]
    fn range_selectivity_uniform() {
        let samples: Vec<f64> = (0..10000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::build(samples, 16).unwrap();
        let sel = h.range_selectivity(Some(25.0), Some(75.0));
        assert!((sel - 0.5).abs() < 0.03, "got {sel}");
    }

    #[test]
    fn divergence_detects_shift() {
        let a = Histogram::build((0..1000).map(|i| i as f64 / 10.0).collect(), 16).unwrap();
        let b = Histogram::build((0..1000).map(|i| i as f64 / 10.0).collect(), 16).unwrap();
        let c = Histogram::build((0..1000).map(|i| 50.0 + i as f64 / 10.0).collect(), 16).unwrap();
        assert!(a.divergence(&b) < 0.05, "identical distributions");
        assert!(a.divergence(&c) > 1.0, "shifted distribution must diverge");
    }

    #[test]
    fn eq_selectivity_uses_mcv() {
        let mut vals = vec![Value::Int(1); 90];
        vals.extend((0..10).map(|i| Value::Int(100 + i)));
        let s = ColumnStats::build(&vals, 8);
        let hot = s.eq_selectivity(&Value::Int(1));
        assert!((hot - 0.9).abs() < 1e-9);
        let cold = s.eq_selectivity(&Value::Int(105));
        assert!(cold < 0.05);
    }

    #[test]
    fn null_and_distinct_counts() {
        let vals = vec![
            Value::Int(1),
            Value::Null,
            Value::Int(1),
            Value::Int(2),
            Value::Null,
        ];
        let s = ColumnStats::build(&vals, 4);
        assert_eq!(s.null_count, 2);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.row_count, 5);
    }

    #[test]
    fn condition_vector_fixed_len() {
        let cols = vec![
            (0..100).map(Value::Int).collect::<Vec<_>>(),
            (0..100).map(|i| Value::Float(i as f64)).collect(),
        ];
        let st = TableStats::build(&cols);
        let v = st.condition_vector(4);
        assert_eq!(v.len(), 4 * (2 + DEFAULT_BUCKETS));
        // First column ndv fraction = 1.0 (all distinct).
        assert!((v[0] - 1.0).abs() < 1e-9);
        // Padding for absent columns is zero.
        assert!(v[2 * (2 + DEFAULT_BUCKETS)..].iter().all(|x| *x == 0.0));
    }

    #[test]
    fn empty_histogram_is_none() {
        assert!(Histogram::build(vec![], 8).is_none());
        assert!(Histogram::build(vec![f64::NAN], 8).is_none());
    }

    #[test]
    fn single_value_histogram() {
        let h = Histogram::build(vec![5.0; 100], 8).unwrap();
        assert_eq!(h.min, 5.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.cdf(5.0), 1.0);
        assert_eq!(h.cdf(4.9), 0.0);
    }
}

//! An in-memory B+Tree index keyed by [`Value`] with record-id postings.
//!
//! Non-unique: each key maps to a posting list of [`RecordId`]s. Leaves are
//! chained for range scans. The fanout is configurable so tests can force
//! deep trees with few keys.

use crate::page::RecordId;
use crate::value::Value;

const DEFAULT_ORDER: usize = 64;

#[derive(Debug)]
enum Node {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (>= key).
        keys: Vec<Value>,
        children: Vec<Node>,
    },
    Leaf {
        keys: Vec<Value>,
        postings: Vec<Vec<RecordId>>,
    },
}

/// Result of inserting into a subtree: possibly a split.
enum InsertResult {
    Ok,
    Split { sep: Value, right: Box<Node> },
}

/// A B+Tree index.
pub struct BTreeIndex {
    root: Box<Node>,
    order: usize,
    len: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// `order` = max keys per node before splitting (>= 3).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "order must be >= 3");
        BTreeIndex {
            root: Box::new(Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
            }),
            order,
            len: 0,
        }
    }

    /// Number of (key, rid) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a (key, rid) pair.
    pub fn insert(&mut self, key: Value, rid: RecordId) {
        self.len += 1;
        let order = self.order;
        match Self::insert_rec(&mut self.root, key, rid, order) {
            InsertResult::Ok => {}
            InsertResult::Split { sep, right } => {
                let old_root = std::mem::replace(
                    &mut self.root,
                    Box::new(Node::Leaf {
                        keys: vec![],
                        postings: vec![],
                    }),
                );
                *self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![*old_root, *right],
                };
            }
        }
    }

    fn insert_rec(node: &mut Node, key: Value, rid: RecordId, order: usize) -> InsertResult {
        match node {
            Node::Leaf { keys, postings } => {
                match keys.binary_search(&key) {
                    Ok(i) => postings[i].push(rid),
                    Err(i) => {
                        keys.insert(i, key);
                        postings.insert(i, vec![rid]);
                    }
                }
                if keys.len() > order {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_postings = postings.split_off(mid);
                    let sep = right_keys[0].clone();
                    InsertResult::Split {
                        sep,
                        right: Box::new(Node::Leaf {
                            keys: right_keys,
                            postings: right_postings,
                        }),
                    }
                } else {
                    InsertResult::Ok
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match Self::insert_rec(&mut children[idx], key, rid, order) {
                    InsertResult::Ok => InsertResult::Ok,
                    InsertResult::Split { sep, right } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, *right);
                        if keys.len() > order {
                            let mid = keys.len() / 2;
                            // Middle key moves up; children split after mid.
                            let sep_up = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // remove sep_up from the left node
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split {
                                sep: sep_up,
                                right: Box::new(Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                            }
                        } else {
                            InsertResult::Ok
                        }
                    }
                }
            }
        }
    }

    /// Exact-match lookup: all rids stored under `key`.
    pub fn get(&self, key: &Value) -> Vec<RecordId> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
                Node::Leaf { keys, postings } => {
                    return match keys.binary_search(key) {
                        Ok(i) => postings[i].clone(),
                        Err(_) => Vec::new(),
                    };
                }
            }
        }
    }

    /// Remove one specific (key, rid) pair. Returns whether it existed.
    /// Underflow is tolerated (no merging) — postings just shrink; this
    /// keeps deletion O(log n) and is standard for in-memory secondary
    /// indexes where reinsertion dominates.
    pub fn remove(&mut self, key: &Value, rid: RecordId) -> bool {
        fn rec(node: &mut Node, key: &Value, rid: RecordId) -> bool {
            match node {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    rec(&mut children[idx], key, rid)
                }
                Node::Leaf { keys, postings } => {
                    if let Ok(i) = keys.binary_search(key) {
                        let p = &mut postings[i];
                        if let Some(pos) = p.iter().position(|r| *r == rid) {
                            p.swap_remove(pos);
                            if p.is_empty() {
                                keys.remove(i);
                                postings.remove(i);
                            }
                            return true;
                        }
                    }
                    false
                }
            }
        }
        let removed = rec(&mut self.root, key, rid);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Range scan over `[lo, hi]` (inclusive bounds; `None` = unbounded).
    /// Returns `(key, rid)` pairs in key order.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<(Value, RecordId)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(
        node: &Node,
        lo: Option<&Value>,
        hi: Option<&Value>,
        out: &mut Vec<(Value, RecordId)>,
    ) {
        match node {
            Node::Internal { keys, children } => {
                // Visit children whose key ranges may intersect [lo, hi].
                for (i, child) in children.iter().enumerate() {
                    // child i holds keys < keys[i] and >= keys[i-1].
                    if let Some(lo) = lo {
                        if i < keys.len() && keys[i] <= *lo {
                            // Entire child strictly below lo only when its
                            // upper separator <= lo; skip unless equal keys
                            // could sit at the boundary.
                            if keys[i] < *lo {
                                continue;
                            }
                        }
                    }
                    if let Some(hi) = hi {
                        if i > 0 && keys[i - 1] > *hi {
                            break;
                        }
                    }
                    Self::range_rec(child, lo, hi, out);
                }
            }
            Node::Leaf { keys, postings } => {
                for (k, p) in keys.iter().zip(postings.iter()) {
                    if let Some(lo) = lo {
                        if k < lo {
                            continue;
                        }
                    }
                    if let Some(hi) = hi {
                        if k > hi {
                            return;
                        }
                    }
                    for rid in p {
                        out.push((k.clone(), *rid));
                    }
                }
            }
        }
    }

    /// Depth of the tree (1 = just a leaf). Exposed for tests.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &*self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u64) -> RecordId {
        RecordId::new(i, (i % 100) as u16)
    }

    #[test]
    fn insert_and_get() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..100i64 {
            t.insert(Value::Int(i), rid(i as u64));
        }
        assert_eq!(t.len(), 100);
        assert!(t.depth() > 1, "order-4 tree with 100 keys must split");
        for i in 0..100i64 {
            assert_eq!(t.get(&Value::Int(i)), vec![rid(i as u64)]);
        }
        assert!(t.get(&Value::Int(100)).is_empty());
    }

    #[test]
    fn duplicate_keys_accumulate_postings() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Int(5), rid(1));
        t.insert(Value::Int(5), rid(2));
        t.insert(Value::Int(5), rid(3));
        assert_eq!(t.get(&Value::Int(5)).len(), 3);
    }

    #[test]
    fn remove_specific_rid() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Int(5), rid(1));
        t.insert(Value::Int(5), rid(2));
        assert!(t.remove(&Value::Int(5), rid(1)));
        assert_eq!(t.get(&Value::Int(5)), vec![rid(2)]);
        assert!(!t.remove(&Value::Int(5), rid(1)), "already removed");
        assert!(t.remove(&Value::Int(5), rid(2)));
        assert!(t.get(&Value::Int(5)).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..50i64 {
            t.insert(Value::Int(i), rid(i as u64));
        }
        let got = t.range(Some(&Value::Int(10)), Some(&Value::Int(20)));
        let keys: Vec<i64> = got.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, (10..=20).collect::<Vec<_>>());
    }

    #[test]
    fn range_unbounded() {
        let mut t = BTreeIndex::with_order(4);
        for i in (0..30i64).rev() {
            t.insert(Value::Int(i), rid(i as u64));
        }
        let all = t.range(None, None);
        let keys: Vec<i64> = all.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, (0..30).collect::<Vec<_>>());
        let tail = t.range(Some(&Value::Int(25)), None);
        assert_eq!(tail.len(), 5);
        let head = t.range(None, Some(&Value::Int(4)));
        assert_eq!(head.len(), 5);
    }

    #[test]
    fn text_keys() {
        let mut t = BTreeIndex::with_order(4);
        for w in ["pear", "apple", "fig", "banana", "kiwi", "grape"] {
            t.insert(Value::Text(w.into()), rid(w.len() as u64));
        }
        let got = t.range(
            Some(&Value::Text("b".into())),
            Some(&Value::Text("g".into())),
        );
        let keys: Vec<&str> = got.iter().filter_map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["banana", "fig"]);
    }

    #[test]
    fn random_inserts_stay_sorted() {
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut keys: Vec<i64> = (0..1000).collect();
        keys.shuffle(&mut rng);
        let mut t = BTreeIndex::with_order(8);
        for k in &keys {
            t.insert(Value::Int(*k), rid(*k as u64));
        }
        let scanned: Vec<i64> = t
            .range(None, None)
            .iter()
            .map(|(k, _)| k.as_i64().unwrap())
            .collect();
        assert_eq!(scanned, (0..1000).collect::<Vec<_>>());
    }
}

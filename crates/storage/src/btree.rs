//! An in-memory B+Tree index keyed by [`Value`] with record-id postings.
//!
//! Non-unique: each key maps to a posting list of [`RecordId`]s. Leaves are
//! chained for range scans. The fanout is configurable so tests can force
//! deep trees with few keys.

use crate::page::RecordId;
use crate::value::Value;

const DEFAULT_ORDER: usize = 64;

#[derive(Debug)]
enum Node {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (>= key).
        keys: Vec<Value>,
        children: Vec<Node>,
    },
    Leaf {
        keys: Vec<Value>,
        postings: Vec<Vec<RecordId>>,
    },
}

/// Result of inserting into a subtree: possibly a split.
enum InsertResult {
    Ok,
    Split { sep: Value, right: Box<Node> },
}

/// A B+Tree index.
pub struct BTreeIndex {
    root: Box<Node>,
    order: usize,
    len: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// `order` = max keys per node before splitting (>= 3).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "order must be >= 3");
        BTreeIndex {
            root: Box::new(Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
            }),
            order,
            len: 0,
        }
    }

    /// Number of (key, rid) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a (key, rid) pair.
    pub fn insert(&mut self, key: Value, rid: RecordId) {
        self.len += 1;
        let order = self.order;
        match Self::insert_rec(&mut self.root, key, rid, order) {
            InsertResult::Ok => {}
            InsertResult::Split { sep, right } => {
                let old_root = std::mem::replace(
                    &mut self.root,
                    Box::new(Node::Leaf {
                        keys: vec![],
                        postings: vec![],
                    }),
                );
                *self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![*old_root, *right],
                };
            }
        }
    }

    fn insert_rec(node: &mut Node, key: Value, rid: RecordId, order: usize) -> InsertResult {
        match node {
            Node::Leaf { keys, postings } => {
                match keys.binary_search(&key) {
                    Ok(i) => postings[i].push(rid),
                    Err(i) => {
                        keys.insert(i, key);
                        postings.insert(i, vec![rid]);
                    }
                }
                if keys.len() > order {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_postings = postings.split_off(mid);
                    let sep = right_keys[0].clone();
                    InsertResult::Split {
                        sep,
                        right: Box::new(Node::Leaf {
                            keys: right_keys,
                            postings: right_postings,
                        }),
                    }
                } else {
                    InsertResult::Ok
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match Self::insert_rec(&mut children[idx], key, rid, order) {
                    InsertResult::Ok => InsertResult::Ok,
                    InsertResult::Split { sep, right } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, *right);
                        if keys.len() > order {
                            let mid = keys.len() / 2;
                            // Middle key moves up; children split after mid.
                            let sep_up = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // remove sep_up from the left node
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split {
                                sep: sep_up,
                                right: Box::new(Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                            }
                        } else {
                            InsertResult::Ok
                        }
                    }
                }
            }
        }
    }

    /// Exact-match lookup: all rids stored under `key`.
    pub fn get(&self, key: &Value) -> Vec<RecordId> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
                Node::Leaf { keys, postings } => {
                    return match keys.binary_search(key) {
                        Ok(i) => postings[i].clone(),
                        Err(_) => Vec::new(),
                    };
                }
            }
        }
    }

    /// Remove one specific (key, rid) pair. Returns whether it existed.
    /// Underflow is tolerated (no merging) — postings just shrink; this
    /// keeps deletion O(log n) and is standard for in-memory secondary
    /// indexes where reinsertion dominates.
    pub fn remove(&mut self, key: &Value, rid: RecordId) -> bool {
        fn rec(node: &mut Node, key: &Value, rid: RecordId) -> bool {
            match node {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    rec(&mut children[idx], key, rid)
                }
                Node::Leaf { keys, postings } => {
                    if let Ok(i) = keys.binary_search(key) {
                        let p = &mut postings[i];
                        if let Some(pos) = p.iter().position(|r| *r == rid) {
                            p.swap_remove(pos);
                            if p.is_empty() {
                                keys.remove(i);
                                postings.remove(i);
                            }
                            return true;
                        }
                    }
                    false
                }
            }
        }
        let removed = rec(&mut self.root, key, rid);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Range scan over `[lo, hi]` (inclusive bounds; `None` = unbounded).
    /// Returns `(key, rid)` pairs in key order.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<(Value, RecordId)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(
        node: &Node,
        lo: Option<&Value>,
        hi: Option<&Value>,
        out: &mut Vec<(Value, RecordId)>,
    ) {
        match node {
            Node::Internal { keys, children } => {
                // Visit children whose key ranges may intersect [lo, hi].
                for (i, child) in children.iter().enumerate() {
                    // child i holds keys < keys[i] and >= keys[i-1].
                    if let Some(lo) = lo {
                        if i < keys.len() && keys[i] <= *lo {
                            // Entire child strictly below lo only when its
                            // upper separator <= lo; skip unless equal keys
                            // could sit at the boundary.
                            if keys[i] < *lo {
                                continue;
                            }
                        }
                    }
                    if let Some(hi) = hi {
                        if i > 0 && keys[i - 1] > *hi {
                            break;
                        }
                    }
                    Self::range_rec(child, lo, hi, out);
                }
            }
            Node::Leaf { keys, postings } => {
                for (k, p) in keys.iter().zip(postings.iter()) {
                    if let Some(lo) = lo {
                        if k < lo {
                            continue;
                        }
                    }
                    if let Some(hi) = hi {
                        if k > hi {
                            return;
                        }
                    }
                    for rid in p {
                        out.push((k.clone(), *rid));
                    }
                }
            }
        }
    }

    /// Open a cursor over `[lo, hi]` (inclusive bounds; `None` =
    /// unbounded). Unlike [`BTreeIndex::range`], the cursor pulls entries
    /// in bounded chunks — an executor can stream a huge range without
    /// materializing it — and a point lookup is just `lo == hi`.
    pub fn scan(&self, lo: Option<&Value>, hi: Option<&Value>) -> BTreeIndexScan {
        BTreeIndexScan {
            lo: lo.cloned(),
            hi: hi.cloned(),
            resume_after: None,
            done: false,
        }
    }

    /// Depth of the tree (1 = just a leaf). Exposed for tests.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &*self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

/// A resumable range/point cursor over a [`BTreeIndex`] (see
/// [`BTreeIndex::scan`]).
///
/// The cursor does not borrow the tree: each [`BTreeIndexScan::next_chunk`]
/// call re-descends from the root (O(log n)) and collects entries with key
/// strictly greater than the last key already returned. Chunk boundaries
/// always fall *between* keys, so a duplicate key's whole posting list is
/// delivered in one chunk and resumption never skips or repeats rids —
/// this is what lets the executor hold the index's lock only per-chunk.
#[derive(Debug, Clone)]
pub struct BTreeIndexScan {
    lo: Option<Value>,
    hi: Option<Value>,
    /// Last key fully emitted; the next chunk starts strictly after it.
    resume_after: Option<Value>,
    done: bool,
}

impl BTreeIndexScan {
    /// Collect the next chunk of `(key, rid)` entries in key order: at
    /// least `max_entries` are gathered before stopping at the next key
    /// boundary (a posting list is never split). `None` once exhausted.
    pub fn next_chunk(
        &mut self,
        index: &BTreeIndex,
        max_entries: usize,
    ) -> Option<Vec<(Value, RecordId)>> {
        if self.done {
            return None;
        }
        let mut out = Vec::new();
        // The effective lower bound: strictly-after the resume key, else
        // inclusive of `lo`.
        let exhausted = Self::collect(
            &index.root,
            self.resume_after.as_ref(),
            self.lo.as_ref(),
            self.hi.as_ref(),
            max_entries.max(1),
            &mut out,
        );
        if exhausted {
            self.done = true;
        }
        match out.last() {
            Some((k, _)) => self.resume_after = Some(k.clone()),
            None => self.done = true,
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Walk `node` collecting in-range entries past the resume point.
    /// Returns `true` when the whole range was covered (no early stop).
    fn collect(
        node: &Node,
        after: Option<&Value>,
        lo: Option<&Value>,
        hi: Option<&Value>,
        max_entries: usize,
        out: &mut Vec<(Value, RecordId)>,
    ) -> bool {
        match node {
            Node::Internal { keys, children } => {
                for (i, child) in children.iter().enumerate() {
                    // Child i holds keys < keys[i] (and >= keys[i-1]):
                    // skip children entirely below the start bound and
                    // stop at children entirely above `hi`.
                    let start = match (after, lo) {
                        (Some(a), _) => Some(a),
                        (None, l) => l,
                    };
                    if let Some(s) = start {
                        if i < keys.len() && keys[i] < *s {
                            continue;
                        }
                    }
                    if let Some(hi) = hi {
                        if i > 0 && keys[i - 1] > *hi {
                            return true;
                        }
                    }
                    if !Self::collect(child, after, lo, hi, max_entries, out) {
                        return false;
                    }
                    if out.len() >= max_entries {
                        // Key-boundary stop: recursion only returns
                        // between leaf keys.
                        return false;
                    }
                }
                true
            }
            Node::Leaf { keys, postings } => {
                for (k, p) in keys.iter().zip(postings.iter()) {
                    if let Some(a) = after {
                        if k <= a {
                            continue;
                        }
                    }
                    if let Some(lo) = lo {
                        if k < lo {
                            continue;
                        }
                    }
                    if let Some(hi) = hi {
                        if k > hi {
                            return true;
                        }
                    }
                    out.reserve(p.len());
                    for rid in p {
                        out.push((k.clone(), *rid));
                    }
                    if out.len() >= max_entries {
                        return false;
                    }
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u64) -> RecordId {
        RecordId::new(i, (i % 100) as u16)
    }

    #[test]
    fn insert_and_get() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..100i64 {
            t.insert(Value::Int(i), rid(i as u64));
        }
        assert_eq!(t.len(), 100);
        assert!(t.depth() > 1, "order-4 tree with 100 keys must split");
        for i in 0..100i64 {
            assert_eq!(t.get(&Value::Int(i)), vec![rid(i as u64)]);
        }
        assert!(t.get(&Value::Int(100)).is_empty());
    }

    #[test]
    fn duplicate_keys_accumulate_postings() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Int(5), rid(1));
        t.insert(Value::Int(5), rid(2));
        t.insert(Value::Int(5), rid(3));
        assert_eq!(t.get(&Value::Int(5)).len(), 3);
    }

    #[test]
    fn remove_specific_rid() {
        let mut t = BTreeIndex::new();
        t.insert(Value::Int(5), rid(1));
        t.insert(Value::Int(5), rid(2));
        assert!(t.remove(&Value::Int(5), rid(1)));
        assert_eq!(t.get(&Value::Int(5)), vec![rid(2)]);
        assert!(!t.remove(&Value::Int(5), rid(1)), "already removed");
        assert!(t.remove(&Value::Int(5), rid(2)));
        assert!(t.get(&Value::Int(5)).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..50i64 {
            t.insert(Value::Int(i), rid(i as u64));
        }
        let got = t.range(Some(&Value::Int(10)), Some(&Value::Int(20)));
        let keys: Vec<i64> = got.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, (10..=20).collect::<Vec<_>>());
    }

    #[test]
    fn range_unbounded() {
        let mut t = BTreeIndex::with_order(4);
        for i in (0..30i64).rev() {
            t.insert(Value::Int(i), rid(i as u64));
        }
        let all = t.range(None, None);
        let keys: Vec<i64> = all.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, (0..30).collect::<Vec<_>>());
        let tail = t.range(Some(&Value::Int(25)), None);
        assert_eq!(tail.len(), 5);
        let head = t.range(None, Some(&Value::Int(4)));
        assert_eq!(head.len(), 5);
    }

    #[test]
    fn text_keys() {
        let mut t = BTreeIndex::with_order(4);
        for w in ["pear", "apple", "fig", "banana", "kiwi", "grape"] {
            t.insert(Value::Text(w.into()), rid(w.len() as u64));
        }
        let got = t.range(
            Some(&Value::Text("b".into())),
            Some(&Value::Text("g".into())),
        );
        let keys: Vec<&str> = got.iter().filter_map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["banana", "fig"]);
    }

    #[test]
    fn cursor_chunks_match_range() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..500i64 {
            t.insert(Value::Int(i % 100), rid(i as u64));
        }
        for (lo, hi) in [
            (None, None),
            (Some(Value::Int(10)), Some(Value::Int(40))),
            (Some(Value::Int(40)), Some(Value::Int(40))), // point lookup
            (None, Some(Value::Int(5))),
            (Some(Value::Int(95)), None),
            (Some(Value::Int(200)), None), // empty
        ] {
            let want = t.range(lo.as_ref(), hi.as_ref());
            for chunk_size in [1, 3, 1000] {
                let mut cur = t.scan(lo.as_ref(), hi.as_ref());
                let mut got = Vec::new();
                while let Some(chunk) = cur.next_chunk(&t, chunk_size) {
                    got.extend(chunk);
                }
                assert_eq!(got, want, "bounds={lo:?}..{hi:?} chunk={chunk_size}");
                assert!(cur.next_chunk(&t, chunk_size).is_none(), "stays done");
            }
        }
    }

    #[test]
    fn cursor_never_splits_a_posting_list() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..10 {
            t.insert(Value::Int(7), rid(i));
        }
        t.insert(Value::Int(8), rid(100));
        let mut cur = t.scan(None, None);
        // max_entries=1 still returns all ten rids of key 7 in one chunk.
        let first = cur.next_chunk(&t, 1).unwrap();
        assert_eq!(first.len(), 10);
        assert!(first.iter().all(|(k, _)| k == &Value::Int(7)));
        let second = cur.next_chunk(&t, 1).unwrap();
        assert_eq!(second, vec![(Value::Int(8), rid(100))]);
        assert!(cur.next_chunk(&t, 1).is_none());
    }

    #[test]
    fn random_inserts_stay_sorted() {
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut keys: Vec<i64> = (0..1000).collect();
        keys.shuffle(&mut rng);
        let mut t = BTreeIndex::with_order(8);
        for k in &keys {
            t.insert(Value::Int(*k), rid(*k as u64));
        }
        let scanned: Vec<i64> = t
            .range(None, None)
            .iter()
            .map(|(k, _)| k.as_i64().unwrap())
            .collect();
        assert_eq!(scanned, (0..1000).collect::<Vec<_>>());
    }
}

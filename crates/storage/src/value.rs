//! Runtime values and column data types.
//!
//! `Value` is the dynamically-typed cell used by the executor, the tuple
//! codec, histograms, and the SQL layer. The ordering implemented here is a
//! *total* order so values can key B-trees and histograms: `Null` sorts
//! first, booleans next, then numerics (integers and floats compare
//! numerically across types), then text.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
        };
        f.write_str(s)
    }
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value can be stored in a column of type `ty`.
    /// Integers are accepted by FLOAT columns (implicit widening).
    pub fn compatible_with(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
        )
    }

    /// Numeric view of this value, if it is numeric (or boolean).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view, truncating floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// Rank used to order values of *different* kinds.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }

    /// Total-order comparison. Numerics compare numerically across
    /// Int/Float; NaN sorts after all other floats (like SQL NULLS LAST
    /// semantics for NaN).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.kind_rank(), other.kind_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => {
                // Mixed numeric comparison via f64 total_cmp.
                let fa = a.as_f64().unwrap_or(f64::NAN);
                let fb = b.as_f64().unwrap_or(f64::NAN);
                fa.total_cmp(&fb)
            }
        }
    }

    /// SQL equality (used by predicates): Null equals nothing.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that are numerically equal must hash equal,
            // because `eq` treats them as equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_compatibility() {
        assert!(Value::Int(3).compatible_with(DataType::Int));
        assert!(Value::Int(3).compatible_with(DataType::Float));
        assert!(!Value::Float(3.0).compatible_with(DataType::Int));
        assert!(Value::Null.compatible_with(DataType::Text));
        assert!(!Value::Text("x".into()).compatible_with(DataType::Int));
    }

    #[test]
    fn cross_numeric_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.1).total_cmp(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn kind_ordering_is_total() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(0.5),
            Value::Int(7),
            Value::Text("a".into()),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(sorted[0], Value::Null);
        assert!(matches!(sorted.last(), Some(Value::Text(_))));
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Int(1).sql_eq(&Value::Null));
        assert!(Value::Int(1).sql_eq(&Value::Float(1.0)));
    }

    #[test]
    fn hash_consistent_with_eq_for_mixed_numerics() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::Float(1.5).as_i64(), Some(1));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Text("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Int(0).as_bool(), Some(false));
    }
}

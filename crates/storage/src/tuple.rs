//! Tuple representation and the row codec.
//!
//! Tuples are encoded into the slotted page as:
//! `[null bitmap][per-column payload]` where the bitmap has one bit per
//! column (1 = NULL) and each non-null payload is encoded according to the
//! column's declared [`DataType`]. Text is length-prefixed with a u32.

use crate::error::{StorageError, StorageResult};
use crate::value::{DataType, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A row: one `Value` per column, in schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    pub values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    pub fn arity(&self) -> usize {
        self.values.len()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Encode this tuple against column types `types`.
    pub fn encode(&self, types: &[DataType]) -> StorageResult<Bytes> {
        if self.values.len() != types.len() {
            return Err(StorageError::Codec(format!(
                "tuple arity {} != schema arity {}",
                self.values.len(),
                types.len()
            )));
        }
        let mut buf = BytesMut::with_capacity(16 + self.values.len() * 8);
        let bitmap_len = self.values.len().div_ceil(8);
        let mut bitmap = vec![0u8; bitmap_len];
        for (i, v) in self.values.iter().enumerate() {
            if v.is_null() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        buf.put_slice(&bitmap);
        for (v, ty) in self.values.iter().zip(types.iter()) {
            if v.is_null() {
                continue;
            }
            if !v.compatible_with(*ty) {
                return Err(StorageError::Codec(format!(
                    "value {v} incompatible with column type {ty}"
                )));
            }
            match ty {
                DataType::Bool => buf.put_u8(v.as_bool().unwrap() as u8),
                DataType::Int => buf.put_i64_le(v.as_i64().unwrap()),
                DataType::Float => buf.put_f64_le(v.as_f64().unwrap()),
                DataType::Text => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| StorageError::Codec("expected text value".to_string()))?;
                    buf.put_u32_le(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
            }
        }
        Ok(buf.freeze())
    }

    /// Decode a tuple previously produced by [`Tuple::encode`] with the same
    /// column types.
    pub fn decode(mut data: &[u8], types: &[DataType]) -> StorageResult<Tuple> {
        let bitmap_len = types.len().div_ceil(8);
        if data.len() < bitmap_len {
            return Err(StorageError::Codec(
                "short buffer: missing null bitmap".into(),
            ));
        }
        let bitmap = data[..bitmap_len].to_vec();
        data.advance(bitmap_len);
        let mut values = Vec::with_capacity(types.len());
        for (i, ty) in types.iter().enumerate() {
            let is_null = bitmap[i / 8] & (1 << (i % 8)) != 0;
            if is_null {
                values.push(Value::Null);
                continue;
            }
            let v = match ty {
                DataType::Bool => {
                    ensure_len(data, 1)?;
                    Value::Bool(data.get_u8() != 0)
                }
                DataType::Int => {
                    ensure_len(data, 8)?;
                    Value::Int(data.get_i64_le())
                }
                DataType::Float => {
                    ensure_len(data, 8)?;
                    Value::Float(data.get_f64_le())
                }
                DataType::Text => {
                    ensure_len(data, 4)?;
                    let len = data.get_u32_le() as usize;
                    ensure_len(data, len)?;
                    let s = std::str::from_utf8(&data[..len])
                        .map_err(|e| StorageError::Codec(format!("invalid utf8: {e}")))?
                        .to_string();
                    data.advance(len);
                    Value::Text(s)
                }
            };
            values.push(v);
        }
        Ok(Tuple { values })
    }
}

fn ensure_len(data: &[u8], need: usize) -> StorageResult<()> {
    if data.len() < need {
        Err(StorageError::Codec(format!(
            "short buffer: need {need} bytes, have {}",
            data.len()
        )))
    } else {
        Ok(())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn types() -> Vec<DataType> {
        vec![
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
        ]
    }

    #[test]
    fn roundtrip_basic() {
        let t = Tuple::new(vec![
            Value::Int(42),
            Value::Float(3.5),
            Value::Text("hello".into()),
            Value::Bool(true),
        ]);
        let enc = t.encode(&types()).unwrap();
        let dec = Tuple::decode(&enc, &types()).unwrap();
        assert_eq!(t, dec);
    }

    #[test]
    fn roundtrip_with_nulls() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Float(-0.0),
            Value::Null,
            Value::Bool(false),
        ]);
        let enc = t.encode(&types()).unwrap();
        let dec = Tuple::decode(&enc, &types()).unwrap();
        assert!(dec.get(0).is_null());
        assert!(dec.get(2).is_null());
        assert_eq!(dec.get(3), &Value::Bool(false));
    }

    #[test]
    fn int_widens_to_float_column() {
        let t = Tuple::new(vec![Value::Int(7)]);
        let enc = t.encode(&[DataType::Float]).unwrap();
        let dec = Tuple::decode(&enc, &[DataType::Float]).unwrap();
        assert_eq!(dec.get(0), &Value::Float(7.0));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(t.encode(&types()).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let t = Tuple::new(vec![Value::Text("x".into())]);
        assert!(t.encode(&[DataType::Int]).is_err());
    }

    #[test]
    fn truncated_buffer_rejected() {
        let t = Tuple::new(vec![Value::Int(42)]);
        let enc = t.encode(&[DataType::Int]).unwrap();
        assert!(Tuple::decode(&enc[..enc.len() - 1], &[DataType::Int]).is_err());
    }

    #[test]
    fn empty_text_roundtrip() {
        let t = Tuple::new(vec![Value::Text(String::new())]);
        let enc = t.encode(&[DataType::Text]).unwrap();
        let dec = Tuple::decode(&enc, &[DataType::Text]).unwrap();
        assert_eq!(dec.get(0).as_str(), Some(""));
    }

    #[test]
    fn unicode_text_roundtrip() {
        let t = Tuple::new(vec![Value::Text("数据库 🦀".into())]);
        let enc = t.encode(&[DataType::Text]).unwrap();
        let dec = Tuple::decode(&enc, &[DataType::Text]).unwrap();
        assert_eq!(dec.get(0).as_str(), Some("数据库 🦀"));
    }
}

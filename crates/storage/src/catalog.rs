//! Table catalog: schemas, columns, constraints.
//!
//! The catalog is what lets `TRAIN ON *` automatically exclude columns with
//! unique constraints (Section 2.3 of the paper): `Schema::feature_columns`
//! implements exactly that rule.

use crate::error::{StorageError, StorageResult};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a table within a database.
pub type TableId = u32;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
    /// Unique constraint (also set for primary keys). `TRAIN ON *`
    /// excludes these columns as meaningless features.
    pub unique: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
            unique: false,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    pub fn types(&self) -> Vec<DataType> {
        self.columns.iter().map(|c| c.ty).collect()
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Column indexes usable as model features when the user writes
    /// `TRAIN ON *`: everything except unique-constrained columns and the
    /// label column itself.
    pub fn feature_columns(&self, label: &str) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.unique && c.name != label)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Metadata for one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub id: TableId,
    pub name: String,
    pub schema: Schema,
}

/// The database catalog: name ↔ id ↔ schema.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<TableId, TableMeta>,
    by_name: HashMap<String, TableId>,
    next_id: TableId,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    pub fn create_table(&mut self, name: &str, schema: Schema) -> StorageResult<TableId> {
        if self.by_name.contains_key(name) {
            return Err(StorageError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        if schema.columns.is_empty() {
            return Err(StorageError::Catalog(
                "table needs at least one column".into(),
            ));
        }
        let mut seen = HashMap::new();
        for c in &schema.columns {
            if seen.insert(c.name.clone(), ()).is_some() {
                return Err(StorageError::Catalog(format!(
                    "duplicate column '{}'",
                    c.name
                )));
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.tables.insert(
            id,
            TableMeta {
                id,
                name: name.to_string(),
                schema,
            },
        );
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    pub fn drop_table(&mut self, name: &str) -> StorageResult<TableId> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| StorageError::Catalog(format!("unknown table '{name}'")))?;
        self.tables.remove(&id);
        Ok(id)
    }

    pub fn get(&self, id: TableId) -> Option<&TableMeta> {
        self.tables.get(&id)
    }

    pub fn get_by_name(&self, name: &str) -> Option<&TableMeta> {
        self.by_name.get(name).and_then(|id| self.tables.get(id))
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.by_name.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn review_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int).not_null().unique(),
            ColumnDef::new("brand_name", DataType::Text),
            ColumnDef::new("stars", DataType::Int),
            ColumnDef::new("score", DataType::Float),
        ])
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        let id = c.create_table("review", review_schema()).unwrap();
        assert_eq!(c.get_by_name("review").unwrap().id, id);
        assert_eq!(c.get(id).unwrap().name, "review");
        c.drop_table("review").unwrap();
        assert!(c.get_by_name("review").is_none());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", review_schema()).unwrap();
        assert!(c.create_table("t", review_schema()).is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut c = Catalog::new();
        let s = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("a", DataType::Float),
        ]);
        assert!(c.create_table("t", s).is_err());
    }

    #[test]
    fn feature_columns_exclude_unique_and_label() {
        let s = review_schema();
        // `TRAIN ON *` predicting `score`: drops unique `id` and the label.
        let feats = s.feature_columns("score");
        assert_eq!(feats, vec![1, 2]);
    }

    #[test]
    fn column_index_lookup() {
        let s = review_schema();
        assert_eq!(s.column_index("stars"), Some(2));
        assert_eq!(s.column_index("nope"), None);
    }
}

//! # neurdb-storage
//!
//! Storage substrate for NeurDB-RS, the Rust reproduction of *NeurDB: On the
//! Design and Implementation of an AI-powered Autonomous Database* (CIDR
//! 2025). This crate provides what PostgreSQL provided the paper's
//! prototype: slotted pages, heap files, a sharded buffer pool (pluggable
//! clock/SIEVE/LRU replacement, scan-resistant admission hints) over a
//! simulated disk, a catalog with unique-constraint tracking (used by
//! `TRAIN ON *`), B-tree secondary indexes, and per-column statistics whose
//! histograms double as the learned query optimizer's data-distribution
//! input and the drift monitor's divergence signal.
//!
//! ```
//! use neurdb_storage::{BufferPool, DiskManager, Table, Schema, ColumnDef, DataType, Tuple, Value};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 64));
//! let schema = Schema::new(vec![
//!     ColumnDef::new("id", DataType::Int).not_null().unique(),
//!     ColumnDef::new("score", DataType::Float),
//! ]);
//! let table = Table::new("review", schema, pool);
//! table.insert(Tuple::new(vec![Value::Int(1), Value::Float(4.5)])).unwrap();
//! assert_eq!(table.len().unwrap(), 1);
//! ```

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod error;
pub mod heap;
pub mod page;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;

pub use btree::{BTreeIndex, BTreeIndexScan};
pub use buffer::{
    AccessHint, BufferConfig, BufferPool, BufferStats, DiskBackend, DiskManager, PolicyKind,
};
pub use catalog::{Catalog, ColumnDef, Schema, TableId, TableMeta};
pub use error::{StorageError, StorageResult};
pub use heap::{HeapBatchScan, HeapFile};
pub use page::{Page, PageId, RecordId, PAGE_SIZE};
pub use stats::{ColumnStats, Histogram, TableStats, DEFAULT_BUCKETS};
pub use table::{Table, TableIndexScan};
pub use tuple::Tuple;
pub use value::{DataType, Value};

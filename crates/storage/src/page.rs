//! Slotted-page layout.
//!
//! Each page is a fixed `PAGE_SIZE` byte array laid out as:
//!
//! ```text
//! +-------------------+----------------------+......+------------------+
//! | header (8 bytes)  | slot array (4B each) | free | tuple payloads   |
//! +-------------------+----------------------+......+------------------+
//! header: [n_slots: u16][free_end: u16][reserved: u32]
//! slot:   [offset: u16][len: u16]   (len == 0 => tombstone)
//! ```
//!
//! Payloads grow from the end of the page toward the slot array, PostgreSQL
//! style. Deleting a tuple leaves a tombstone; `compact` reclaims payload
//! space in place.

use crate::error::{StorageError, StorageResult};

/// Size of every page in bytes (8 KiB, matching PostgreSQL's default).
pub const PAGE_SIZE: usize = 8192;
const HEADER_SIZE: usize = 8;
const SLOT_SIZE: usize = 4;

/// Identifies a page on disk.
pub type PageId = u64;

/// Identifies a tuple: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

impl RecordId {
    pub fn new(page: PageId, slot: u16) -> Self {
        RecordId { page, slot }
    }
}

/// A fixed-size slotted page.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh page with zero slots and all payload space free.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // free_end starts at PAGE_SIZE.
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    /// Reconstruct a page from raw bytes (e.g. read from the disk manager).
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Codec(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Ok(Page { data })
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn n_slots(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_n_slots(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_free_end(&mut self, v: u16) {
        self.data[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let base = HEADER_SIZE + idx as usize * SLOT_SIZE;
        let off = u16::from_le_bytes([self.data[base], self.data[base + 1]]);
        let len = u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, idx: u16, off: u16, len: u16) {
        let base = HEADER_SIZE + idx as usize * SLOT_SIZE;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Contiguous free bytes between the slot array and the payload area.
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_SIZE + self.n_slots() as usize * SLOT_SIZE;
        (self.free_end() as usize).saturating_sub(slots_end)
    }

    /// Number of live (non-tombstone) tuples.
    pub fn live_count(&self) -> usize {
        (0..self.n_slots()).filter(|&i| self.slot(i).1 != 0).count()
    }

    /// Number of slots ever allocated (live + tombstones).
    pub fn slot_count(&self) -> u16 {
        self.n_slots()
    }

    /// Insert a tuple payload; returns the slot index.
    ///
    /// Reuses a tombstone slot when one exists (the payload still consumes
    /// fresh payload space until the next `compact`).
    pub fn insert(&mut self, payload: &[u8]) -> StorageResult<u16> {
        if payload.is_empty() {
            return Err(StorageError::Codec("empty payload not allowed".into()));
        }
        if payload.len() > u16::MAX as usize {
            return Err(StorageError::PageOverflow {
                needed: payload.len(),
                available: self.free_space(),
            });
        }
        // Find a reusable tombstone, else a fresh slot.
        let reuse = (0..self.n_slots()).find(|&i| self.slot(i).1 == 0);
        let extra_slot = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.free_space() < payload.len() + extra_slot {
            return Err(StorageError::PageOverflow {
                needed: payload.len() + extra_slot,
                available: self.free_space(),
            });
        }
        let new_end = self.free_end() as usize - payload.len();
        self.data[new_end..new_end + payload.len()].copy_from_slice(payload);
        self.set_free_end(new_end as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.n_slots();
                self.set_n_slots(s + 1);
                s
            }
        };
        self.set_slot(slot, new_end as u16, payload.len() as u16);
        Ok(slot)
    }

    /// Read the payload stored at `slot`.
    pub fn get(&self, slot: u16) -> StorageResult<&[u8]> {
        if slot >= self.n_slots() {
            return Err(StorageError::SlotNotFound { page: 0, slot });
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return Err(StorageError::SlotNotFound { page: 0, slot });
        }
        Ok(&self.data[off as usize..off as usize + len as usize])
    }

    /// Tombstone the tuple at `slot`.
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        if slot >= self.n_slots() || self.slot(slot).1 == 0 {
            return Err(StorageError::SlotNotFound { page: 0, slot });
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Replace the payload at `slot`. If the new payload fits in the old
    /// space it is updated in place; otherwise new payload space is consumed
    /// (compacting first if needed).
    pub fn update(&mut self, slot: u16, payload: &[u8]) -> StorageResult<()> {
        if slot >= self.n_slots() || self.slot(slot).1 == 0 {
            return Err(StorageError::SlotNotFound { page: 0, slot });
        }
        let (off, len) = self.slot(slot);
        if payload.len() <= len as usize {
            let off = off as usize;
            self.data[off..off + payload.len()].copy_from_slice(payload);
            self.set_slot(slot, off as u16, payload.len() as u16);
            return Ok(());
        }
        if self.free_space() < payload.len() {
            self.compact();
        }
        if self.free_space() < payload.len() {
            return Err(StorageError::PageOverflow {
                needed: payload.len(),
                available: self.free_space(),
            });
        }
        let new_end = self.free_end() as usize - payload.len();
        self.data[new_end..new_end + payload.len()].copy_from_slice(payload);
        self.set_free_end(new_end as u16);
        self.set_slot(slot, new_end as u16, payload.len() as u16);
        Ok(())
    }

    /// Slide all live payloads to the end of the page, reclaiming holes left
    /// by deletes and relocating updates. Slot indexes are stable.
    pub fn compact(&mut self) {
        let n = self.n_slots();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (off, len) = self.slot(i);
            if len != 0 {
                live.push((i, self.data[off as usize..(off + len) as usize].to_vec()));
            }
        }
        let mut end = PAGE_SIZE;
        for (slot, payload) in &live {
            end -= payload.len();
            self.data[end..end + payload.len()].copy_from_slice(payload);
            self.set_slot(*slot, end as u16, payload.len() as u16);
        }
        self.set_free_end(end as u16);
    }

    /// Iterate over `(slot, payload)` pairs of live tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.n_slots()).filter_map(move |i| {
            let (off, len) = self.slot(i);
            if len == 0 {
                None
            } else {
                Some((i, &self.data[off as usize..(off + len) as usize]))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_tombstones_and_reuses_slot() {
        let mut p = Page::new();
        let s0 = p.insert(b"aaa").unwrap();
        p.insert(b"bbb").unwrap();
        p.delete(s0).unwrap();
        assert!(p.get(s0).is_err());
        assert_eq!(p.live_count(), 1);
        let s2 = p.insert(b"ccc").unwrap();
        assert_eq!(s2, s0, "tombstoned slot should be reused");
        assert_eq!(p.get(s2).unwrap(), b"ccc");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let s = p.insert(b"abcdef").unwrap();
        p.update(s, b"xy").unwrap();
        assert_eq!(p.get(s).unwrap(), b"xy");
        p.update(s, b"a much longer payload than before").unwrap();
        assert_eq!(p.get(s).unwrap(), b"a much longer payload than before");
    }

    #[test]
    fn fills_until_overflow() {
        let mut p = Page::new();
        let payload = vec![7u8; 100];
        let mut n = 0;
        while p.insert(&payload).is_ok() {
            n += 1;
        }
        // 8192 - 8 header; each tuple costs 100 + 4 slot = 104.
        assert!(n >= 75, "expected at least 75 inserts, got {n}");
        assert!(matches!(
            p.insert(&payload),
            Err(StorageError::PageOverflow { .. })
        ));
    }

    #[test]
    fn compact_reclaims_space() {
        let mut p = Page::new();
        let payload = vec![1u8; 512];
        let mut slots = vec![];
        while let Ok(s) = p.insert(&payload) {
            slots.push(s);
        }
        // Delete every other tuple, compact, and check we can insert again.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        p.compact();
        assert!(p.insert(&payload).is_ok());
        // Survivors intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &payload[..]);
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let restored = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(restored.get(0).unwrap(), b"persist me");
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        let s = p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(s).unwrap();
        let collected: Vec<_> = p.iter().map(|(_, d)| d.to_vec()).collect();
        assert_eq!(collected, vec![b"a".to_vec(), b"c".to_vec()]);
    }
}

//! `Table`: schema + heap file + secondary indexes + cached statistics.

use crate::btree::BTreeIndex;
use crate::buffer::{AccessHint, BufferPool};
use crate::catalog::Schema;
use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::page::RecordId;
use crate::stats::TableStats;
use crate::tuple::Tuple;
use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A table: heap storage plus optional per-column B-tree indexes.
pub struct Table {
    pub name: String,
    pub schema: Schema,
    heap: HeapFile,
    indexes: RwLock<HashMap<usize, BTreeIndex>>,
    stats: RwLock<Option<Arc<TableStats>>>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema, pool: Arc<BufferPool>) -> Self {
        let types = schema.types();
        Table {
            name: name.into(),
            schema,
            heap: HeapFile::new(pool, types),
            indexes: RwLock::new(HashMap::new()),
            stats: RwLock::new(None),
        }
    }

    /// Rebuild a table over heap pages that already exist on disk (crash
    /// recovery from a checkpoint manifest). Indexes are not restored
    /// here; the recoverer re-creates them via [`Table::create_index`].
    pub fn with_heap_pages(
        name: impl Into<String>,
        schema: Schema,
        pool: Arc<BufferPool>,
        pages: Vec<crate::page::PageId>,
    ) -> Self {
        let types = schema.types();
        Table {
            name: name.into(),
            schema,
            heap: HeapFile::with_pages(pool, types, pages),
            indexes: RwLock::new(HashMap::new()),
            stats: RwLock::new(None),
        }
    }

    /// The ordered heap page ids (checkpoint manifest input).
    pub fn heap_page_ids(&self) -> Vec<crate::page::PageId> {
        self.heap.page_ids()
    }

    /// Columns that currently carry a B-tree index, ascending.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.indexes.read().keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Create a B-tree index on column `col` and backfill it.
    pub fn create_index(&self, col: usize) -> StorageResult<()> {
        if col >= self.schema.arity() {
            return Err(StorageError::Catalog(format!(
                "column index {col} out of range for '{}'",
                self.name
            )));
        }
        let mut idx = BTreeIndex::new();
        for (rid, tuple) in self.heap.scan()? {
            idx.insert(tuple.get(col).clone(), rid);
        }
        self.indexes.write().insert(col, idx);
        Ok(())
    }

    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.read().contains_key(&col)
    }

    /// Validate a tuple against the schema (arity, types, nullability).
    fn validate(&self, tuple: &Tuple) -> StorageResult<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::Constraint(format!(
                "tuple arity {} != schema arity {}",
                tuple.arity(),
                self.schema.arity()
            )));
        }
        for (i, (v, c)) in tuple
            .values
            .iter()
            .zip(self.schema.columns.iter())
            .enumerate()
        {
            if v.is_null() && !c.nullable {
                return Err(StorageError::Constraint(format!(
                    "null in non-nullable column {i} ('{}')",
                    c.name
                )));
            }
            if !v.compatible_with(c.ty) {
                return Err(StorageError::Constraint(format!(
                    "value {v} incompatible with column '{}' of type {}",
                    c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    pub fn insert(&self, tuple: Tuple) -> StorageResult<RecordId> {
        self.validate(&tuple)?;
        let rid = self.heap.insert(&tuple)?;
        let mut indexes = self.indexes.write();
        for (col, idx) in indexes.iter_mut() {
            idx.insert(tuple.get(*col).clone(), rid);
        }
        self.invalidate_stats();
        Ok(rid)
    }

    pub fn get(&self, rid: RecordId) -> StorageResult<Tuple> {
        self.heap.get(rid)
    }

    pub fn update(&self, rid: RecordId, tuple: Tuple) -> StorageResult<()> {
        self.validate(&tuple)?;
        let old = self.heap.get(rid)?;
        self.heap.update(rid, &tuple)?;
        let mut indexes = self.indexes.write();
        for (col, idx) in indexes.iter_mut() {
            let (ov, nv) = (old.get(*col), tuple.get(*col));
            if ov != nv {
                idx.remove(ov, rid);
                idx.insert(nv.clone(), rid);
            }
        }
        self.invalidate_stats();
        Ok(())
    }

    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        let old = self.heap.get(rid)?;
        self.heap.delete(rid)?;
        let mut indexes = self.indexes.write();
        for (col, idx) in indexes.iter_mut() {
            idx.remove(old.get(*col), rid);
        }
        self.invalidate_stats();
        Ok(())
    }

    pub fn scan(&self) -> StorageResult<Vec<(RecordId, Tuple)>> {
        self.heap.scan()
    }

    /// Batched scan: a pull cursor yielding `Vec<(RecordId, Tuple)>`
    /// batches of roughly `target_rows` live tuples. The executor's
    /// SeqScan operator pulls from this instead of materializing the
    /// whole table up front.
    pub fn scan_batches(&self, target_rows: usize) -> crate::heap::HeapBatchScan {
        self.heap.scan_batches(target_rows)
    }

    /// [`Table::scan_batches`] with an explicit buffer-pool access hint
    /// (the executor passes `Sequential` for morsel sweeps).
    pub fn scan_batches_hinted(
        &self,
        target_rows: usize,
        hint: AccessHint,
    ) -> crate::heap::HeapBatchScan {
        self.heap.scan_batches_hinted(target_rows, hint)
    }

    /// Partition the heap into `n` independent batched cursors over
    /// disjoint page ranges (one morsel stream per parallel scan worker);
    /// see [`crate::heap::HeapFile::scan_partitions`].
    pub fn scan_partitions(&self, n: usize, target_rows: usize) -> Vec<crate::heap::HeapBatchScan> {
        self.heap.scan_partitions(n, target_rows)
    }

    /// [`Table::scan_partitions`] with an explicit buffer-pool access
    /// hint (repartition producers and parallel scan workers pass
    /// `Sequential`).
    pub fn scan_partitions_hinted(
        &self,
        n: usize,
        target_rows: usize,
        hint: AccessHint,
    ) -> Vec<crate::heap::HeapBatchScan> {
        self.heap.scan_partitions_hinted(n, target_rows, hint)
    }

    /// Open an index-scan cursor over `[lo, hi]` (inclusive; `None` =
    /// unbounded; `lo == hi` is a point lookup) on column `col`. Returns
    /// `None` when the column carries no index. Pull batches with
    /// [`Table::index_scan_next`]; the index lock is held per-chunk, not
    /// across the whole scan.
    pub fn index_scan(
        &self,
        col: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<TableIndexScan> {
        let indexes = self.indexes.read();
        let idx = indexes.get(&col)?;
        Some(TableIndexScan {
            col,
            cursor: idx.scan(lo, hi),
        })
    }

    /// The next batch of `(rid, tuple)` pairs of an index scan, in key
    /// order, or `None` once exhausted (or if the index was dropped).
    pub fn index_scan_next(
        &self,
        scan: &mut TableIndexScan,
        max_rows: usize,
    ) -> StorageResult<Option<Vec<(RecordId, Tuple)>>> {
        let chunk = {
            let indexes = self.indexes.read();
            let Some(idx) = indexes.get(&scan.col) else {
                return Ok(None);
            };
            scan.cursor.next_chunk(idx, max_rows.max(1))
        };
        let Some(chunk) = chunk else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(chunk.len());
        for (_, rid) in chunk {
            // Heap fetches on behalf of an index descent pin warm: an
            // index scan's targets are part of the working set, not a
            // sweep the pool should recycle.
            out.push((rid, self.heap.get_with_hint(rid, AccessHint::Index)?));
        }
        Ok(Some(out))
    }

    /// Point lookup via a column index (falls back to a scan when absent).
    pub fn lookup(&self, col: usize, key: &Value) -> StorageResult<Vec<(RecordId, Tuple)>> {
        let rids = {
            let indexes = self.indexes.read();
            indexes.get(&col).map(|idx| idx.get(key))
        };
        match rids {
            Some(rids) => rids
                .into_iter()
                .map(|rid| Ok((rid, self.heap.get_with_hint(rid, AccessHint::Index)?)))
                .collect(),
            None => Ok(self
                .scan()?
                .into_iter()
                .filter(|(_, t)| t.get(col).sql_eq(key))
                .collect()),
        }
    }

    pub fn len(&self) -> StorageResult<usize> {
        self.heap.len()
    }

    pub fn is_empty(&self) -> StorageResult<bool> {
        self.heap.is_empty()
    }

    pub fn num_pages(&self) -> usize {
        self.heap.num_pages()
    }

    fn invalidate_stats(&self) {
        *self.stats.write() = None;
    }

    /// The cached statistics, if still valid (no rebuild). Planners use
    /// this on paths where an estimate is cosmetic and a post-write
    /// rebuild (a full scan) would not pay for itself.
    pub fn cached_stats(&self) -> Option<Arc<TableStats>> {
        self.stats.read().clone()
    }

    /// Table statistics, recomputed lazily after mutations.
    pub fn stats(&self) -> StorageResult<Arc<TableStats>> {
        if let Some(s) = self.stats.read().clone() {
            return Ok(s);
        }
        let rows = self.scan()?;
        let arity = self.schema.arity();
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); arity];
        for (_, t) in &rows {
            for (i, v) in t.values.iter().enumerate() {
                cols[i].push(v.clone());
            }
        }
        let stats = Arc::new(TableStats::build(&cols));
        *self.stats.write() = Some(stats.clone());
        Ok(stats)
    }
}

/// Cursor state of a table index scan (see [`Table::index_scan`]): the
/// B-tree cursor plus the column it ranges over. Owns no locks — each
/// [`Table::index_scan_next`] call re-acquires the index briefly.
pub struct TableIndexScan {
    col: usize,
    cursor: crate::btree::BTreeIndexScan,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DiskManager;
    use crate::catalog::ColumnDef;
    use crate::value::DataType;

    fn make_table() -> Table {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::new()), 64));
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int).not_null().unique(),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("score", DataType::Float),
        ]);
        Table::new("t", schema, pool)
    }

    fn row(id: i64, name: &str, score: f64) -> Tuple {
        Tuple::new(vec![
            Value::Int(id),
            Value::Text(name.into()),
            Value::Float(score),
        ])
    }

    #[test]
    fn crud_with_index_maintenance() {
        let t = make_table();
        t.create_index(0).unwrap();
        let rid = t.insert(row(1, "a", 0.5)).unwrap();
        assert_eq!(t.lookup(0, &Value::Int(1)).unwrap().len(), 1);
        t.update(rid, row(2, "a", 0.6)).unwrap();
        assert!(t.lookup(0, &Value::Int(1)).unwrap().is_empty());
        assert_eq!(t.lookup(0, &Value::Int(2)).unwrap().len(), 1);
        t.delete(rid).unwrap();
        assert!(t.lookup(0, &Value::Int(2)).unwrap().is_empty());
    }

    #[test]
    fn lookup_without_index_scans() {
        let t = make_table();
        for i in 0..50 {
            t.insert(row(i, "x", i as f64)).unwrap();
        }
        let hits = t.lookup(2, &Value::Float(7.0)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.get(0), &Value::Int(7));
    }

    #[test]
    fn constraint_violations() {
        let t = make_table();
        // Wrong arity.
        assert!(t.insert(Tuple::new(vec![Value::Int(1)])).is_err());
        // Null in non-nullable.
        assert!(t
            .insert(Tuple::new(vec![Value::Null, Value::Null, Value::Null]))
            .is_err());
        // Type mismatch.
        assert!(t
            .insert(Tuple::new(vec![
                Value::Text("no".into()),
                Value::Null,
                Value::Null
            ]))
            .is_err());
    }

    #[test]
    fn stats_cached_and_invalidated() {
        let t = make_table();
        for i in 0..100 {
            t.insert(row(i, "x", i as f64)).unwrap();
        }
        let s1 = t.stats().unwrap();
        assert_eq!(s1.row_count, 100);
        let s2 = t.stats().unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "stats should be cached");
        t.insert(row(100, "y", 1.0)).unwrap();
        let s3 = t.stats().unwrap();
        assert_eq!(s3.row_count, 101);
    }

    #[test]
    fn index_scan_cursor_ranges_and_points() {
        let t = make_table();
        t.create_index(0).unwrap();
        for i in 0..200 {
            t.insert(row(i, "x", i as f64)).unwrap();
        }
        // No index on column 1.
        assert!(t.index_scan(1, None, None).is_none());
        // Range [50, 59].
        let mut cur = t
            .index_scan(0, Some(&Value::Int(50)), Some(&Value::Int(59)))
            .unwrap();
        let mut got = Vec::new();
        while let Some(b) = t.index_scan_next(&mut cur, 4).unwrap() {
            got.extend(b.into_iter().map(|(_, tup)| tup.get(0).clone()));
        }
        assert_eq!(got, (50..60).map(Value::Int).collect::<Vec<_>>());
        // Point lookup lo == hi.
        let mut cur = t
            .index_scan(0, Some(&Value::Int(7)), Some(&Value::Int(7)))
            .unwrap();
        let b = t.index_scan_next(&mut cur, 64).unwrap().unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].1.get(0), &Value::Int(7));
        assert!(t.index_scan_next(&mut cur, 64).unwrap().is_none());
    }

    #[test]
    fn backfilled_index() {
        let t = make_table();
        for i in 0..20 {
            t.insert(row(i, "x", 0.0)).unwrap();
        }
        t.create_index(0).unwrap();
        assert!(t.has_index(0));
        assert_eq!(t.lookup(0, &Value::Int(13)).unwrap().len(), 1);
    }
}

//! Sharded buffer pool with pluggable replacement over a pluggable disk.
//!
//! [`DiskBackend`] is the trait surface page storage hides behind: the
//! in-memory [`DiskManager`] (the seed's simulated disk, still the default
//! for volatile databases and benchmarks) and `neurdb-wal`'s file-backed
//! disk both implement it. Every read and write is charged through atomic
//! counters, so benchmarks can report "I/O" volume and the buffer-usage
//! statistics the learned query optimizer consumes as part of its *system
//! condition* input (Section 4.2 of the paper).
//!
//! # Sharding
//!
//! Pages hash to one of N independent shards (`page_id % shards`), each
//! with its own latch, frame table, and replacement state, so the dop-N
//! morsel workers of the parallel executor stop serializing on a single
//! pool mutex. Page access runs the caller's closure under the owning
//! shard's latch only; a scan worker touching shard 3 never blocks a
//! point lookup hitting shard 5.
//!
//! # Replacement and scan resistance
//!
//! Replacement is pluggable behind [`ReplacementPolicy`]: clock
//! (second-chance, the default), SIEVE, and strict LRU, selected by
//! [`BufferConfig::policy`] or switched at runtime with
//! [`BufferPool::set_policy`] (surfaced as `SET buffer_policy` /
//! `SHOW buffer` in SQL). Callers pass an [`AccessHint`] describing how
//! they will use the page: `Sequential` admissions enter *cold* (at the
//! eviction-preferred position, and further sequential touches never
//! promote them — a single-reference cap), so a large scan recycles its
//! own frames instead of flushing the hot pages point lookups and index
//! probes depend on. `Point` and `Index` accesses admit and promote warm.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use neurdb_obs::trace;
use neurdb_obs::Histogram;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Page-granular storage behind the buffer pool.
///
/// Implementations must be safe for concurrent use; the buffer pool calls
/// them while holding a shard latch, with whole-page reads and writes.
pub trait DiskBackend: Send + Sync {
    /// Allocate a fresh zeroed page; returns its id. Fails when the
    /// backing store cannot grow (e.g. disk full).
    fn allocate(&self) -> StorageResult<PageId>;

    /// Read a whole page image.
    fn read(&self, id: PageId) -> StorageResult<Box<[u8]>>;

    /// Overwrite a whole page image.
    fn write(&self, id: PageId, data: &[u8]) -> StorageResult<()>;

    /// Force written pages to stable storage (no-op for volatile disks).
    fn sync(&self) -> StorageResult<()>;

    /// Number of allocated pages.
    fn num_pages(&self) -> usize;

    /// Total page reads served.
    fn read_count(&self) -> u64;

    /// Total page writes accepted.
    fn write_count(&self) -> u64;
}

/// Simulated disk: a growable array of page images plus I/O counters.
pub struct DiskManager {
    pages: RwLock<Vec<Option<Box<[u8]>>>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl Default for DiskManager {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager {
    pub fn new() -> Self {
        DiskManager {
            pages: RwLock::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }
}

impl DiskBackend for DiskManager {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.write();
        pages.push(Some(vec![0u8; PAGE_SIZE].into_boxed_slice()));
        Ok((pages.len() - 1) as PageId)
    }

    fn read(&self, id: PageId) -> StorageResult<Box<[u8]>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.read();
        pages
            .get(id as usize)
            .and_then(|p| p.clone())
            .ok_or(StorageError::PageNotFound(id))
    }

    fn write(&self, id: PageId, data: &[u8]) -> StorageResult<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.write();
        match pages.get_mut(id as usize) {
            Some(slot) => {
                *slot = Some(data.to_vec().into_boxed_slice());
                Ok(())
            }
            None => Err(StorageError::PageNotFound(id)),
        }
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

// ----------------------------- access hints -----------------------------

/// How the caller is about to use a page — the executor's admission hint.
///
/// The hint decides whether the page is admitted (and re-referenced)
/// *warm* — protected from the next eviction sweep — or *cold*, placed at
/// the eviction-preferred position with a single-reference cap so one
/// pass of a large scan cannot flush the working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessHint {
    /// Point access: single-row fetch, DML. Admits warm. The default for
    /// the un-hinted `with_page`/`with_page_mut` entry points.
    #[default]
    Point,
    /// One touch of a large sequential sweep (morsel scans, repartition
    /// producers). Admits cold; repeated sequential touches never promote.
    Sequential,
    /// A fetch on behalf of an index descent or index-driven lookup.
    /// Admits warm, like `Point`.
    Index,
}

impl AccessHint {
    /// Whether this access should protect the page from the next sweep.
    fn warm(self) -> bool {
        !matches!(self, AccessHint::Sequential)
    }

    /// Whether this access belongs to the point-lookup class tracked by
    /// [`BufferStats::point_hit_ratio`] (`Point` and `Index`).
    fn is_point_class(self) -> bool {
        !matches!(self, AccessHint::Sequential)
    }
}

// --------------------------- replacement policy --------------------------

/// Replacement policy selector (see [`ReplacementPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Second-chance clock (the default).
    #[default]
    Clock,
    /// SIEVE: FIFO queue with a lazily-moving visited hand.
    Sieve,
    /// Strict least-recently-used.
    Lru,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Clock, PolicyKind::Sieve, PolicyKind::Lru];

    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Clock => "clock",
            PolicyKind::Sieve => "sieve",
            PolicyKind::Lru => "lru",
        }
    }

    /// Parse a policy name (case-insensitive), as accepted by
    /// `SET buffer_policy`.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "clock" => Some(PolicyKind::Clock),
            "sieve" => Some(PolicyKind::Sieve),
            "lru" => Some(PolicyKind::Lru),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            PolicyKind::Clock => 0,
            PolicyKind::Sieve => 1,
            PolicyKind::Lru => 2,
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::parse(s).ok_or_else(|| format!("unknown buffer policy '{s}'"))
    }
}

/// Buffer-pool geometry and replacement configuration.
#[derive(Debug, Clone, Copy)]
pub struct BufferConfig {
    /// Shard count; `0` picks `min(8, capacity)`.
    pub shards: usize,
    /// Total frames across all shards.
    pub capacity: usize,
    /// Replacement policy every shard starts with.
    pub policy: PolicyKind,
    /// When `false`, `Sequential` hints are treated as `Point` (scan
    /// resistance off — the unhinted baseline benchmarks compare against).
    pub scan_resistant: bool,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            shards: 0,
            capacity: 4096,
            policy: PolicyKind::Clock,
            scan_resistant: true,
        }
    }
}

impl BufferConfig {
    pub fn with_capacity(capacity: usize) -> BufferConfig {
        BufferConfig {
            capacity,
            ..BufferConfig::default()
        }
    }
}

/// Per-shard replacement state. One instance per shard, always called
/// under that shard's latch; `slot` indexes the shard's frame table.
///
/// The pool keeps the frame table and the page map; the policy only
/// orders occupied slots for eviction. Admissions and touches carry the
/// `warm` bit derived from the caller's [`AccessHint`]: cold admissions
/// go to the eviction-preferred position and cold touches never promote.
trait ReplacementPolicy: Send {
    fn kind(&self) -> PolicyKind;

    /// A page was installed into `slot`.
    fn admit(&mut self, slot: usize, warm: bool);

    /// The resident page in `slot` was accessed again.
    fn touch(&mut self, slot: usize, warm: bool);

    /// Choose the next victim among occupied slots, skipping any for
    /// which `pinned` returns true. `None` when nothing is evictable.
    fn victim(&mut self, pinned: &dyn Fn(usize) -> bool) -> Option<usize>;

    /// `slot` was evicted (or the shard is being rebuilt).
    fn remove(&mut self, slot: usize);
}

fn new_policy(kind: PolicyKind, slots: usize) -> Box<dyn ReplacementPolicy> {
    match kind {
        PolicyKind::Clock => Box::new(ClockPolicy::new(slots)),
        PolicyKind::Sieve => Box::new(SievePolicy::new(slots)),
        PolicyKind::Lru => Box::new(LruPolicy::new(slots)),
    }
}

/// Second-chance clock. Warm accesses set the reference bit; cold
/// admissions start unreferenced *and flagged cold*: the victim search
/// drains cold frames (a scan's own recent pages) before the clock hand
/// ever considers warm residents, so one sequential sweep recycles its
/// own frames instead of the working set. A warm touch un-colds a frame.
struct ClockPolicy {
    occupied: Vec<bool>,
    referenced: Vec<bool>,
    cold: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    fn new(slots: usize) -> ClockPolicy {
        ClockPolicy {
            occupied: vec![false; slots],
            referenced: vec![false; slots],
            cold: vec![false; slots],
            hand: 0,
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Clock
    }

    fn admit(&mut self, slot: usize, warm: bool) {
        self.occupied[slot] = true;
        self.referenced[slot] = warm;
        self.cold[slot] = !warm;
    }

    fn touch(&mut self, slot: usize, warm: bool) {
        if warm {
            self.referenced[slot] = true;
            self.cold[slot] = false;
        }
    }

    fn victim(&mut self, pinned: &dyn Fn(usize) -> bool) -> Option<usize> {
        let n = self.occupied.len();
        // Pass A: any cold frame goes first (hand-relative for fairness).
        for i in 0..n {
            let slot = (self.hand + i) % n;
            if self.occupied[slot] && self.cold[slot] && !pinned(slot) {
                return Some(slot);
            }
        }
        // Pass B: standard second-chance sweep over the warm residents.
        for _ in 0..2 * n {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            if !self.occupied[slot] || pinned(slot) {
                continue;
            }
            if self.referenced[slot] {
                self.referenced[slot] = false;
                continue;
            }
            return Some(slot);
        }
        None
    }

    fn remove(&mut self, slot: usize) {
        self.occupied[slot] = false;
        self.referenced[slot] = false;
        self.cold[slot] = false;
    }
}

/// SIEVE (Zhang et al., NSDI'24): a FIFO order with a hand that sweeps
/// from old to new clearing visited bits; unvisited pages are evicted
/// where the hand stands, and — unlike clock — survivors are never moved.
/// Warm admissions enter at the queue head (newest); cold admissions are
/// inserted *at the hand*, i.e. first in line for eviction.
struct SievePolicy {
    /// Occupied slots, oldest first.
    order: Vec<usize>,
    visited: Vec<bool>,
    cold: Vec<bool>,
    /// Index into `order` where the next sweep resumes.
    hand: usize,
}

impl SievePolicy {
    fn new(slots: usize) -> SievePolicy {
        SievePolicy {
            order: Vec::with_capacity(slots),
            visited: vec![false; slots],
            cold: vec![false; slots],
            hand: 0,
        }
    }

    fn unlink(&mut self, pos: usize) -> usize {
        let slot = self.order.remove(pos);
        if pos < self.hand {
            self.hand -= 1;
        }
        slot
    }
}

impl ReplacementPolicy for SievePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Sieve
    }

    fn admit(&mut self, slot: usize, warm: bool) {
        self.visited[slot] = false;
        self.cold[slot] = !warm;
        if warm {
            self.order.push(slot);
        } else {
            // Eviction-preferred position: where the hand stands.
            let at = self.hand.min(self.order.len());
            self.order.insert(at, slot);
        }
    }

    fn touch(&mut self, slot: usize, warm: bool) {
        if warm {
            self.visited[slot] = true;
            self.cold[slot] = false;
        }
    }

    fn victim(&mut self, pinned: &dyn Fn(usize) -> bool) -> Option<usize> {
        if self.order.is_empty() {
            return None;
        }
        // Pass A: drain cold entries (oldest-first from the hand) before
        // the sieve ever considers warm residents.
        let n = self.order.len();
        for i in 0..n {
            let pos = (self.hand + i) % n;
            let slot = self.order[pos];
            if self.cold[slot] && !pinned(slot) {
                return Some(self.unlink(pos));
            }
        }
        // Pass B: the SIEVE sweep — clear visited bits moving old-to-new,
        // evict the first unvisited entry, hand stays where it evicted.
        for _ in 0..2 * n {
            if self.hand >= self.order.len() {
                self.hand = 0;
            }
            let slot = self.order[self.hand];
            if pinned(slot) {
                self.hand += 1;
                continue;
            }
            if self.visited[slot] {
                self.visited[slot] = false;
                self.hand += 1;
                continue;
            }
            self.order.remove(self.hand);
            return Some(slot);
        }
        None
    }

    fn remove(&mut self, slot: usize) {
        if let Some(pos) = self.order.iter().position(|&s| s == slot) {
            self.unlink(pos);
        }
        self.visited[slot] = false;
        self.cold[slot] = false;
    }
}

/// Strict LRU via logical timestamps. Warm accesses stamp the slot with
/// the current tick; cold admissions stamp zero (oldest possible) and
/// cold touches never refresh, so scanned-once pages are evicted first.
struct LruPolicy {
    occupied: Vec<bool>,
    stamp: Vec<u64>,
    tick: u64,
}

impl LruPolicy {
    fn new(slots: usize) -> LruPolicy {
        LruPolicy {
            occupied: vec![false; slots],
            stamp: vec![0; slots],
            tick: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

impl ReplacementPolicy for LruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn admit(&mut self, slot: usize, warm: bool) {
        self.occupied[slot] = true;
        self.stamp[slot] = if warm { self.next_tick() } else { 0 };
    }

    fn touch(&mut self, slot: usize, warm: bool) {
        if warm {
            self.stamp[slot] = self.next_tick();
        }
    }

    fn victim(&mut self, pinned: &dyn Fn(usize) -> bool) -> Option<usize> {
        self.occupied
            .iter()
            .enumerate()
            .filter(|&(slot, &occ)| occ && !pinned(slot))
            .min_by_key(|&(slot, _)| self.stamp[slot])
            .map(|(slot, _)| slot)
    }

    fn remove(&mut self, slot: usize) {
        self.occupied[slot] = false;
        self.stamp[slot] = 0;
    }
}

// ------------------------------ statistics ------------------------------

/// Buffer-pool usage statistics; feeds the QO's system-condition vector.
/// Aggregated across shards by [`BufferPool::stats`]; per-shard via
/// [`BufferPool::shard_stats`] and per-policy via
/// [`BufferPool::policy_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Hits/misses of the point-lookup class (`Point` and `Index` hints)
    /// only — the signal the scan-resistance benchmarks gate on.
    pub point_hits: u64,
    pub point_misses: u64,
    pub capacity: usize,
    pub resident: usize,
}

impl BufferStats {
    /// Hit ratio in `[0,1]`; 1.0 when the pool has never been probed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hit ratio of point-class accesses only (1.0 when none happened).
    pub fn point_hit_ratio(&self) -> f64 {
        let total = self.point_hits + self.point_misses;
        if total == 0 {
            1.0
        } else {
            self.point_hits as f64 / total as f64
        }
    }

    /// Fraction of the pool holding pages.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.resident as f64 / self.capacity as f64
        }
    }

    fn accumulate(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.point_hits += other.point_hits;
        self.point_misses += other.point_misses;
        self.capacity += other.capacity;
        self.resident += other.resident;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ShardCounters {
    hits: u64,
    misses: u64,
    evictions: u64,
    point_hits: u64,
    point_misses: u64,
}

// -------------------------------- frames --------------------------------

struct Frame {
    page_id: PageId,
    page: Page,
    dirty: bool,
    /// Bumped on every mutation; `flush_all` re-verifies it before
    /// clearing the dirty bit, so a write that lands while the flusher
    /// is off the latch is never lost.
    version: u64,
    pin_count: u32,
}

struct ShardInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    policy: Box<dyn ReplacementPolicy>,
    /// Hit/miss/eviction counters, split by the policy that was active
    /// when they accrued (indexed by [`PolicyKind::index`]).
    counters: [ShardCounters; 3],
}

impl ShardInner {
    fn counters_mut(&mut self) -> &mut ShardCounters {
        let idx = self.policy.kind().index();
        &mut self.counters[idx]
    }
}

/// Latency sinks for physical page I/O, attached by the durability layer
/// (`buffer.read_ns` / `buffer.write_ns` in the metrics registry).
struct PoolMetrics {
    read_ns: Arc<Histogram>,
    write_ns: Arc<Histogram>,
}

// --------------------------------- pool ---------------------------------

/// A sharded buffer pool over a [`DiskBackend`].
///
/// Each page maps to exactly one shard; `with_page*` callers copy tuple
/// bytes out while holding that shard's latch via the closure, so two
/// threads touching different shards proceed fully in parallel. See the
/// module docs for the replacement and scan-resistance model.
pub struct BufferPool {
    disk: Arc<dyn DiskBackend>,
    shards: Vec<Mutex<ShardInner>>,
    capacity: usize,
    scan_resistant: bool,
    policy: RwLock<PolicyKind>,
    metrics: RwLock<Option<PoolMetrics>>,
}

impl BufferPool {
    /// A pool with default geometry (`min(8, capacity)` shards, clock
    /// replacement, scan resistance on).
    pub fn new(disk: Arc<dyn DiskBackend>, capacity: usize) -> Self {
        Self::with_config(disk, BufferConfig::with_capacity(capacity))
    }

    pub fn with_config(disk: Arc<dyn DiskBackend>, config: BufferConfig) -> Self {
        assert!(config.capacity > 0, "buffer pool needs at least one frame");
        let shards = if config.shards == 0 {
            config.capacity.min(8)
        } else {
            config.shards.clamp(1, config.capacity)
        };
        // Distribute frames as evenly as possible; every shard gets at
        // least one, and the totals sum to exactly `capacity`.
        let base = config.capacity / shards;
        let extra = config.capacity % shards;
        let shard_vec = (0..shards)
            .map(|i| {
                let slots = base + usize::from(i < extra);
                Mutex::new(ShardInner {
                    frames: (0..slots).map(|_| None).collect(),
                    map: HashMap::with_capacity(slots),
                    policy: new_policy(config.policy, slots),
                    counters: [ShardCounters::default(); 3],
                })
            })
            .collect();
        BufferPool {
            disk,
            shards: shard_vec,
            capacity: config.capacity,
            scan_resistant: config.scan_resistant,
            policy: RwLock::new(config.policy),
            metrics: RwLock::new(None),
        }
    }

    pub fn disk(&self) -> &Arc<dyn DiskBackend> {
        &self.disk
    }

    /// Number of shards pages hash across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The replacement policy currently active in every shard.
    pub fn policy(&self) -> PolicyKind {
        *self.policy.read()
    }

    /// Whether `Sequential` hints are honored (cold admission).
    pub fn scan_resistant(&self) -> bool {
        self.scan_resistant
    }

    /// Attach physical-I/O latency sinks (`buffer.read_ns` and
    /// `buffer.write_ns`); every disk read/write the pool performs is
    /// timed into them from then on.
    pub fn attach_metrics(&self, read_ns: Arc<Histogram>, write_ns: Arc<Histogram>) {
        *self.metrics.write() = Some(PoolMetrics { read_ns, write_ns });
    }

    /// Switch every shard to `kind` at runtime. Resident pages are
    /// re-admitted warm in slot order (their recency history does not
    /// transfer); counters keep accruing under the new policy's bucket.
    pub fn set_policy(&self, kind: PolicyKind) {
        // Take the kind lock first so concurrent switches serialize and
        // `policy()` never disagrees with the shards for long.
        let mut current = self.policy.write();
        for shard in &self.shards {
            let mut inner = shard.lock();
            let slots = inner.frames.len();
            let mut policy = new_policy(kind, slots);
            for (slot, frame) in inner.frames.iter().enumerate() {
                if frame.is_some() {
                    policy.admit(slot, true);
                }
            }
            inner.policy = policy;
        }
        *current = kind;
    }

    fn shard_of(&self, id: PageId) -> &Mutex<ShardInner> {
        &self.shards[(id as usize) % self.shards.len()]
    }

    fn timed_read(&self, id: PageId) -> StorageResult<Box<[u8]>> {
        let metrics = self.metrics.read();
        match &*metrics {
            Some(m) => {
                let start = Instant::now();
                let out = self.disk.read(id);
                m.read_ns.record_duration(start.elapsed());
                out
            }
            None => self.disk.read(id),
        }
    }

    fn timed_write(&self, id: PageId, data: &[u8]) -> StorageResult<()> {
        let metrics = self.metrics.read();
        match &*metrics {
            Some(m) => {
                let start = Instant::now();
                let out = self.disk.write(id, data);
                m.write_ns.record_duration(start.elapsed());
                out
            }
            None => self.disk.write(id, data),
        }
    }

    /// Allocate a brand-new page on disk and cache it (warm: freshly
    /// allocated pages are about to be written).
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let id = self.disk.allocate()?;
        let shard = self.shard_of(id);
        let mut inner = shard.lock();
        let idx = self.free_or_evict(&mut inner)?;
        inner.map.insert(id, idx);
        inner.frames[idx] = Some(Frame {
            page_id: id,
            page: Page::new(),
            dirty: true,
            version: 1,
            pin_count: 0,
        });
        inner.policy.admit(idx, true);
        Ok(id)
    }

    /// Run `f` with shared access to the page (point-access hint).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        self.with_page_hint(id, AccessHint::Point, f)
    }

    /// Run `f` with shared access to the page, using `hint` for
    /// admission/promotion.
    pub fn with_page_hint<R>(
        &self,
        id: PageId,
        hint: AccessHint,
        f: impl FnOnce(&Page) -> R,
    ) -> StorageResult<R> {
        let shard = self.shard_of(id);
        let mut inner = shard.lock();
        let idx = self.load(&mut inner, id, hint)?;
        let frame = inner.frames[idx].as_ref().expect("frame just loaded");
        Ok(f(&frame.page))
    }

    /// Run `f` with mutable access to the page; marks it dirty
    /// (point-access hint).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        self.with_page_mut_hint(id, AccessHint::Point, f)
    }

    /// Run `f` with mutable access to the page, using `hint` for
    /// admission/promotion; marks it dirty.
    pub fn with_page_mut_hint<R>(
        &self,
        id: PageId,
        hint: AccessHint,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let shard = self.shard_of(id);
        let mut inner = shard.lock();
        let idx = self.load(&mut inner, id, hint)?;
        let frame = inner.frames[idx].as_mut().expect("frame just loaded");
        frame.dirty = true;
        frame.version += 1;
        Ok(f(&mut frame.page))
    }

    /// Write all dirty pages back to disk.
    ///
    /// Disk writes happen *off* the shard latches: each shard's dirty
    /// pages are copied out under the latch, written outside it, and the
    /// dirty bits cleared only after re-verifying (by frame version) that
    /// no concurrent mutation landed in between — so a checkpoint never
    /// stalls readers for the duration of its I/O, and never loses a
    /// racing write.
    pub fn flush_all(&self) -> StorageResult<()> {
        for shard in &self.shards {
            // Phase 1: snapshot dirty frames under the latch.
            let dirty: Vec<(usize, PageId, u64, Vec<u8>)> = {
                let inner = shard.lock();
                inner
                    .frames
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, f)| {
                        f.as_ref()
                            .filter(|f| f.dirty)
                            .map(|f| (slot, f.page_id, f.version, f.page.as_bytes().to_vec()))
                    })
                    .collect()
            };
            if dirty.is_empty() {
                continue;
            }
            // Phase 2: write outside the latch.
            for (_, id, _, bytes) in &dirty {
                self.timed_write(*id, bytes)?;
            }
            // Phase 3: clear dirty bits only where the snapshot is still
            // current (same page in the slot, no mutation since).
            let mut inner = shard.lock();
            for (slot, id, version, _) in dirty {
                if let Some(frame) = inner.frames[slot].as_mut() {
                    if frame.page_id == id && frame.version == version {
                        frame.dirty = false;
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of resident pages currently dirty (the checkpointer's
    /// flush frontier).
    pub fn dirty_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .frames
                    .iter()
                    .filter(|f| f.as_ref().is_some_and(|f| f.dirty))
                    .count()
            })
            .sum()
    }

    /// Write all dirty pages back and force them to stable storage — the
    /// page-flush half of a checkpoint.
    pub fn flush_all_and_sync(&self) -> StorageResult<()> {
        self.flush_all()?;
        self.disk.sync()
    }

    /// Aggregate statistics across all shards and policies.
    pub fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for s in self.shard_stats() {
            total.accumulate(&s);
        }
        total
    }

    /// Per-shard statistics (each entry sums that shard's counters over
    /// every policy it has run under).
    pub fn shard_stats(&self) -> Vec<BufferStats> {
        self.shards
            .iter()
            .map(|shard| {
                let inner = shard.lock();
                let mut s = BufferStats {
                    capacity: inner.frames.len(),
                    resident: inner.map.len(),
                    ..BufferStats::default()
                };
                for c in &inner.counters {
                    s.hits += c.hits;
                    s.misses += c.misses;
                    s.evictions += c.evictions;
                    s.point_hits += c.point_hits;
                    s.point_misses += c.point_misses;
                }
                s
            })
            .collect()
    }

    /// Counters split by the policy under which they accrued, summed
    /// across shards. Capacity/resident are not attributed to a policy
    /// and read zero here; policies this pool never ran report all-zero.
    pub fn policy_stats(&self) -> Vec<(PolicyKind, BufferStats)> {
        let mut per: [BufferStats; 3] = Default::default();
        for shard in &self.shards {
            let inner = shard.lock();
            for (i, c) in inner.counters.iter().enumerate() {
                per[i].hits += c.hits;
                per[i].misses += c.misses;
                per[i].evictions += c.evictions;
                per[i].point_hits += c.point_hits;
                per[i].point_misses += c.point_misses;
            }
        }
        PolicyKind::ALL.into_iter().zip(per).collect()
    }

    fn load(&self, inner: &mut ShardInner, id: PageId, hint: AccessHint) -> StorageResult<usize> {
        let warm = !self.scan_resistant || hint.warm();
        let point = hint.is_point_class();
        if let Some(&idx) = inner.map.get(&id) {
            let c = inner.counters_mut();
            c.hits += 1;
            if point {
                c.point_hits += 1;
            }
            inner.policy.touch(idx, warm);
            return Ok(idx);
        }
        let c = inner.counters_mut();
        c.misses += 1;
        if point {
            c.point_misses += 1;
        }
        // A miss is the interesting (slow) case: the disk read gets its
        // own span, tagged with the page and the executor's access hint.
        let mut span = trace::span("buffer.read");
        span.attr("page", id);
        span.attr(
            "hint",
            match hint {
                AccessHint::Point => "point",
                AccessHint::Sequential => "sequential",
                AccessHint::Index => "index",
            },
        );
        let bytes = self.timed_read(id)?;
        drop(span);
        let idx = self.free_or_evict(inner)?;
        inner.map.insert(id, idx);
        inner.frames[idx] = Some(Frame {
            page_id: id,
            page: Page::from_bytes(&bytes)?,
            dirty: false,
            version: 0,
            pin_count: 0,
        });
        inner.policy.admit(idx, warm);
        Ok(idx)
    }

    /// A free slot, or the policy's victim (written back if dirty).
    fn free_or_evict(&self, inner: &mut ShardInner) -> StorageResult<usize> {
        if let Some(idx) = inner.frames.iter().position(|f| f.is_none()) {
            return Ok(idx);
        }
        let ShardInner { frames, policy, .. } = inner;
        let victim =
            policy.victim(&|slot: usize| frames[slot].as_ref().is_none_or(|f| f.pin_count > 0));
        let Some(idx) = victim else {
            return Err(StorageError::BufferPoolFull);
        };
        let frame = inner.frames[idx].as_ref().expect("victim frame occupied");
        let (id, dirty, bytes) = (frame.page_id, frame.dirty, frame.page.as_bytes().to_vec());
        if dirty {
            self.timed_write(id, &bytes)?;
        }
        inner.map.remove(&id);
        inner.frames[idx] = None;
        inner.policy.remove(idx);
        inner.counters_mut().evictions += 1;
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(DiskManager::new()), cap)
    }

    fn pool_with(cap: usize, shards: usize, policy: PolicyKind) -> BufferPool {
        BufferPool::with_config(
            Arc::new(DiskManager::new()),
            BufferConfig {
                shards,
                capacity: cap,
                policy,
                scan_resistant: true,
            },
        )
    }

    #[test]
    fn allocate_and_readback() {
        let p = pool(4);
        let id = p.allocate_page().unwrap();
        p.with_page_mut(id, |pg| pg.insert(b"data").unwrap())
            .unwrap();
        let bytes = p.with_page(id, |pg| pg.get(0).unwrap().to_vec()).unwrap();
        assert_eq!(bytes, b"data");
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        for policy in PolicyKind::ALL {
            let p = pool_with(2, 2, policy);
            let ids: Vec<_> = (0..6).map(|_| p.allocate_page().unwrap()).collect();
            for (i, id) in ids.iter().enumerate() {
                p.with_page_mut(*id, |pg| pg.insert(format!("v{i}").as_bytes()).unwrap())
                    .unwrap();
            }
            // Every page is still readable after evictions.
            for (i, id) in ids.iter().enumerate() {
                let got = p.with_page(*id, |pg| pg.get(0).unwrap().to_vec()).unwrap();
                assert_eq!(got, format!("v{i}").as_bytes());
            }
            assert!(p.stats().evictions >= 4, "policy {policy:?}");
        }
    }

    #[test]
    fn hit_ratio_reflects_access_pattern() {
        let p = pool(8);
        let id = p.allocate_page().unwrap();
        for _ in 0..100 {
            p.with_page(id, |_| ()).unwrap();
        }
        assert!(p.stats().hit_ratio() > 0.95);
    }

    #[test]
    fn flush_all_writes_dirty_frames() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(disk.clone(), 4);
        let id = p.allocate_page().unwrap();
        p.with_page_mut(id, |pg| pg.insert(b"flushed").unwrap())
            .unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.dirty_count(), 0);
        let raw = disk.read(id).unwrap();
        let page = Page::from_bytes(&raw).unwrap();
        assert_eq!(page.get(0).unwrap(), b"flushed");
    }

    #[test]
    fn disk_counts_io() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(disk.clone(), 1);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        // Ping-pong between two pages with a single frame: every access
        // after the first is a miss -> disk read.
        for _ in 0..5 {
            p.with_page(a, |_| ()).unwrap();
            p.with_page(b, |_| ()).unwrap();
        }
        assert!(disk.read_count() >= 9);
    }

    #[test]
    fn missing_page_is_error() {
        let p = pool(2);
        assert!(matches!(
            p.with_page(99, |_| ()),
            Err(StorageError::PageNotFound(99))
        ));
    }

    #[test]
    fn shards_split_capacity_exactly() {
        let p = pool_with(10, 4, PolicyKind::Clock);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.capacity(), 10);
        let per_shard: usize = p.shard_stats().iter().map(|s| s.capacity).sum();
        assert_eq!(per_shard, 10);
        // Auto sharding caps at the capacity (tiny pools stay valid).
        assert_eq!(pool(2).shard_count(), 2);
        assert_eq!(pool(100).shard_count(), 8);
    }

    #[test]
    fn sequential_admissions_do_not_flush_hot_pages() {
        // One shard, clock: a hot page re-referenced between scan sweeps
        // must survive a scan 4x the pool size; the scan's own pages
        // (admitted cold) are recycled instead.
        let p = pool_with(4, 1, PolicyKind::Clock);
        let hot = p.allocate_page().unwrap();
        let scanned: Vec<_> = (0..16).map(|_| p.allocate_page().unwrap()).collect();
        // Drain allocation warmth so the scan loop starts from a steady
        // state, then make the hot page resident.
        for id in &scanned {
            p.with_page_hint(*id, AccessHint::Sequential, |_| ())
                .unwrap();
        }
        p.with_page(hot, |_| ()).unwrap();
        let before = p.stats();
        for _ in 0..10 {
            p.with_page(hot, |_| ()).unwrap(); // point access, promotes
            for id in &scanned {
                p.with_page_hint(*id, AccessHint::Sequential, |_| ())
                    .unwrap();
            }
        }
        let after = p.stats();
        // The hot page was touched 10 times after warmup; all were hits.
        assert_eq!(
            after.point_hits - before.point_hits,
            10,
            "hot page must never be evicted by the sequential sweep"
        );
    }

    #[test]
    fn unhinted_pool_lets_scans_evict_hot_pages() {
        // Scan resistance off: the same workload as above turns at least
        // one hot-page access into a miss (the scan flushes it).
        let p = BufferPool::with_config(
            Arc::new(DiskManager::new()),
            BufferConfig {
                shards: 1,
                capacity: 4,
                policy: PolicyKind::Clock,
                scan_resistant: false,
            },
        );
        let hot = p.allocate_page().unwrap();
        let scanned: Vec<_> = (0..16).map(|_| p.allocate_page().unwrap()).collect();
        for id in &scanned {
            p.with_page_hint(*id, AccessHint::Sequential, |_| ())
                .unwrap();
        }
        p.with_page(hot, |_| ()).unwrap();
        let before = p.stats();
        for _ in 0..10 {
            p.with_page(hot, |_| ()).unwrap();
            for id in &scanned {
                p.with_page_hint(*id, AccessHint::Sequential, |_| ())
                    .unwrap();
            }
        }
        let after = p.stats();
        assert!(
            after.point_misses > before.point_misses,
            "without scan resistance the sweep must flush the hot page"
        );
    }

    #[test]
    fn policy_equivalence_identical_contents_under_trace() {
        // All three policies must serve identical page contents for an
        // identical access trace — replacement changes performance, never
        // correctness.
        let trace: Vec<(u64, bool)> = (0..400)
            .map(|i| {
                let id = (i * 7 + i * i * 3) % 24;
                (id as u64, i % 3 == 0)
            })
            .collect();
        let mut outputs: Vec<Vec<Vec<u8>>> = Vec::new();
        for policy in PolicyKind::ALL {
            let p = pool_with(6, 2, policy);
            let ids: Vec<_> = (0..24).map(|_| p.allocate_page().unwrap()).collect();
            for (i, id) in ids.iter().enumerate() {
                p.with_page_mut(*id, |pg| pg.insert(format!("init-{i}").as_bytes()).unwrap())
                    .unwrap();
            }
            let mut seen = Vec::new();
            for &(id, write) in &trace {
                let pid = ids[id as usize];
                if write {
                    p.with_page_mut_hint(pid, AccessHint::Point, |pg| {
                        pg.update(0, format!("w-{id}").as_bytes()).unwrap()
                    })
                    .unwrap();
                }
                let got = p
                    .with_page_hint(pid, AccessHint::Sequential, |pg| {
                        pg.get(0).unwrap().to_vec()
                    })
                    .unwrap();
                seen.push(got);
            }
            outputs.push(seen);
        }
        assert_eq!(outputs[0], outputs[1], "clock vs sieve");
        assert_eq!(outputs[0], outputs[2], "clock vs lru");
    }

    #[test]
    fn runtime_policy_switch_preserves_contents() {
        let p = pool_with(4, 2, PolicyKind::Clock);
        let ids: Vec<_> = (0..12).map(|_| p.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg.insert(format!("v{i}").as_bytes()).unwrap())
                .unwrap();
        }
        for kind in [PolicyKind::Sieve, PolicyKind::Lru, PolicyKind::Clock] {
            p.set_policy(kind);
            assert_eq!(p.policy(), kind);
            for (i, id) in ids.iter().enumerate() {
                let got = p.with_page(*id, |pg| pg.get(0).unwrap().to_vec()).unwrap();
                assert_eq!(got, format!("v{i}").as_bytes(), "after switch to {kind:?}");
            }
        }
        // Counters were attributed to every policy that served traffic.
        let by_policy = p.policy_stats();
        assert!(by_policy.iter().all(|(_, s)| s.hits + s.misses > 0));
    }

    #[test]
    fn flush_reverifies_dirty_bits() {
        // A mutation that lands between the flusher's copy-out and its
        // re-latch must leave the frame dirty (version mismatch).
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(disk.clone(), 4);
        let id = p.allocate_page().unwrap();
        p.with_page_mut(id, |pg| pg.insert(b"one").unwrap())
            .unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.dirty_count(), 0);
        p.with_page_mut(id, |pg| pg.update(0, b"two").unwrap())
            .unwrap();
        assert_eq!(p.dirty_count(), 1);
        p.flush_all().unwrap();
        assert_eq!(p.dirty_count(), 0);
        let page = Page::from_bytes(&disk.read(id).unwrap()).unwrap();
        assert_eq!(page.get(0).unwrap(), b"two");
    }

    #[test]
    fn policy_names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("SIEVE"), Some(PolicyKind::Sieve));
        assert_eq!(PolicyKind::parse("2q"), None);
    }

    #[test]
    fn io_latency_histograms_record_when_attached() {
        let registry = neurdb_obs::MetricsRegistry::new();
        let p = pool(2);
        p.attach_metrics(
            registry.histogram("buffer.read_ns"),
            registry.histogram("buffer.write_ns"),
        );
        let ids: Vec<_> = (0..8).map(|_| p.allocate_page().unwrap()).collect();
        for id in &ids {
            p.with_page_mut(*id, |pg| pg.insert(b"x").unwrap()).unwrap();
        }
        for id in &ids {
            p.with_page(*id, |_| ()).unwrap();
        }
        p.flush_all().unwrap();
        let snap = registry.snapshot();
        assert!(snap.histograms["buffer.read_ns"].count > 0);
        assert!(snap.histograms["buffer.write_ns"].count > 0);
    }
}

//! Buffer pool with clock (second-chance) eviction over a pluggable disk.
//!
//! [`DiskBackend`] is the trait surface page storage hides behind: the
//! in-memory [`DiskManager`] (the seed's simulated disk, still the default
//! for volatile databases and benchmarks) and `neurdb-wal`'s file-backed
//! disk both implement it. Every read and write is charged through atomic
//! counters, so benchmarks can report "I/O" volume and the buffer-usage
//! statistics the learned query optimizer consumes as part of its *system
//! condition* input (Section 4.2 of the paper).

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Page-granular storage behind the buffer pool.
///
/// Implementations must be safe for concurrent use; the buffer pool calls
/// them while holding its own latch, with whole-page reads and writes.
pub trait DiskBackend: Send + Sync {
    /// Allocate a fresh zeroed page; returns its id. Fails when the
    /// backing store cannot grow (e.g. disk full).
    fn allocate(&self) -> StorageResult<PageId>;

    /// Read a whole page image.
    fn read(&self, id: PageId) -> StorageResult<Box<[u8]>>;

    /// Overwrite a whole page image.
    fn write(&self, id: PageId, data: &[u8]) -> StorageResult<()>;

    /// Force written pages to stable storage (no-op for volatile disks).
    fn sync(&self) -> StorageResult<()>;

    /// Number of allocated pages.
    fn num_pages(&self) -> usize;

    /// Total page reads served.
    fn read_count(&self) -> u64;

    /// Total page writes accepted.
    fn write_count(&self) -> u64;
}

/// Simulated disk: a growable array of page images plus I/O counters.
pub struct DiskManager {
    pages: RwLock<Vec<Option<Box<[u8]>>>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl Default for DiskManager {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager {
    pub fn new() -> Self {
        DiskManager {
            pages: RwLock::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }
}

impl DiskBackend for DiskManager {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.write();
        pages.push(Some(vec![0u8; PAGE_SIZE].into_boxed_slice()));
        Ok((pages.len() - 1) as PageId)
    }

    fn read(&self, id: PageId) -> StorageResult<Box<[u8]>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.read();
        pages
            .get(id as usize)
            .and_then(|p| p.clone())
            .ok_or(StorageError::PageNotFound(id))
    }

    fn write(&self, id: PageId, data: &[u8]) -> StorageResult<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.write();
        match pages.get_mut(id as usize) {
            Some(slot) => {
                *slot = Some(data.to_vec().into_boxed_slice());
                Ok(())
            }
            None => Err(StorageError::PageNotFound(id)),
        }
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

struct Frame {
    page_id: PageId,
    page: Page,
    dirty: bool,
    pin_count: u32,
    referenced: bool,
}

/// Buffer-pool usage statistics; feeds the QO's system-condition vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub capacity: usize,
    pub resident: usize,
}

impl BufferStats {
    /// Hit ratio in `[0,1]`; 1.0 when the pool has never been probed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of the pool holding pages.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.resident as f64 / self.capacity as f64
        }
    }
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A clock-eviction buffer pool over a [`DiskManager`].
///
/// The whole pool is guarded by a single mutex: callers copy tuple bytes out
/// while holding the guard via the `with_page*` closures. This trades peak
/// multicore scan throughput for simplicity; contention on the pool is not
/// what the paper's experiments measure.
pub struct BufferPool {
    disk: Arc<dyn DiskBackend>,
    inner: Mutex<PoolInner>,
    capacity: usize,
}

impl BufferPool {
    pub fn new(disk: Arc<dyn DiskBackend>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::with_capacity(capacity),
                clock_hand: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    pub fn disk(&self) -> &Arc<dyn DiskBackend> {
        &self.disk
    }

    /// Allocate a brand-new page on disk and cache it.
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let id = self.disk.allocate()?;
        let mut inner = self.inner.lock();
        let frame_idx = Self::find_victim(&mut inner, &self.disk)?;
        inner.map.insert(id, frame_idx);
        inner.frames[frame_idx] = Some(Frame {
            page_id: id,
            page: Page::new(),
            dirty: true,
            pin_count: 0,
            referenced: true,
        });
        Ok(id)
    }

    /// Run `f` with shared access to the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let idx = Self::load(&mut inner, &self.disk, id, self.capacity)?;
        let frame = inner.frames[idx].as_ref().expect("frame just loaded");
        Ok(f(&frame.page))
    }

    /// Run `f` with mutable access to the page; marks it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let idx = Self::load(&mut inner, &self.disk, id, self.capacity)?;
        let frame = inner.frames[idx].as_mut().expect("frame just loaded");
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write all dirty pages back to disk.
    pub fn flush_all(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let dirty: Vec<usize> = inner
            .frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().filter(|f| f.dirty).map(|_| i))
            .collect();
        for i in dirty {
            let (id, bytes) = {
                let f = inner.frames[i].as_ref().unwrap();
                (f.page_id, f.page.as_bytes().to_vec())
            };
            self.disk.write(id, &bytes)?;
            inner.frames[i].as_mut().unwrap().dirty = false;
        }
        Ok(())
    }

    /// Number of resident pages currently dirty (the checkpointer's
    /// flush frontier).
    pub fn dirty_count(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .frames
            .iter()
            .filter(|f| f.as_ref().is_some_and(|f| f.dirty))
            .count()
    }

    /// Write all dirty pages back and force them to stable storage — the
    /// page-flush half of a checkpoint.
    pub fn flush_all_and_sync(&self) -> StorageResult<()> {
        self.flush_all()?;
        self.disk.sync()
    }

    pub fn stats(&self) -> BufferStats {
        let inner = self.inner.lock();
        BufferStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            capacity: self.capacity,
            resident: inner.map.len(),
        }
    }

    fn load(
        inner: &mut PoolInner,
        disk: &Arc<dyn DiskBackend>,
        id: PageId,
        _capacity: usize,
    ) -> StorageResult<usize> {
        if let Some(&idx) = inner.map.get(&id) {
            inner.hits += 1;
            if let Some(frame) = inner.frames[idx].as_mut() {
                frame.referenced = true;
            }
            return Ok(idx);
        }
        inner.misses += 1;
        let bytes = disk.read(id)?;
        let idx = Self::find_victim(inner, disk)?;
        inner.map.insert(id, idx);
        inner.frames[idx] = Some(Frame {
            page_id: id,
            page: Page::from_bytes(&bytes)?,
            dirty: false,
            pin_count: 0,
            referenced: true,
        });
        Ok(idx)
    }

    /// Clock sweep: find a free frame or evict an unpinned, unreferenced one.
    fn find_victim(inner: &mut PoolInner, disk: &Arc<dyn DiskBackend>) -> StorageResult<usize> {
        if let Some(idx) = inner.frames.iter().position(|f| f.is_none()) {
            return Ok(idx);
        }
        let n = inner.frames.len();
        for _ in 0..2 * n {
            let idx = inner.clock_hand;
            inner.clock_hand = (inner.clock_hand + 1) % n;
            let frame = inner.frames[idx].as_mut().expect("no free frames");
            if frame.pin_count > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            // Victim found: write back if dirty, then drop.
            let (id, dirty, bytes) = (frame.page_id, frame.dirty, frame.page.as_bytes().to_vec());
            if dirty {
                disk.write(id, &bytes)?;
            }
            inner.map.remove(&id);
            inner.frames[idx] = None;
            inner.evictions += 1;
            return Ok(idx);
        }
        Err(StorageError::BufferPoolFull)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(DiskManager::new()), cap)
    }

    #[test]
    fn allocate_and_readback() {
        let p = pool(4);
        let id = p.allocate_page().unwrap();
        p.with_page_mut(id, |pg| pg.insert(b"data").unwrap())
            .unwrap();
        let bytes = p.with_page(id, |pg| pg.get(0).unwrap().to_vec()).unwrap();
        assert_eq!(bytes, b"data");
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let p = pool(2);
        let ids: Vec<_> = (0..6).map(|_| p.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg.insert(format!("v{i}").as_bytes()).unwrap())
                .unwrap();
        }
        // Every page is still readable after evictions.
        for (i, id) in ids.iter().enumerate() {
            let got = p.with_page(*id, |pg| pg.get(0).unwrap().to_vec()).unwrap();
            assert_eq!(got, format!("v{i}").as_bytes());
        }
        assert!(p.stats().evictions >= 4);
    }

    #[test]
    fn hit_ratio_reflects_access_pattern() {
        let p = pool(8);
        let id = p.allocate_page().unwrap();
        for _ in 0..100 {
            p.with_page(id, |_| ()).unwrap();
        }
        assert!(p.stats().hit_ratio() > 0.95);
    }

    #[test]
    fn flush_all_writes_dirty_frames() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(disk.clone(), 4);
        let id = p.allocate_page().unwrap();
        p.with_page_mut(id, |pg| pg.insert(b"flushed").unwrap())
            .unwrap();
        p.flush_all().unwrap();
        let raw = disk.read(id).unwrap();
        let page = Page::from_bytes(&raw).unwrap();
        assert_eq!(page.get(0).unwrap(), b"flushed");
    }

    #[test]
    fn disk_counts_io() {
        let disk = Arc::new(DiskManager::new());
        let p = BufferPool::new(disk.clone(), 1);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        // Ping-pong between two pages with a single frame: every access
        // after the first is a miss -> disk read.
        for _ in 0..5 {
            p.with_page(a, |_| ()).unwrap();
            p.with_page(b, |_| ()).unwrap();
        }
        assert!(disk.read_count() >= 9);
    }

    #[test]
    fn missing_page_is_error() {
        let p = pool(2);
        assert!(matches!(
            p.with_page(99, |_| ()),
            Err(StorageError::PageNotFound(99))
        ));
    }
}

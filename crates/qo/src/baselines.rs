//! Baseline query optimizers for the Fig. 8 comparison: the classic
//! cost-based optimizer (PostgreSQL), a Bao-style hint-set selector, and a
//! Lero-style pairwise learning-to-rank optimizer. Both learned baselines
//! are used with **stable (frozen) models**, exactly as the paper runs
//! them ("we use stable models of Bao and Lero for the experiment").

use crate::graph::JoinGraph;
use crate::plan::{candidate_plans, cost_plan, dp_best_plan, PlanTree};
use neurdb_nn::{mlp_spec, LossKind, Matrix, Model, OptimConfig, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common interface: given a query's join graph, produce a plan.
pub trait Optimizer {
    fn choose_plan(&mut self, graph: &JoinGraph) -> PlanTree;
    fn name(&self) -> &str;
    /// Execution feedback: the same join graph with its `true_rows` /
    /// `true_sel` fields overwritten by cardinalities *observed* during a
    /// metered execution (`EXPLAIN ANALYZE`). Adaptive optimizers treat
    /// this as an online training signal; the default is a no-op (frozen
    /// baselines ignore feedback, exactly as the paper runs them).
    fn observe(&mut self, _observed: &JoinGraph) {}
}

/// Execution latency surrogate of a chosen plan: cost under true stats.
pub fn latency_of(plan: &PlanTree, graph: &JoinGraph) -> f64 {
    cost_plan(plan, graph, true).cost
}

/// The classic cost-based optimizer (PostgreSQL): exhaustive DP over
/// *estimated* statistics. Under drift its estimates are stale — that is
/// its failure mode in the experiment.
pub struct CostBasedOptimizer;

impl Optimizer for CostBasedOptimizer {
    fn choose_plan(&mut self, graph: &JoinGraph) -> PlanTree {
        dp_best_plan(graph)
    }
    fn name(&self) -> &str {
        "postgresql"
    }
}

// ---------- shared plan summary features for Bao/Lero value models ------

/// Fixed-length summary of a plan under estimated stats.
pub fn plan_summary(plan: &PlanTree, graph: &JoinGraph) -> Vec<f32> {
    fn walk(p: &PlanTree, g: &JoinGraph, max_card: &mut f64, depth: usize, max_depth: &mut usize) {
        if let PlanTree::Join(l, r) = p {
            let c = cost_plan(p, g, false);
            *max_card = max_card.max(c.cardinality);
            *max_depth = (*max_depth).max(depth);
            walk(l, g, max_card, depth + 1, max_depth);
            walk(r, g, max_card, depth + 1, max_depth);
        }
    }
    let total = cost_plan(plan, graph, false);
    let mut max_card = 0.0;
    let mut max_depth = 0;
    walk(plan, graph, &mut max_card, 0, &mut max_depth);
    let joins = plan.num_joins().max(1);
    vec![
        (total.cost.max(1.0).log10() / 10.0) as f32,
        (total.cardinality.max(1.0).log10() / 8.0) as f32,
        (max_card.max(1.0).log10() / 8.0) as f32,
        joins as f32 / 8.0,
        (max_depth + 1) as f32 / joins as f32, // 1.0 => fully left-deep
    ]
}

// ------------------------------ Bao ------------------------------------

/// Hint-set arms: each arm constrains the planner differently and yields
/// one plan (Bao's per-query hint selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaoArm {
    /// Unconstrained DP on estimates.
    Default,
    /// Greedy smallest-intermediate-first left-deep.
    GreedySmallFirst,
    /// Left-deep by ascending estimated scan size.
    SizeAscending,
    /// Left-deep by descending estimated scan size.
    SizeDescending,
}

pub const BAO_ARMS: [BaoArm; 4] = [
    BaoArm::Default,
    BaoArm::GreedySmallFirst,
    BaoArm::SizeAscending,
    BaoArm::SizeDescending,
];

/// Materialize the plan an arm produces.
pub fn arm_plan(arm: BaoArm, graph: &JoinGraph) -> PlanTree {
    let n = graph.num_tables();
    match arm {
        BaoArm::Default => dp_best_plan(graph),
        BaoArm::GreedySmallFirst => {
            // Greedy from the smallest table.
            let start = (0..n)
                .min_by(|&a, &b| {
                    graph.tables[a]
                        .est_rows
                        .total_cmp(&graph.tables[b].est_rows)
                })
                .unwrap();
            let mut order = vec![start];
            let mut mask = 1u32 << start;
            while order.len() < n {
                let next = (0..n)
                    .filter(|t| mask & (1 << t) == 0)
                    .min_by(|&a, &b| {
                        let ca = if graph.connected(mask, 1 << a) {
                            graph.cross_selectivity(mask, 1 << a, false) * graph.tables[a].est_rows
                        } else {
                            f64::MAX / 2.0
                        };
                        let cb = if graph.connected(mask, 1 << b) {
                            graph.cross_selectivity(mask, 1 << b, false) * graph.tables[b].est_rows
                        } else {
                            f64::MAX / 2.0
                        };
                        ca.total_cmp(&cb)
                    })
                    .unwrap();
                order.push(next);
                mask |= 1 << next;
            }
            PlanTree::left_deep(&order)
        }
        BaoArm::SizeAscending | BaoArm::SizeDescending => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                graph.tables[a]
                    .est_rows
                    .total_cmp(&graph.tables[b].est_rows)
            });
            if arm == BaoArm::SizeDescending {
                order.reverse();
            }
            PlanTree::left_deep(&order)
        }
    }
}

/// Bao-style optimizer: a value model (MLP over plan summaries) predicts
/// each arm's latency; the best arm's plan runs. The model is trained
/// once on the original distribution and then **frozen**.
pub struct BaoOptimizer {
    value_model: Trainer,
}

impl BaoOptimizer {
    /// Train the value model on `training_graphs` (the pre-drift
    /// distribution) and freeze it.
    pub fn train(training_graphs: &[JoinGraph], epochs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Model::from_spec(mlp_spec(&[5, 32, 1]), &mut rng);
        let mut value_model = Trainer::new(
            model,
            LossKind::Mse,
            OptimConfig {
                lr: 3e-3,
                ..Default::default()
            },
        );
        for _ in 0..epochs {
            for g in training_graphs {
                let mut feats = Vec::new();
                let mut targets = Vec::new();
                for arm in BAO_ARMS {
                    let plan = arm_plan(arm, g);
                    feats.push(plan_summary(&plan, g));
                    targets.push((latency_of(&plan, g).max(1.0).log10() / 10.0) as f32);
                }
                let x = Matrix::from_rows(&feats);
                let y = Matrix::from_vec(targets.len(), 1, targets);
                value_model.train_batch(&x, &y);
            }
        }
        BaoOptimizer { value_model }
    }
}

impl Optimizer for BaoOptimizer {
    fn choose_plan(&mut self, graph: &JoinGraph) -> PlanTree {
        let plans: Vec<PlanTree> = BAO_ARMS.iter().map(|a| arm_plan(*a, graph)).collect();
        let feats: Vec<Vec<f32>> = plans.iter().map(|p| plan_summary(p, graph)).collect();
        let scores = self.value_model.predict(&Matrix::from_rows(&feats));
        let best = (0..plans.len())
            .min_by(|&a, &b| scores.get(a, 0).total_cmp(&scores.get(b, 0)))
            .unwrap();
        plans[best].clone()
    }
    fn name(&self) -> &str {
        "bao"
    }
}

// ------------------------------ Lero -----------------------------------

/// Lero-style optimizer: candidate plans are generated by scaling the
/// optimizer's cardinality estimates (its plan-space exploration), then a
/// pairwise comparator picks the winner by tournament. Comparator is
/// trained pre-drift and **frozen**.
pub struct LeroOptimizer {
    comparator: Trainer,
    rng: StdRng,
}

impl LeroOptimizer {
    /// Candidates via selectivity scaling: re-plan with individual join
    /// selectivities scaled up/down (Lero explores the plan space by
    /// perturbing per-node cardinality estimates, not by a global knob).
    pub fn scaled_candidates(graph: &JoinGraph) -> Vec<PlanTree> {
        let mut out = vec![dp_best_plan(graph)];
        for edge in 0..graph.joins.len() {
            for factor in [0.05, 20.0] {
                let mut g = graph.clone();
                g.joins[edge].est_sel = (g.joins[edge].est_sel * factor).min(1.0);
                let p = dp_best_plan(&g);
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        // Global scalings round out the set.
        for factor in [0.1, 10.0] {
            let mut g = graph.clone();
            for e in &mut g.joins {
                e.est_sel = (e.est_sel * factor).min(1.0);
            }
            let p = dp_best_plan(&g);
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Train the pairwise comparator on the original distribution.
    pub fn train(training_graphs: &[JoinGraph], epochs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Model::from_spec(mlp_spec(&[10, 32, 1]), &mut rng);
        let mut comparator = Trainer::new(
            model,
            LossKind::Bce,
            OptimConfig {
                lr: 3e-3,
                ..Default::default()
            },
        );
        for _ in 0..epochs {
            for g in training_graphs {
                let cands = Self::scaled_candidates(g);
                if cands.len() < 2 {
                    continue;
                }
                let mut feats = Vec::new();
                let mut labels = Vec::new();
                for i in 0..cands.len() {
                    for j in 0..cands.len() {
                        if i == j {
                            continue;
                        }
                        let mut f = plan_summary(&cands[i], g);
                        f.extend(plan_summary(&cands[j], g));
                        feats.push(f);
                        // Label 1 iff plan i is truly faster than plan j.
                        labels.push(
                            (latency_of(&cands[i], g) < latency_of(&cands[j], g)) as i32 as f32,
                        );
                    }
                }
                let x = Matrix::from_rows(&feats);
                let y = Matrix::from_vec(labels.len(), 1, labels);
                comparator.train_batch(&x, &y);
            }
        }
        LeroOptimizer {
            comparator,
            rng: StdRng::seed_from_u64(seed ^ 0xDEAD),
        }
    }

    fn better(&mut self, a: &PlanTree, b: &PlanTree, graph: &JoinGraph) -> bool {
        let mut f = plan_summary(a, graph);
        f.extend(plan_summary(b, graph));
        let x = Matrix::from_rows(&[f]);
        self.comparator.predict(&x).get(0, 0) > 0.0
    }
}

impl Optimizer for LeroOptimizer {
    fn choose_plan(&mut self, graph: &JoinGraph) -> PlanTree {
        let cands = Self::scaled_candidates(graph);
        let _ = &mut self.rng;
        let mut best = cands[0].clone();
        for c in cands.into_iter().skip(1) {
            if self.better(&c, &best, graph) {
                best = c;
            }
        }
        best
    }
    fn name(&self) -> &str {
        "lero"
    }
}

/// A pure-random candidate picker (sanity-check lower bound in tests).
pub struct RandomOptimizer {
    rng: StdRng,
}

impl RandomOptimizer {
    pub fn new(seed: u64) -> Self {
        RandomOptimizer {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Optimizer for RandomOptimizer {
    fn choose_plan(&mut self, graph: &JoinGraph) -> PlanTree {
        let cands = candidate_plans(graph, 8, &mut self.rng);
        let i = self.rng.gen_range(0..cands.len());
        cands[i].clone()
    }
    fn name(&self) -> &str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::random_graph;

    fn graphs(n: usize, seed: u64) -> Vec<JoinGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| random_graph(5, &mut rng)).collect()
    }

    #[test]
    fn cost_based_beats_random_on_fresh_stats() {
        let gs = graphs(15, 1);
        let mut pg = CostBasedOptimizer;
        let mut rnd = RandomOptimizer::new(2);
        let (mut pg_total, mut rnd_total) = (0.0, 0.0);
        for g in &gs {
            pg_total += latency_of(&pg.choose_plan(g), g);
            rnd_total += latency_of(&rnd.choose_plan(g), g);
        }
        assert!(pg_total <= rnd_total, "{pg_total} !<= {rnd_total}");
    }

    #[test]
    fn bao_arms_produce_valid_distinct_strategies() {
        let gs = graphs(3, 3);
        for g in &gs {
            let full = (1u32 << g.num_tables()) - 1;
            for arm in BAO_ARMS {
                assert_eq!(arm_plan(arm, g).mask(), full);
            }
        }
    }

    #[test]
    fn bao_choice_is_reasonable() {
        let gs = graphs(12, 4);
        let mut bao = BaoOptimizer::train(&gs, 30, 5);
        // On the training distribution, Bao should not be worse than the
        // worst arm on average.
        let eval = graphs(8, 6);
        let mut bao_total = 0.0;
        let mut worst_total = 0.0;
        for g in &eval {
            bao_total += latency_of(&bao.choose_plan(g), g);
            worst_total += BAO_ARMS
                .iter()
                .map(|a| latency_of(&arm_plan(*a, g), g))
                .fold(0.0, f64::max);
        }
        assert!(bao_total <= worst_total);
    }

    #[test]
    fn lero_scaling_generates_multiple_candidates() {
        let gs = graphs(5, 7);
        let mut any_multi = false;
        for g in &gs {
            let c = LeroOptimizer::scaled_candidates(g);
            assert!(!c.is_empty());
            any_multi |= c.len() > 1;
        }
        assert!(any_multi, "selectivity scaling should diversify plans");
    }

    #[test]
    fn lero_trains_and_chooses() {
        let gs = graphs(10, 8);
        let mut lero = LeroOptimizer::train(&gs, 20, 9);
        let eval = graphs(5, 10);
        for g in &eval {
            let p = lero.choose_plan(g);
            assert_eq!(p.mask(), (1u32 << g.num_tables()) - 1);
        }
    }

    #[test]
    fn plan_summary_shape_and_leftdeepness() {
        let gs = graphs(1, 11);
        let g = &gs[0];
        let ld = PlanTree::left_deep(&[0, 1, 2, 3, 4]);
        let s = plan_summary(&ld, g);
        assert_eq!(s.len(), 5);
        assert!((s[4] - 1.0).abs() < 1e-6, "left-deep marker, got {}", s[4]);
    }
}

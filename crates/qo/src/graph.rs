//! Join graphs: the optimizer's view of an SPJ query.
//!
//! A [`JoinGraph`] carries, per base table, the *estimated* cardinality
//! (from possibly-stale catalog statistics — what a PostgreSQL-style
//! optimizer sees) and the *true* cardinality (what execution actually
//! encounters). Data drift is modeled as divergence between the two: the
//! STATS experiments (paper Fig. 8) apply inserts/updates/deletes that
//! change true cardinalities and selectivities while stale estimates lag.

use rand::Rng;

/// One base table in the query.
#[derive(Debug, Clone)]
pub struct TableInfo {
    pub name: String,
    /// Estimated output rows of the scan (after local predicates),
    /// according to catalog statistics.
    pub est_rows: f64,
    /// True output rows of the scan.
    pub true_rows: f64,
    /// Selectivity of local predicates (est), for plan features.
    pub est_selectivity: f64,
}

/// An equi-join edge between two tables.
#[derive(Debug, Clone, Copy)]
pub struct JoinEdge {
    pub a: usize,
    pub b: usize,
    /// Estimated join selectivity: |A ⋈ B| = sel * |A| * |B|.
    pub est_sel: f64,
    /// True join selectivity.
    pub true_sel: f64,
}

/// Point-in-time *system conditions* the learned optimizer is
/// conditioned on, alongside the per-table statistics: the paper's core
/// loop adapts plan choice to the machine's current state, not just the
/// data. Sourced from the buffer pool right before planning (a hot
/// buffer favors probe-heavy orders; a cold one favors orders that
/// stream). Defaults model an idle system (everything cached, nothing
/// resident).
#[derive(Debug, Clone, Copy)]
pub struct SystemConditions {
    /// Buffer-pool hit ratio in `[0, 1]` (1.0 when never probed).
    pub buffer_hit_ratio: f64,
    /// Fraction of buffer-pool frames currently resident.
    pub buffer_occupancy: f64,
}

impl Default for SystemConditions {
    fn default() -> Self {
        SystemConditions {
            buffer_hit_ratio: 1.0,
            buffer_occupancy: 0.0,
        }
    }
}

/// The join graph of one SPJ query.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    pub tables: Vec<TableInfo>,
    pub joins: Vec<JoinEdge>,
    /// System state at planning time, folded into every real table's
    /// condition token (see [`JoinGraph::condition_tokens`]).
    pub system: SystemConditions,
}

impl JoinGraph {
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Selectivity between two table *sets* (product of crossing edges).
    /// `which = true` uses true selectivities, else estimates.
    pub fn cross_selectivity(&self, left: u32, right: u32, truth: bool) -> f64 {
        let mut sel = 1.0;
        let mut connected = false;
        for e in &self.joins {
            let (ba, bb) = (1u32 << e.a, 1u32 << e.b);
            if (left & ba != 0 && right & bb != 0) || (left & bb != 0 && right & ba != 0) {
                sel *= if truth { e.true_sel } else { e.est_sel };
                connected = true;
            }
        }
        if connected {
            sel
        } else {
            // Cross product: heavily penalized by any sane cost model.
            1.0
        }
    }

    /// Whether two table sets are connected by at least one join edge.
    pub fn connected(&self, left: u32, right: u32) -> bool {
        self.joins.iter().any(|e| {
            let (ba, bb) = (1u32 << e.a, 1u32 << e.b);
            (left & ba != 0 && right & bb != 0) || (left & bb != 0 && right & ba != 0)
        })
    }

    /// Apply *drift*: true cardinalities and selectivities move while
    /// estimates stay stale. `severity` scales the drift: each table's true
    /// rows move by up to ~10x and join selectivities by up to ~4x at
    /// severity 1.0 — the magnitude ALECE-style drift drivers report
    /// (q-errors of 10-100 on stale estimators).
    pub fn drift(&self, severity: f64, rng: &mut impl Rng) -> JoinGraph {
        let mut g = self.clone();
        for t in &mut g.tables {
            let f = 1.0 + 9.0 * severity * rng.gen_range(0.0..1.0f64);
            if rng.gen_bool(0.5) {
                t.true_rows = (t.true_rows * f).max(1.0);
            } else {
                t.true_rows = (t.true_rows / f).max(1.0);
            }
        }
        for e in &mut g.joins {
            let f = 1.0 + 3.0 * severity * rng.gen_range(0.0..1.0f64);
            if rng.gen_bool(0.5) {
                e.true_sel = (e.true_sel * f).min(1.0);
            } else {
                e.true_sel /= f;
            }
        }
        g
    }

    /// Refresh estimates from truth (what ANALYZE would do). The learned
    /// QO's *system conditions* include cheap fresh statistics, modeled by
    /// a partially-refreshed graph.
    pub fn refresh_estimates(&mut self) {
        for t in &mut self.tables {
            t.est_rows = t.true_rows;
        }
        for e in &mut self.joins {
            e.est_sel = e.true_sel;
        }
    }

    /// Summary statistics vector for the *system condition* input of the
    /// learned QO: per table `[log10(true rows), est/true ratio,
    /// est selectivity, buffer hit ratio, buffer occupancy]`, padded to
    /// `max_tables` tables (padding rows stay all-zero). The last two
    /// features repeat the graph's global [`SystemConditions`] on every
    /// real row, so the model sees them regardless of table count.
    pub fn condition_tokens(&self, max_tables: usize) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(max_tables);
        for i in 0..max_tables {
            match self.tables.get(i) {
                Some(t) => out.push(vec![
                    (t.true_rows.max(1.0).log10() / 8.0) as f32,
                    ((t.est_rows / t.true_rows.max(1.0)).ln().clamp(-3.0, 3.0) / 3.0) as f32,
                    t.est_selectivity as f32,
                    self.system.buffer_hit_ratio as f32,
                    self.system.buffer_occupancy as f32,
                ]),
                None => out.push(vec![0.0; 5]),
            }
        }
        out
    }
}

/// Build a random connected join graph (used by pretraining and tests).
pub fn random_graph(n_tables: usize, rng: &mut impl Rng) -> JoinGraph {
    assert!((2..=16).contains(&n_tables));
    let tables = (0..n_tables)
        .map(|i| {
            let rows = 10f64.powf(rng.gen_range(2.0..6.0));
            let sel = rng.gen_range(0.05..1.0);
            TableInfo {
                name: format!("t{i}"),
                est_rows: rows * sel,
                true_rows: rows * sel,
                est_selectivity: sel,
            }
        })
        .collect();
    // Spanning tree + extra edges.
    let mut joins = Vec::new();
    for i in 1..n_tables {
        let j = rng.gen_range(0..i);
        let sel = 10f64.powf(rng.gen_range(-5.0..-1.0));
        joins.push(JoinEdge {
            a: i,
            b: j,
            est_sel: sel,
            true_sel: sel,
        });
    }
    for _ in 0..n_tables / 3 {
        let a = rng.gen_range(0..n_tables);
        let b = rng.gen_range(0..n_tables);
        if a != b
            && !joins
                .iter()
                .any(|e| (e.a, e.b) == (a, b) || (e.a, e.b) == (b, a))
        {
            let sel = 10f64.powf(rng.gen_range(-5.0..-1.0));
            joins.push(JoinEdge {
                a,
                b,
                est_sel: sel,
                true_sel: sel,
            });
        }
    }
    JoinGraph {
        tables,
        joins,
        system: SystemConditions::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_graph_is_connected() {
        let mut r = rng();
        for _ in 0..20 {
            let g = random_graph(6, &mut r);
            // BFS over join edges.
            let mut seen = 1u32;
            let mut frontier = vec![0usize];
            while let Some(x) = frontier.pop() {
                for e in &g.joins {
                    for (u, v) in [(e.a, e.b), (e.b, e.a)] {
                        if u == x && seen & (1 << v) == 0 {
                            seen |= 1 << v;
                            frontier.push(v);
                        }
                    }
                }
            }
            assert_eq!(seen.count_ones() as usize, 6);
        }
    }

    #[test]
    fn drift_moves_truth_not_estimates() {
        let mut r = rng();
        let g = random_graph(5, &mut r);
        let d = g.drift(1.0, &mut r);
        let moved = g
            .tables
            .iter()
            .zip(d.tables.iter())
            .filter(|(a, b)| (a.true_rows - b.true_rows).abs() > 1e-9)
            .count();
        assert!(moved >= 3, "most tables should drift");
        for (a, b) in g.tables.iter().zip(d.tables.iter()) {
            assert_eq!(a.est_rows, b.est_rows, "estimates must stay stale");
        }
    }

    #[test]
    fn refresh_aligns_estimates() {
        let mut r = rng();
        let mut g = random_graph(4, &mut r).drift(0.8, &mut r);
        g.refresh_estimates();
        for t in &g.tables {
            assert_eq!(t.est_rows, t.true_rows);
        }
    }

    #[test]
    fn cross_selectivity_multiplies_edges() {
        let g = JoinGraph {
            tables: (0..3)
                .map(|i| TableInfo {
                    name: format!("t{i}"),
                    est_rows: 100.0,
                    true_rows: 100.0,
                    est_selectivity: 1.0,
                })
                .collect(),
            joins: vec![
                JoinEdge {
                    a: 0,
                    b: 1,
                    est_sel: 0.1,
                    true_sel: 0.2,
                },
                JoinEdge {
                    a: 1,
                    b: 2,
                    est_sel: 0.01,
                    true_sel: 0.01,
                },
            ],
            system: SystemConditions::default(),
        };
        // {0} vs {1,2}: edges 0-1 only.
        assert_eq!(g.cross_selectivity(0b001, 0b110, false), 0.1);
        assert_eq!(g.cross_selectivity(0b001, 0b110, true), 0.2);
        // {0,1} vs {2}: edge 1-2.
        assert_eq!(g.cross_selectivity(0b011, 0b100, false), 0.01);
        assert!(g.connected(0b001, 0b010));
        assert!(!g.connected(0b001, 0b100));
    }

    #[test]
    fn condition_tokens_fixed_shape() {
        let mut r = rng();
        let g = random_graph(4, &mut r);
        let toks = g.condition_tokens(8);
        assert_eq!(toks.len(), 8);
        assert!(toks.iter().all(|t| t.len() == 5));
        // Padding rows are zero.
        assert!(toks[6].iter().all(|v| *v == 0.0));
        // Fresh graph: est/true ratio feature ~ 0.
        assert!(toks[0][1].abs() < 1e-6);
        // Idle system defaults: hit ratio 1, occupancy 0.
        assert_eq!(toks[0][3], 1.0);
        assert_eq!(toks[0][4], 0.0);
    }

    /// The system-condition features must move when buffer state moves —
    /// this is the regression guard for the live feed from the buffer
    /// pool into the optimizer input.
    #[test]
    fn condition_tokens_track_buffer_state() {
        let mut r = rng();
        let mut g = random_graph(4, &mut r);
        let cold = g.condition_tokens(8);
        g.system = SystemConditions {
            buffer_hit_ratio: 0.25,
            buffer_occupancy: 0.9,
        };
        let hot = g.condition_tokens(8);
        assert_ne!(cold, hot);
        for row in hot.iter().take(4) {
            assert_eq!(row[3], 0.25);
            assert_eq!(row[4], 0.9);
        }
        // Padding rows stay zero regardless of system state.
        assert!(hot[6].iter().all(|v| *v == 0.0));
    }
}

//! # neurdb-qo
//!
//! The fast-adaptive **learned query optimizer** of NeurDB-RS (paper
//! Section 4.2, Fig. 5) and its comparison set:
//!
//! * [`NeurQo`] — the dual-module model: tree-transformer plan encoder +
//!   cross-attention over *system conditions* (fresh lightweight data
//!   statistics, estimate-staleness signals), and a multi-head-attention
//!   analyzer that scores candidate plans. Pre-trained over synthetic
//!   distributions generated with a Bayesian-optimization-style curriculum
//!   ([`pretrain`]), which is what lets it keep choosing good plans when
//!   the data drifts away from the catalog statistics.
//! * [`CostBasedOptimizer`] — exhaustive DP on (stale) estimates: PostgreSQL.
//! * [`BaoOptimizer`] / [`LeroOptimizer`] — frozen learned baselines.
//!
//! "Latency" is the plan's cost under **true** statistics — a simulator
//! surrogate that preserves plan ranking (see DESIGN.md §2).

pub mod baselines;
pub mod graph;
pub mod model;
pub mod plan;
pub mod pretrain;

pub use baselines::{
    arm_plan, latency_of, plan_summary, BaoArm, BaoOptimizer, CostBasedOptimizer, LeroOptimizer,
    Optimizer, RandomOptimizer, BAO_ARMS,
};
pub use graph::{random_graph, JoinEdge, JoinGraph, SystemConditions, TableInfo};
pub use model::{normalize_cost, plan_features, DualQoModel, COND_FEAT, NODE_FEAT};
pub use plan::{candidate_plans, cost_plan, dp_best_plan, PlanCost, PlanTree};
pub use pretrain::{pretrain, pretrain_workload, pretrained_model, PretrainConfig, PretrainReport};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The NeurDB learned query optimizer: pre-trained dual-module model over
/// generated candidate plans.
pub struct NeurQo {
    pub model: DualQoModel,
    /// Candidate plans generated per query.
    pub k: usize,
    rng: StdRng,
}

impl NeurQo {
    pub fn new(model: DualQoModel, k: usize, seed: u64) -> Self {
        NeurQo {
            model,
            k,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Build with default pre-training.
    pub fn pretrained(cfg: PretrainConfig, seed: u64) -> (Self, PretrainReport) {
        let (model, report) = pretrained_model(cfg, seed);
        (Self::new(model, 6, seed ^ 0x90), report)
    }

    /// Build with workload-aware pre-training over drift variants of the
    /// deployed workload's query graphs (the paper's deployment mode).
    pub fn pretrained_for(
        base: &[JoinGraph],
        cfg: PretrainConfig,
        seed: u64,
    ) -> (Self, PretrainReport) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51D);
        let mut model = DualQoModel::new(16, 8, 3e-3, &mut rng);
        let report = pretrain_workload(&mut model, base, cfg, seed);
        (Self::new(model, 6, seed ^ 0x90), report)
    }
}

impl Optimizer for NeurQo {
    fn choose_plan(&mut self, graph: &JoinGraph) -> PlanTree {
        // Filter-and-refine (the paper's FRP design principle): the cheap
        // filtering stage discards candidates whose *estimated* cost is
        // far above the best estimate — even under heavy drift a
        // 30x-estimated-worse plan is almost never the true optimum — and
        // the learned model refines the ranking of the survivors using the
        // live system conditions.
        let cands = candidate_plans(graph, self.k, &mut self.rng);
        let costs: Vec<f64> = cands
            .iter()
            .map(|p| cost_plan(p, graph, false).cost)
            .collect();
        let best_est = costs.iter().cloned().fold(f64::MAX, f64::min);
        let survivors: Vec<PlanTree> = cands
            .into_iter()
            .zip(costs)
            .filter(|(_, c)| *c <= best_est * 30.0)
            .map(|(p, _)| p)
            .collect();
        self.model.choose(&survivors, graph).clone()
    }
    fn name(&self) -> &str {
        "neurdb"
    }

    /// Online adaptation from metered execution (paper Section 4.2's
    /// fast-adaptive loop): the observed graph carries *measured*
    /// cardinalities in its `true_*` fields, so one supervised step over a
    /// fresh candidate set fits the model's ranking to what the engine
    /// actually saw — no retraining pipeline, no stale-estimate detour.
    fn observe(&mut self, observed: &JoinGraph) {
        if observed.num_tables() < 2 {
            return;
        }
        let cands = candidate_plans(observed, self.k, &mut self.rng);
        if cands.len() >= 2 {
            self.model.train_step(&cands, observed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neurqo_end_to_end_under_drift() {
        let (mut nq, _) = NeurQo::pretrained(
            PretrainConfig {
                iters: 250,
                tables: 4,
                candidates: 5,
            },
            3,
        );
        let mut pg = CostBasedOptimizer;
        let mut rng = StdRng::seed_from_u64(77);
        let mut nq_total = 0.0;
        let mut pg_total = 0.0;
        for _ in 0..15 {
            let g = random_graph(4, &mut rng).drift(0.9, &mut rng);
            nq_total += latency_of(&nq.choose_plan(&g), &g);
            pg_total += latency_of(&pg.choose_plan(&g), &g);
        }
        // Under severe drift the learned optimizer should at least be
        // competitive with the stale-stats DP (typically better).
        assert!(
            nq_total < pg_total * 1.3,
            "neurdb {nq_total:.0} should be competitive with stale pg {pg_total:.0}"
        );
    }

    #[test]
    fn neurqo_plans_are_valid() {
        let (mut nq, _) = NeurQo::pretrained(
            PretrainConfig {
                iters: 50,
                tables: 5,
                candidates: 5,
            },
            4,
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = random_graph(5, &mut rng);
            let p = nq.choose_plan(&g);
            assert_eq!(p.mask(), (1u32 << 5) - 1);
        }
    }
}

//! Pre-training over synthetic distributions (paper Section 4.2): "we
//! generate various synthetic data distributions and workloads using
//! Bayesian optimization, and pre-train the model to handle most drift
//! effectively."
//!
//! The distribution sampler is a bandit-flavoured Bayesian-optimization
//! stand-in over the drift-severity knob: severities where the model still
//! hurts (high loss) get sampled more, concentrating training where the
//! acquisition function sees the most expected improvement.

use crate::graph::{random_graph, JoinGraph};
use crate::model::DualQoModel;
use crate::plan::candidate_plans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Severity buckets of the curriculum.
const BUCKETS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Pre-training configuration.
#[derive(Debug, Clone, Copy)]
pub struct PretrainConfig {
    /// Training iterations (one sampled graph each).
    pub iters: usize,
    /// Tables per synthetic query.
    pub tables: usize,
    /// Candidate plans per query.
    pub candidates: usize,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            iters: 300,
            tables: 5,
            candidates: 6,
        }
    }
}

/// Outcome of pre-training.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Moving-average loss per bucket at the end.
    pub bucket_losses: Vec<f64>,
    /// Loss trajectory (every 10 iterations).
    pub loss_curve: Vec<f32>,
    /// How often each bucket was sampled.
    pub bucket_counts: Vec<usize>,
}

/// Pre-train `model` over synthetic distributions with the adaptive
/// severity curriculum.
pub fn pretrain(model: &mut DualQoModel, cfg: PretrainConfig, seed: u64) -> PretrainReport {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-bucket exponential-moving-average loss; optimistic init so every
    // bucket gets explored.
    let mut ema = vec![1.0f64; BUCKETS.len()];
    let mut counts = vec![0usize; BUCKETS.len()];
    let mut curve = Vec::new();
    for it in 0..cfg.iters {
        // Acquisition: sample a bucket proportional to its EMA loss
        // (expected improvement ~ current badness).
        let total: f64 = ema.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut bucket = 0;
        for (i, e) in ema.iter().enumerate() {
            if pick < *e {
                bucket = i;
                break;
            }
            pick -= e;
        }
        counts[bucket] += 1;
        let severity = BUCKETS[bucket];
        let base = random_graph(cfg.tables, &mut rng);
        let g: JoinGraph = if severity > 0.0 {
            base.drift(severity, &mut rng)
        } else {
            base
        };
        let cands = candidate_plans(&g, cfg.candidates, &mut rng);
        let loss = model.train_step(&cands, &g) as f64;
        ema[bucket] = 0.9 * ema[bucket] + 0.1 * loss;
        if it % 10 == 0 {
            curve.push(loss as f32);
        }
    }
    PretrainReport {
        bucket_losses: ema,
        loss_curve: curve,
        bucket_counts: counts,
    }
}

/// Convenience: build and pre-train a NeurDB QO model.
pub fn pretrained_model(cfg: PretrainConfig, seed: u64) -> (DualQoModel, PretrainReport) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51D);
    let mut model = DualQoModel::new(16, 8, 3e-3, &mut rng);
    let report = pretrain(&mut model, cfg, seed);
    (model, report)
}

/// Workload-aware pre-training: synthetic drift variants of the deployed
/// workload's own query graphs, mixed with fully random distributions.
/// This is the paper's deployment mode — the system "continually generates
/// valid input for model pre-training, allowing the model ... to gain
/// global knowledge of most drift" (Section 4.2). Drift *seeds* are drawn
/// from the training RNG, so evaluation-time drift realizations are unseen.
pub fn pretrain_workload(
    model: &mut DualQoModel,
    base: &[JoinGraph],
    cfg: PretrainConfig,
    seed: u64,
) -> PretrainReport {
    assert!(!base.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ema = vec![1.0f64; BUCKETS.len()];
    let mut counts = vec![0usize; BUCKETS.len()];
    let mut curve = Vec::new();
    for it in 0..cfg.iters {
        let total: f64 = ema.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut bucket = 0;
        for (i, e) in ema.iter().enumerate() {
            if pick < *e {
                bucket = i;
                break;
            }
            pick -= e;
        }
        counts[bucket] += 1;
        let severity = BUCKETS[bucket];
        // 70% workload graphs, 30% random graphs (generalization anchor).
        let g: JoinGraph = if rng.gen_bool(0.7) {
            let b = &base[rng.gen_range(0..base.len())];
            if severity > 0.0 {
                b.drift(severity, &mut rng)
            } else {
                b.clone()
            }
        } else {
            let b = random_graph(cfg.tables, &mut rng);
            if severity > 0.0 {
                b.drift(severity, &mut rng)
            } else {
                b
            }
        };
        let cands = candidate_plans(&g, cfg.candidates, &mut rng);
        let loss = model.train_step(&cands, &g) as f64;
        ema[bucket] = 0.9 * ema[bucket] + 0.1 * loss;
        if it % 10 == 0 {
            curve.push(loss as f32);
        }
    }
    PretrainReport {
        bucket_losses: ema,
        loss_curve: curve,
        bucket_counts: counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretraining_reduces_loss() {
        let (_, report) = pretrained_model(
            PretrainConfig {
                iters: 200,
                tables: 4,
                candidates: 5,
            },
            1,
        );
        // The curriculum keeps sampling hard (high-severity) graphs, so
        // individual curve points spike; compare median of the first half
        // against median of the second half for a spike-robust trend.
        fn median(mut xs: Vec<f32>) -> f32 {
            xs.sort_by(f32::total_cmp);
            xs[xs.len() / 2]
        }
        let n = report.loss_curve.len();
        let head = median(report.loss_curve[..n / 2].to_vec());
        let tail = median(report.loss_curve[n / 2..].to_vec());
        assert!(tail < head, "loss should fall: {head} -> {tail}");
    }

    #[test]
    fn curriculum_samples_all_buckets() {
        let (_, report) = pretrained_model(
            PretrainConfig {
                iters: 150,
                tables: 4,
                candidates: 4,
            },
            2,
        );
        assert!(
            report.bucket_counts.iter().all(|c| *c > 0),
            "{:?}",
            report.bucket_counts
        );
        assert_eq!(report.bucket_counts.iter().sum::<usize>(), 150);
    }
}

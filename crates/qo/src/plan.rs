//! Plan trees, cost model, and candidate-plan enumeration.
//!
//! Costs follow a textbook hash-join model: `C(scan) = rows`,
//! `C(A ⋈ B) = C(A) + C(B) + |A| + |B| + |A ⋈ B|` with cardinalities from
//! either estimated or true statistics. "Latency" of executing a plan is
//! its cost under **true** statistics — a deliberately simulator-flavoured
//! stand-in for wall-clock execution that preserves plan *ranking*, which
//! is all the Fig. 8 comparison needs.

use crate::graph::JoinGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A binary join tree over base-table indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTree {
    Leaf(usize),
    Join(Box<PlanTree>, Box<PlanTree>),
}

impl PlanTree {
    /// Bitmask of base tables under this subtree.
    pub fn mask(&self) -> u32 {
        match self {
            PlanTree::Leaf(i) => 1 << i,
            PlanTree::Join(l, r) => l.mask() | r.mask(),
        }
    }

    pub fn num_joins(&self) -> usize {
        match self {
            PlanTree::Leaf(_) => 0,
            PlanTree::Join(l, r) => 1 + l.num_joins() + r.num_joins(),
        }
    }

    /// Left-deep plan from a table order.
    pub fn left_deep(order: &[usize]) -> PlanTree {
        assert!(!order.is_empty());
        let mut it = order.iter();
        let mut tree = PlanTree::Leaf(*it.next().unwrap());
        for &t in it {
            tree = PlanTree::Join(Box::new(tree), Box::new(PlanTree::Leaf(t)));
        }
        tree
    }

    /// Compact display like `((t0 ⋈ t1) ⋈ t2)`.
    pub fn display(&self, graph: &JoinGraph) -> String {
        match self {
            PlanTree::Leaf(i) => graph.tables[*i].name.clone(),
            PlanTree::Join(l, r) => {
                format!("({} ⋈ {})", l.display(graph), r.display(graph))
            }
        }
    }
}

/// Result of costing a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Total cost (our latency surrogate).
    pub cost: f64,
    /// Output cardinality of the root.
    pub cardinality: f64,
}

/// Cost a plan under estimated (`truth = false`) or true statistics.
pub fn cost_plan(plan: &PlanTree, graph: &JoinGraph, truth: bool) -> PlanCost {
    const CROSS_PRODUCT_PENALTY: f64 = 1e3;
    match plan {
        PlanTree::Leaf(i) => {
            let t = &graph.tables[*i];
            let rows = if truth { t.true_rows } else { t.est_rows };
            PlanCost {
                cost: rows,
                cardinality: rows,
            }
        }
        PlanTree::Join(l, r) => {
            let cl = cost_plan(l, graph, truth);
            let cr = cost_plan(r, graph, truth);
            let (lm, rm) = (l.mask(), r.mask());
            let sel = graph.cross_selectivity(lm, rm, truth);
            let mut out = sel * cl.cardinality * cr.cardinality;
            if !graph.connected(lm, rm) {
                // A cross product's cardinality is already the full
                // product; the extra penalty models the catastrophic
                // materialized intermediate.
                out *= CROSS_PRODUCT_PENALTY;
            }
            let cost = cl.cost + cr.cost + cl.cardinality + cr.cardinality + out;
            // No lower clamp on cardinality: clamping per node makes the
            // output cardinality depend on tree shape (the clamp fires at
            // different depths for different shapes of the same table
            // set), which breaks the DP's optimal-substructure assumption
            // and lets left-deep plans beat `dp_best_plan`. Fractional
            // expected cardinalities are fine for costing; consumers that
            // need a floor (feature encoders) clamp at use.
            PlanCost {
                cost,
                cardinality: out,
            }
        }
    }
}

/// Exhaustive DP over connected subsets (bushy), minimizing **estimated**
/// cost: the PostgreSQL-style optimizer. Returns the best plan.
pub fn dp_best_plan(graph: &JoinGraph) -> PlanTree {
    let n = graph.num_tables();
    assert!(n <= 16, "DP optimizer limited to 16 tables");
    let full = (1u32 << n) - 1;
    let mut best: Vec<Option<(f64, PlanTree)>> = vec![None; (full + 1) as usize];
    for i in 0..n {
        let m = 1u32 << i;
        let c = cost_plan(&PlanTree::Leaf(i), graph, false);
        best[m as usize] = Some((c.cost, PlanTree::Leaf(i)));
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        // Enumerate proper subset splits.
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            let other = mask & !sub;
            if sub < other {
                // each unordered split visited once
                if let (Some((_, lp)), Some((_, rp))) = (&best[sub as usize], &best[other as usize])
                {
                    // Require connectivity to avoid cross products when
                    // possible (fall back allowed if nothing else exists).
                    if graph.connected(sub, other) || all_splits_disconnected(graph, mask) {
                        let cand = PlanTree::Join(Box::new(lp.clone()), Box::new(rp.clone()));
                        let c = cost_plan(&cand, graph, false).cost;
                        if best[mask as usize].as_ref().is_none_or(|(bc, _)| c < *bc) {
                            best[mask as usize] = Some((c, cand));
                        }
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
    }
    best[full as usize]
        .as_ref()
        .expect("connected graph has a plan")
        .1
        .clone()
}

fn all_splits_disconnected(graph: &JoinGraph, mask: u32) -> bool {
    let mut sub = (mask - 1) & mask;
    while sub != 0 {
        let other = mask & !sub;
        if graph.connected(sub, other) {
            return false;
        }
        sub = (sub - 1) & mask;
    }
    true
}

/// Generate `k` diverse candidate plans for the learned optimizer: the
/// DP-estimated best, greedy left-deep orders from different starting
/// tables, and random (connectivity-respecting) left-deep orders.
pub fn candidate_plans(graph: &JoinGraph, k: usize, rng: &mut impl Rng) -> Vec<PlanTree> {
    let n = graph.num_tables();
    let mut out: Vec<PlanTree> = Vec::with_capacity(k);
    out.push(dp_best_plan(graph));
    // Greedy left-deep: start from each table, repeatedly join the
    // connected table minimizing estimated intermediate cardinality.
    for start in 0..n {
        if out.len() >= k {
            break;
        }
        let mut order = vec![start];
        let mut mask = 1u32 << start;
        while order.len() < n {
            let mut cands: Vec<usize> = (0..n)
                .filter(|t| mask & (1 << t) == 0 && graph.connected(mask, 1 << t))
                .collect();
            if cands.is_empty() {
                cands = (0..n).filter(|t| mask & (1 << t) == 0).collect();
            }
            let next = cands
                .into_iter()
                .min_by(|&a, &b| {
                    let ca =
                        graph.cross_selectivity(mask, 1 << a, false) * graph.tables[a].est_rows;
                    let cb =
                        graph.cross_selectivity(mask, 1 << b, false) * graph.tables[b].est_rows;
                    ca.total_cmp(&cb)
                })
                .unwrap();
            order.push(next);
            mask |= 1 << next;
        }
        let plan = PlanTree::left_deep(&order);
        if !out.contains(&plan) {
            out.push(plan);
        }
    }
    // Random connectivity-respecting orders.
    let mut guard = 0;
    while out.len() < k && guard < k * 20 {
        guard += 1;
        let mut remaining: Vec<usize> = (0..n).collect();
        remaining.shuffle(rng);
        let mut order = vec![remaining.pop().unwrap()];
        let mut mask = 1u32 << order[0];
        while let Some(pos) = remaining
            .iter()
            .position(|t| graph.connected(mask, 1 << *t))
            .or(if remaining.is_empty() { None } else { Some(0) })
        {
            let t = remaining.swap_remove(pos);
            order.push(t);
            mask |= 1 << t;
        }
        let plan = PlanTree::left_deep(&order);
        if !out.contains(&plan) {
            out.push(plan);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{random_graph, JoinEdge, TableInfo};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn chain3() -> JoinGraph {
        // t0 (10 rows) - t1 (1000 rows) - t2 (10000 rows), selective joins.
        JoinGraph {
            tables: vec![
                TableInfo {
                    name: "t0".into(),
                    est_rows: 10.0,
                    true_rows: 10.0,
                    est_selectivity: 1.0,
                },
                TableInfo {
                    name: "t1".into(),
                    est_rows: 1000.0,
                    true_rows: 1000.0,
                    est_selectivity: 1.0,
                },
                TableInfo {
                    name: "t2".into(),
                    est_rows: 10000.0,
                    true_rows: 10000.0,
                    est_selectivity: 1.0,
                },
            ],
            joins: vec![
                JoinEdge {
                    a: 0,
                    b: 1,
                    est_sel: 0.001,
                    true_sel: 0.001,
                },
                JoinEdge {
                    a: 1,
                    b: 2,
                    est_sel: 0.0001,
                    true_sel: 0.0001,
                },
            ],
            system: Default::default(),
        }
    }

    #[test]
    fn cost_prefers_selective_join_first() {
        let g = chain3();
        let good = PlanTree::left_deep(&[0, 1, 2]);
        let bad = PlanTree::left_deep(&[1, 2, 0]); // big join first
        let cg = cost_plan(&good, &g, false);
        let cb = cost_plan(&bad, &g, false);
        assert!(cg.cost < cb.cost, "{} !< {}", cg.cost, cb.cost);
    }

    #[test]
    fn dp_finds_minimum_over_left_deep_orders() {
        let g = chain3();
        let dp = dp_best_plan(&g);
        let dp_cost = cost_plan(&dp, &g, false).cost;
        // DP must beat or tie every left-deep permutation.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let c = cost_plan(&PlanTree::left_deep(&p), &g, false).cost;
            assert!(dp_cost <= c + 1e-6, "dp {dp_cost} > perm {c}");
        }
    }

    #[test]
    fn dp_on_random_graphs_beats_random_orders() {
        let mut r = rng();
        for _ in 0..10 {
            let g = random_graph(5, &mut r);
            let dp_cost = cost_plan(&dp_best_plan(&g), &g, false).cost;
            for _ in 0..5 {
                let cands = candidate_plans(&g, 6, &mut r);
                for c in cands {
                    let cc = cost_plan(&c, &g, false).cost;
                    // Relative tolerance: when DP and a candidate pick the
                    // same plan, summation order drifts the cost by ulps.
                    assert!(
                        dp_cost <= cc * (1.0 + 1e-9) + 1e-6,
                        "dp {dp_cost} > cand {cc}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_are_diverse_and_complete() {
        let mut r = rng();
        let g = random_graph(6, &mut r);
        let cands = candidate_plans(&g, 8, &mut r);
        assert!(cands.len() >= 4, "got {}", cands.len());
        let full = (1u32 << 6) - 1;
        for c in &cands {
            assert_eq!(c.mask(), full, "every candidate joins all tables");
            assert_eq!(c.num_joins(), 5);
        }
        // All distinct.
        for i in 0..cands.len() {
            for j in i + 1..cands.len() {
                assert_ne!(cands[i], cands[j]);
            }
        }
    }

    #[test]
    fn true_vs_estimated_costs_diverge_under_drift() {
        let mut r = rng();
        let g = random_graph(5, &mut r);
        let drifted = g.drift(1.0, &mut r);
        let plan = dp_best_plan(&drifted);
        let est = cost_plan(&plan, &drifted, false).cost;
        let truth = cost_plan(&plan, &drifted, true).cost;
        assert!(
            (est - truth).abs() / est.max(truth) > 0.05,
            "drift should separate est ({est}) from truth ({truth})"
        );
    }

    #[test]
    fn display_renders_tree() {
        let g = chain3();
        let p = PlanTree::left_deep(&[0, 1, 2]);
        assert_eq!(p.display(&g), "((t0 ⋈ t1) ⋈ t2)");
    }
}

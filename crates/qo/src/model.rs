//! The dual-module learned query optimizer model (paper Section 4.2,
//! Fig. 5): an **encoder** — tree-transformer plan embeddings fused with
//! system-condition tokens through cross-attention — and an **analyzer** —
//! multi-head attention over the candidate set followed by an MLP that
//! scores each candidate plan. The plan with the lowest predicted
//! (log-)latency wins.

use crate::graph::JoinGraph;
use crate::plan::{cost_plan, PlanTree};
use neurdb_nn::{
    CrossAttention, Layer, Linear, Matrix, MultiHeadAttention, Relu, TreeEncoder, TreeNode,
};
use rand::Rng;

/// Per-node feature width fed to the tree encoder.
pub const NODE_FEAT: usize = 8;
/// Per-table condition token width: three per-table statistics plus the
/// two global buffer-state features (see
/// [`crate::graph::SystemConditions`]).
pub const COND_FEAT: usize = 5;

/// Normalize a raw cost into the model's target space.
pub fn normalize_cost(cost: f64) -> f32 {
    (cost.max(1.0).log10() / 10.0) as f32
}

/// Build the feature tree of a plan under **estimated** statistics.
pub fn plan_features(plan: &PlanTree, graph: &JoinGraph) -> TreeNode {
    match plan {
        PlanTree::Leaf(i) => {
            let t = &graph.tables[*i];
            // Hash the table id into 4 slots for a cheap identity feature.
            let mut f = vec![0.0f32; NODE_FEAT];
            f[0] = 0.0; // is_join
            f[1] = (t.est_rows.max(1.0).log10() / 8.0) as f32;
            f[2] = t.est_selectivity as f32;
            f[3] = 1.0; // is_leaf marker
            f[4 + (i % 4)] = 1.0;
            TreeNode::leaf(f)
        }
        PlanTree::Join(l, r) => {
            let lc = cost_plan(l, graph, false);
            let rc = cost_plan(r, graph, false);
            let sel = graph.cross_selectivity(l.mask(), r.mask(), false);
            let out = (sel * lc.cardinality * rc.cardinality).max(1.0);
            let mut f = vec![0.0f32; NODE_FEAT];
            f[0] = 1.0; // is_join
            f[1] = (out.log10() / 8.0) as f32;
            f[2] = (sel.max(1e-12).log10() / -12.0) as f32;
            f[3] = 0.0;
            f[4] = ((lc.cost + rc.cost).max(1.0).log10() / 10.0) as f32;
            TreeNode::inner(f, vec![plan_features(l, graph), plan_features(r, graph)])
        }
    }
}

/// The dual-module model.
pub struct DualQoModel {
    pub dim: usize,
    pub max_tables: usize,
    tree_enc: TreeEncoder,
    cond_proj: Linear,
    cross: CrossAttention,
    analyzer: MultiHeadAttention,
    head1: Linear,
    relu: Relu,
    head2: Linear,
    opt: neurdb_nn::Adam,
}

impl DualQoModel {
    pub fn new(dim: usize, max_tables: usize, lr: f32, rng: &mut impl Rng) -> Self {
        assert!(
            dim.is_multiple_of(4),
            "dim must be divisible by the 4 heads"
        );
        DualQoModel {
            dim,
            max_tables,
            tree_enc: TreeEncoder::new(NODE_FEAT, dim, rng),
            cond_proj: Linear::new(COND_FEAT, dim, rng),
            cross: CrossAttention::new(dim, rng),
            analyzer: MultiHeadAttention::new(dim, 4, rng),
            head1: Linear::new(dim, dim, rng),
            relu: Relu::new(),
            head2: Linear::new(dim, 1, rng),
            opt: neurdb_nn::Adam::new(neurdb_nn::OptimConfig {
                lr,
                ..Default::default()
            }),
        }
    }

    /// Forward pass: score each candidate plan (lower = faster predicted).
    /// Returns `(scores, state-for-backward)`.
    fn forward_internal(
        &mut self,
        plans: &[PlanTree],
        graph: &JoinGraph,
    ) -> (Matrix, Vec<neurdb_nn::TreeTrace>) {
        let k = plans.len();
        let mut traces = Vec::with_capacity(k);
        let mut p = Matrix::zeros(k, self.dim);
        for (i, plan) in plans.iter().enumerate() {
            let tree = plan_features(plan, graph);
            let (h, trace) = self.tree_enc.encode(&tree);
            p.row_mut(i).copy_from_slice(&h);
            traces.push(trace);
        }
        let tokens = graph.condition_tokens(self.max_tables);
        let cond_in = Matrix::from_rows(&tokens.iter().map(|t| t.to_vec()).collect::<Vec<_>>());
        let s = self.cond_proj.forward(&cond_in);
        let u = self.cross.forward(&p, &s);
        let a = self.analyzer.forward(&u);
        let h1 = self.head1.forward(&a);
        let h1a = self.relu.forward(&h1);
        let scores = self.head2.forward(&h1a);
        (scores, traces)
    }

    /// Predict scores without training.
    pub fn predict(&mut self, plans: &[PlanTree], graph: &JoinGraph) -> Vec<f32> {
        let (scores, _) = self.forward_internal(plans, graph);
        scores.data.clone()
    }

    /// Choose the best plan among candidates.
    pub fn choose<'p>(&mut self, plans: &'p [PlanTree], graph: &JoinGraph) -> &'p PlanTree {
        let scores = self.predict(plans, graph);
        let idx = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        &plans[idx]
    }

    /// One supervised training step: fit predicted scores to the
    /// **candidate-set-centered** log true costs. Centering removes the
    /// per-query cost offset (irrelevant to plan choice) so the model's
    /// whole capacity goes into *ranking* the candidates; the ×2 scale
    /// makes a 10× cost gap a 2.0 target gap. Returns the MSE loss.
    pub fn train_step(&mut self, plans: &[PlanTree], graph: &JoinGraph) -> f32 {
        let k = plans.len();
        let logs: Vec<f32> = plans
            .iter()
            .map(|p| cost_plan(p, graph, true).cost.max(1.0).log10() as f32)
            .collect();
        let mean = logs.iter().sum::<f32>() / k.max(1) as f32;
        let targets = Matrix::from_vec(k, 1, logs.iter().map(|l| 2.0 * (l - mean)).collect());
        let (scores, traces) = self.forward_internal(plans, graph);
        let (loss, grad) = neurdb_nn::mse(&scores, &targets);
        // Zero grads.
        self.tree_enc.zero_grad();
        self.cond_proj.zero_grad();
        self.cross.zero_grad();
        self.analyzer.zero_grad();
        self.head1.zero_grad();
        self.head2.zero_grad();
        // Backward chain.
        let g_h1a = self.head2.backward(&grad);
        let g_h1 = self.relu.backward(&g_h1a);
        let g_a = self.head1.backward(&g_h1);
        let g_u = self.analyzer.backward(&g_a);
        let (g_p, g_s) = self.cross.backward(&g_u);
        let _g_cond = self.cond_proj.backward(&g_s);
        for (i, trace) in traces.iter().enumerate() {
            self.tree_enc.backward(trace, g_p.row(i));
        }
        // Gather params/grads in a stable order and step.
        let mut grads_owned: Vec<Vec<f32>> = Vec::new();
        {
            let mut collect = |gs: Vec<&mut [f32]>| {
                for g in gs {
                    grads_owned.push(g.to_vec());
                }
            };
            collect(self.tree_enc.grads());
            collect(self.cond_proj.grads());
            collect(self.cross.grads());
            collect(self.analyzer.grads());
            collect(self.head1.grads());
            collect(self.head2.grads());
        }
        let mut params: Vec<&mut [f32]> = Vec::new();
        params.extend(self.tree_enc.params());
        params.extend(self.cond_proj.params());
        params.extend(self.cross.params());
        params.extend(self.analyzer.params());
        params.extend(self.head1.params());
        params.extend(self.head2.params());
        let mut grads_refs: Vec<&mut [f32]> =
            grads_owned.iter_mut().map(|g| g.as_mut_slice()).collect();
        self.opt.step(&mut params, &mut grads_refs);
        loss
    }

    pub fn param_count(&self) -> usize {
        self.tree_enc.param_count()
            + self.cond_proj.param_count()
            + self.cross.param_count()
            + self.analyzer.param_count()
            + self.head1.param_count()
            + self.head2.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::random_graph;
    use crate::plan::candidate_plans;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn forward_shapes() {
        let mut r = rng();
        let g = random_graph(5, &mut r);
        let cands = candidate_plans(&g, 6, &mut r);
        let mut m = DualQoModel::new(16, 8, 1e-3, &mut r);
        let scores = m.predict(&cands, &g);
        assert_eq!(scores.len(), cands.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn training_reduces_loss() {
        let mut r = rng();
        let mut m = DualQoModel::new(16, 8, 3e-3, &mut r);
        let graphs: Vec<_> = (0..6).map(|_| random_graph(4, &mut r)).collect();
        let cands: Vec<_> = graphs
            .iter()
            .map(|g| candidate_plans(g, 5, &mut r))
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..60 {
            let mut total = 0.0;
            for (g, c) in graphs.iter().zip(cands.iter()) {
                total += m.train_step(c, g);
            }
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < first * 0.6, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn trained_model_ranks_better_than_random() {
        let mut r = rng();
        let mut m = DualQoModel::new(16, 8, 3e-3, &mut r);
        // Train on many graphs.
        for _ in 0..80 {
            let g = random_graph(4, &mut r);
            let c = candidate_plans(&g, 5, &mut r);
            m.train_step(&c, &g);
        }
        // Evaluate: chosen plan's true cost vs average candidate cost.
        let mut chosen_total = 0.0;
        let mut avg_total = 0.0;
        for _ in 0..20 {
            let g = random_graph(4, &mut r);
            let c = candidate_plans(&g, 5, &mut r);
            let chosen = m.choose(&c, &g);
            chosen_total += cost_plan(chosen, &g, true).cost;
            avg_total +=
                c.iter().map(|p| cost_plan(p, &g, true).cost).sum::<f64>() / c.len() as f64;
        }
        assert!(
            chosen_total < avg_total,
            "model choice ({chosen_total:.0}) must beat random-average ({avg_total:.0})"
        );
    }

    /// Moving only the buffer-state features (hit ratio / occupancy)
    /// must change the model's plan scores: the conditions projection
    /// consumes them, so the optimizer genuinely reacts to system state.
    #[test]
    fn buffer_state_alone_changes_scores() {
        let mut r = rng();
        let mut g = random_graph(4, &mut r);
        let cands = candidate_plans(&g, 4, &mut r);
        let mut m = DualQoModel::new(16, 8, 1e-3, &mut r);
        let cold = m.predict(&cands, &g);
        g.system = crate::graph::SystemConditions {
            buffer_hit_ratio: 0.2,
            buffer_occupancy: 0.95,
        };
        let hot = m.predict(&cands, &g);
        assert_ne!(cold, hot, "buffer state must reach the model input");
    }

    #[test]
    fn conditions_affect_scores() {
        let mut r = rng();
        let g = random_graph(4, &mut r);
        let drifted = g.drift(1.0, &mut r);
        let cands = candidate_plans(&g, 4, &mut r);
        let mut m = DualQoModel::new(16, 8, 1e-3, &mut r);
        let s1 = m.predict(&cands, &g);
        let s2 = m.predict(&cands, &drifted);
        assert_ne!(s1, s2, "different system conditions must change scores");
    }

    #[test]
    fn normalize_cost_monotone() {
        assert!(normalize_cost(10.0) < normalize_cost(1e6));
        assert!(normalize_cost(0.0) >= 0.0);
    }
}

//! Property-based tests for the query-optimizer crate.

use neurdb_qo::{candidate_plans, cost_plan, dp_best_plan, random_graph, JoinGraph, PlanTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exhaustive left-deep enumeration for small table counts.
fn all_left_deep(n: usize) -> Vec<Vec<usize>> {
    fn perms(items: Vec<usize>) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items];
        }
        let mut out = Vec::new();
        for i in 0..items.len() {
            let mut rest = items.clone();
            let head = rest.remove(i);
            for mut tail in perms(rest) {
                tail.insert(0, head);
                out.push(tail);
            }
        }
        out
    }
    perms((0..n).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// DP (bushy) never costs more than any left-deep permutation under
    /// the same (estimated) statistics.
    #[test]
    fn dp_dominates_left_deep(seed in 0u64..5000, n in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(n, &mut rng);
        let dp_cost = cost_plan(&dp_best_plan(&g), &g, false).cost;
        for order in all_left_deep(n) {
            let c = cost_plan(&PlanTree::left_deep(&order), &g, false).cost;
            // Relative tolerance: different summation orders of the same
            // plan cost drift in the last ulps at ~1e10 magnitudes.
            prop_assert!(dp_cost <= c * (1.0 + 1e-9), "dp {dp_cost} > left-deep {c}");
        }
    }

    /// Every candidate plan is complete (joins all tables) and distinct.
    #[test]
    fn candidates_complete_and_distinct(seed in 0u64..5000, n in 2usize..7, k in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(n, &mut rng);
        let cands = candidate_plans(&g, k, &mut rng);
        let full = (1u32 << n) - 1;
        for c in &cands {
            prop_assert_eq!(c.mask(), full);
            prop_assert_eq!(c.num_joins(), n - 1);
        }
        for i in 0..cands.len() {
            for j in i + 1..cands.len() {
                prop_assert_ne!(&cands[i], &cands[j]);
            }
        }
    }

    /// Costs are positive, finite, and cardinalities at least 1.
    #[test]
    fn costs_well_formed(seed in 0u64..5000, n in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(n, &mut rng);
        for truth in [false, true] {
            for c in candidate_plans(&g, 5, &mut rng) {
                let pc = cost_plan(&c, &g, truth);
                prop_assert!(pc.cost.is_finite() && pc.cost > 0.0);
                // Cardinalities are unclamped expectations: any positive
                // value (including fractional) is well-formed.
                prop_assert!(pc.cardinality.is_finite() && pc.cardinality > 0.0);
            }
        }
    }

    /// Drift never mutates estimates, and zero severity is the identity
    /// on true statistics.
    #[test]
    fn drift_contract(seed in 0u64..5000, severity in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(4, &mut rng);
        let d = g.drift(severity, &mut rng);
        for (a, b) in g.tables.iter().zip(d.tables.iter()) {
            prop_assert_eq!(a.est_rows, b.est_rows);
            prop_assert!(b.true_rows >= 1.0);
        }
        let z = g.drift(0.0, &mut rng);
        for (a, b) in g.tables.iter().zip(z.tables.iter()) {
            prop_assert_eq!(a.true_rows, b.true_rows);
        }
    }

    /// Condition tokens always have the declared fixed shape, on drifted
    /// and undrifted graphs alike.
    #[test]
    fn condition_tokens_shape(seed in 0u64..5000, max_tables in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g: JoinGraph = random_graph(4, &mut rng).drift(0.7, &mut rng);
        let toks = g.condition_tokens(max_tables);
        prop_assert_eq!(toks.len(), max_tables);
        for t in &toks {
            prop_assert_eq!(t.len(), 5);
            prop_assert!(t.iter().all(|v| v.is_finite()));
        }
    }
}

//! Property-based tests for the NN substrate.

use neurdb_nn::{mlp_spec, LayerSpec, Matrix, Model};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    /// Double transpose is the identity.
    #[test]
    fn transpose_involution(m in arb_matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000, n in 1usize..8, k in 1usize..8, m in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::xavier(n, k, &mut rng);
        let b = Matrix::xavier(k, m, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data.iter().zip(rhs.data.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Fused transposed matmuls agree with the naive formulation.
    #[test]
    fn fused_matmuls_agree(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::xavier(5, 7, &mut rng);
        let b = Matrix::xavier(5, 3, &mut rng);
        let naive = a.transpose().matmul(&b);
        let fused = a.t_matmul(&b);
        for (x, y) in naive.data.iter().zip(fused.data.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Row softmax returns a probability distribution per row.
    #[test]
    fn softmax_is_distribution(m in arb_matrix(10)) {
        let s = m.softmax_rows();
        for r in 0..s.rows {
            let row = s.row(r);
            prop_assert!(row.iter().all(|v| (0.0..=1.0 + 1e-6).contains(v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
    }

    /// Layer-state serialization round-trips any MLP architecture.
    #[test]
    fn model_state_roundtrip(dims in prop::collection::vec(1usize..12, 2..5), seed in 0u64..1000) {
        let spec = mlp_spec(&dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Model::from_spec(spec.clone(), &mut rng);
        let mut b = Model::from_spec(spec, &mut rng); // different init
        b.load_states(&a.layer_states());
        let x = Matrix::xavier(3, dims[0], &mut rng);
        prop_assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }

    /// A model assembled from mixed-version layers equals manual forward
    /// through those exact layer states (versioned reconstruction).
    #[test]
    fn hybrid_layer_load_is_deterministic(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = vec![
            LayerSpec::Linear { inputs: 4, outputs: 6 },
            LayerSpec::Relu,
            LayerSpec::Linear { inputs: 6, outputs: 2 },
        ];
        let v1 = Model::from_spec(spec.clone(), &mut rng);
        let v2 = Model::from_spec(spec.clone(), &mut rng);
        // Assemble twice from the same mixed states: results must agree.
        let assemble = |rng: &mut StdRng| {
            let mut m = Model::from_spec(spec.clone(), rng);
            m.load_layer_state(0, &v1.layer_states()[0]);
            m.load_layer_state(2, &v2.layer_states()[2]);
            m
        };
        let mut h1 = assemble(&mut rng);
        let mut h2 = assemble(&mut rng);
        let x = Matrix::xavier(2, 4, &mut rng);
        prop_assert_eq!(h1.forward(&x).data, h2.forward(&x).data);
    }
}

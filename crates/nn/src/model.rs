//! Layered models: the unit the paper's model manager stores and versions.
//!
//! A model is an ordered stack of layers `M(X) = L(n)(...L(1)(X))`
//! (Section 4.1). [`LayerSpec`] describes the architecture declaratively so
//! model storage can rebuild the stack and then load per-layer weight blobs
//! — which is exactly how incremental updates re-assemble a model version
//! from layers with different timestamps.

use crate::attention::MultiHeadAttention;
use crate::layer::{Embedding, Layer, LayerNorm, Linear, Relu, Sigmoid, Tanh};
use crate::loss::{bce_with_logits, mse, softmax_cross_entropy};
use crate::optim::{Adam, OptimConfig};
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Declarative layer description; the model manager persists this next to
/// the weight blobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    Linear {
        inputs: usize,
        outputs: usize,
    },
    Embedding {
        vocab: usize,
        dim: usize,
        nfields: usize,
    },
    Relu,
    Sigmoid,
    Tanh,
    LayerNorm {
        dim: usize,
    },
    MultiHeadAttention {
        dim: usize,
        heads: usize,
    },
}

impl LayerSpec {
    /// Append a compact wire encoding — used by the model manager's
    /// durable snapshots and the WAL's model-event records.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use bytes::BufMut;
        match self {
            LayerSpec::Linear { inputs, outputs } => {
                out.put_u8(0);
                out.put_u64_le(*inputs as u64);
                out.put_u64_le(*outputs as u64);
            }
            LayerSpec::Embedding {
                vocab,
                dim,
                nfields,
            } => {
                out.put_u8(1);
                out.put_u64_le(*vocab as u64);
                out.put_u64_le(*dim as u64);
                out.put_u64_le(*nfields as u64);
            }
            LayerSpec::Relu => out.put_u8(2),
            LayerSpec::Sigmoid => out.put_u8(3),
            LayerSpec::Tanh => out.put_u8(4),
            LayerSpec::LayerNorm { dim } => {
                out.put_u8(5);
                out.put_u64_le(*dim as u64);
            }
            LayerSpec::MultiHeadAttention { dim, heads } => {
                out.put_u8(6);
                out.put_u64_le(*dim as u64);
                out.put_u64_le(*heads as u64);
            }
        }
    }

    /// Decode one spec from the front of `buf`; `None` on malformed input.
    pub fn decode(buf: &mut &[u8]) -> Option<Self> {
        use bytes::Buf;
        if buf.remaining() < 1 {
            return None;
        }
        let tag = buf.get_u8();
        let u = |buf: &mut &[u8]| -> Option<usize> {
            (buf.remaining() >= 8).then(|| buf.get_u64_le() as usize)
        };
        Some(match tag {
            0 => LayerSpec::Linear {
                inputs: u(buf)?,
                outputs: u(buf)?,
            },
            1 => LayerSpec::Embedding {
                vocab: u(buf)?,
                dim: u(buf)?,
                nfields: u(buf)?,
            },
            2 => LayerSpec::Relu,
            3 => LayerSpec::Sigmoid,
            4 => LayerSpec::Tanh,
            5 => LayerSpec::LayerNorm { dim: u(buf)? },
            6 => LayerSpec::MultiHeadAttention {
                dim: u(buf)?,
                heads: u(buf)?,
            },
            _ => return None,
        })
    }

    /// Encode an ordered spec stack.
    pub fn encode_stack(specs: &[LayerSpec]) -> Vec<u8> {
        use bytes::BufMut;
        let mut out = Vec::with_capacity(4 + specs.len() * 8);
        out.put_u32_le(specs.len() as u32);
        for s in specs {
            s.encode_into(&mut out);
        }
        out
    }

    /// Decode a spec stack produced by [`LayerSpec::encode_stack`].
    pub fn decode_stack(mut buf: &[u8]) -> Option<Vec<LayerSpec>> {
        use bytes::Buf;
        if buf.remaining() < 4 {
            return None;
        }
        let n = buf.get_u32_le() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(LayerSpec::decode(&mut buf)?);
        }
        Some(out)
    }

    /// Instantiate the layer with fresh (random) weights.
    pub fn build(&self, rng: &mut impl Rng) -> Box<dyn Layer> {
        match self {
            LayerSpec::Linear { inputs, outputs } => Box::new(Linear::new(*inputs, *outputs, rng)),
            LayerSpec::Embedding {
                vocab,
                dim,
                nfields,
            } => Box::new(Embedding::new(*vocab, *dim, *nfields, rng)),
            LayerSpec::Relu => Box::new(Relu::new()),
            LayerSpec::Sigmoid => Box::new(Sigmoid::new()),
            LayerSpec::Tanh => Box::new(Tanh::new()),
            LayerSpec::LayerNorm { dim } => Box::new(LayerNorm::new(*dim)),
            LayerSpec::MultiHeadAttention { dim, heads } => {
                Box::new(MultiHeadAttention::new(*dim, *heads, rng))
            }
        }
    }
}

/// Loss function selector for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Mean squared error — `PREDICT VALUE OF` (regression).
    Mse,
    /// Binary cross-entropy on logits — `PREDICT CLASS OF` with 2 classes.
    Bce,
    /// Softmax cross-entropy; targets are class indexes in column 0.
    CrossEntropy,
}

/// A sequential stack of layers.
pub struct Model {
    pub spec: Vec<LayerSpec>,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Model[{}]", self.describe())
    }
}

impl Model {
    pub fn from_spec(spec: Vec<LayerSpec>, rng: &mut impl Rng) -> Self {
        let layers = spec.iter().map(|s| s.build(rng)).collect();
        Model { spec, layers }
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Backward through all layers; gradients accumulate in each layer.
    pub fn backward(&mut self, grad_out: &Matrix) {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Parameter slices of layers `from..` (used to freeze a prefix).
    pub fn params_from(&mut self, from: usize) -> Vec<&mut [f32]> {
        self.layers[from..]
            .iter_mut()
            .flat_map(|l| l.params())
            .collect()
    }

    pub fn grads_from(&mut self, from: usize) -> Vec<&mut [f32]> {
        self.layers[from..]
            .iter_mut()
            .flat_map(|l| l.grads())
            .collect()
    }

    /// Serialize each layer's weights.
    pub fn layer_states(&self) -> Vec<Vec<u8>> {
        self.layers.iter().map(|l| l.state()).collect()
    }

    /// Load one layer's weights.
    pub fn load_layer_state(&mut self, idx: usize, bytes: &[u8]) {
        self.layers[idx].load_state(bytes);
    }

    /// Load all layers' weights.
    pub fn load_states(&mut self, states: &[Vec<u8>]) {
        assert_eq!(states.len(), self.layers.len(), "layer count mismatch");
        for (i, s) in states.iter().enumerate() {
            self.layers[i].load_state(s);
        }
    }

    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.describe())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Couples a model with an Adam optimizer and a loss, handling layer
/// freezing for incremental updates.
pub struct Trainer {
    pub model: Model,
    pub loss: LossKind,
    opt: Adam,
    frozen_prefix: usize,
}

impl Trainer {
    pub fn new(model: Model, loss: LossKind, cfg: OptimConfig) -> Self {
        Trainer {
            model,
            loss,
            opt: Adam::new(cfg),
            frozen_prefix: 0,
        }
    }

    /// Freeze the first `n` layers: their weights stop updating. This is
    /// the mechanism behind the paper's incremental model update — only the
    /// trailing layers are fine-tuned and persisted as a new version.
    pub fn set_frozen_prefix(&mut self, n: usize) {
        assert!(n <= self.model.num_layers());
        if n != self.frozen_prefix {
            self.frozen_prefix = n;
            self.opt.reset();
        }
    }

    pub fn frozen_prefix(&self) -> usize {
        self.frozen_prefix
    }

    /// One SGD step on a batch. For [`LossKind::CrossEntropy`], `target`
    /// column 0 holds class indexes. Returns the loss.
    pub fn train_batch(&mut self, input: &Matrix, target: &Matrix) -> f32 {
        let pred = self.model.forward(input);
        let (loss, grad) = match self.loss {
            LossKind::Mse => mse(&pred, target),
            LossKind::Bce => bce_with_logits(&pred, target),
            LossKind::CrossEntropy => {
                let labels: Vec<usize> = (0..target.rows)
                    .map(|r| target.get(r, 0).max(0.0) as usize)
                    .collect();
                softmax_cross_entropy(&pred, &labels)
            }
        };
        self.model.zero_grad();
        self.model.backward(&grad);
        let from = self.frozen_prefix;
        // `params_from` and `grads_from` both borrow the model mutably, so
        // snapshot the gradients into owned buffers first.
        let mut grads_owned: Vec<Vec<f32>> = self
            .model
            .grads_from(from)
            .iter()
            .map(|g| g.to_vec())
            .collect();
        let mut params = self.model.params_from(from);
        let mut grads_refs: Vec<&mut [f32]> =
            grads_owned.iter_mut().map(|g| g.as_mut_slice()).collect();
        self.opt.step(&mut params, &mut grads_refs);
        loss
    }

    /// Evaluate loss without updating weights.
    pub fn eval_batch(&mut self, input: &Matrix, target: &Matrix) -> f32 {
        let pred = self.model.forward(input);
        match self.loss {
            LossKind::Mse => mse(&pred, target).0,
            LossKind::Bce => bce_with_logits(&pred, target).0,
            LossKind::CrossEntropy => {
                let labels: Vec<usize> = (0..target.rows)
                    .map(|r| target.get(r, 0).max(0.0) as usize)
                    .collect();
                softmax_cross_entropy(&pred, &labels).0
            }
        }
    }

    pub fn predict(&mut self, input: &Matrix) -> Matrix {
        self.model.forward(input)
    }
}

/// A standard MLP spec: `dims[0] -> dims[1] -> ... -> dims.last()` with
/// ReLU between hidden layers.
pub fn mlp_spec(dims: &[usize]) -> Vec<LayerSpec> {
    assert!(dims.len() >= 2);
    let mut spec = Vec::new();
    for i in 0..dims.len() - 1 {
        spec.push(LayerSpec::Linear {
            inputs: dims[i],
            outputs: dims[i + 1],
        });
        if i + 2 < dims.len() {
            spec.push(LayerSpec::Relu);
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    /// y = 2a - b as a regression task.
    fn toy_batch(rng: &mut impl Rng, n: usize) -> (Matrix, Matrix) {
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for r in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            x.set(r, 0, a);
            x.set(r, 1, b);
            y.set(r, 0, 2.0 * a - b);
        }
        (x, y)
    }

    #[test]
    fn mlp_learns_linear_function() {
        let mut rng = rng();
        let model = Model::from_spec(mlp_spec(&[2, 16, 1]), &mut rng);
        let mut t = Trainer::new(
            model,
            LossKind::Mse,
            OptimConfig {
                lr: 0.01,
                ..Default::default()
            },
        );
        let mut last = f32::MAX;
        for _ in 0..300 {
            let (x, y) = toy_batch(&mut rng, 32);
            last = t.train_batch(&x, &y);
        }
        assert!(last < 0.01, "final loss {last}");
    }

    #[test]
    fn classification_with_cross_entropy() {
        let mut rng = rng();
        let model = Model::from_spec(mlp_spec(&[2, 16, 2]), &mut rng);
        let mut t = Trainer::new(
            model,
            LossKind::CrossEntropy,
            OptimConfig {
                lr: 0.01,
                ..Default::default()
            },
        );
        // Class = whether a+b > 0.
        let gen = |rng: &mut rand::rngs::StdRng, n: usize| {
            let mut x = Matrix::zeros(n, 2);
            let mut y = Matrix::zeros(n, 1);
            for r in 0..n {
                let a: f32 = rng.gen_range(-1.0..1.0);
                let b: f32 = rng.gen_range(-1.0..1.0);
                x.set(r, 0, a);
                x.set(r, 1, b);
                y.set(r, 0, if a + b > 0.0 { 1.0 } else { 0.0 });
            }
            (x, y)
        };
        for _ in 0..300 {
            let (x, y) = gen(&mut rng, 32);
            t.train_batch(&x, &y);
        }
        let (x, y) = gen(&mut rng, 256);
        let pred = t.predict(&x);
        let labels: Vec<usize> = (0..y.rows).map(|r| y.get(r, 0) as usize).collect();
        let acc = crate::loss::accuracy(&pred, &labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn frozen_prefix_keeps_early_layers_fixed() {
        let mut rng = rng();
        let model = Model::from_spec(mlp_spec(&[2, 8, 8, 1]), &mut rng);
        let mut t = Trainer::new(model, LossKind::Mse, OptimConfig::default());
        let before = t.model.layer_states();
        t.set_frozen_prefix(2); // freeze first linear + relu
        for _ in 0..20 {
            let (x, y) = toy_batch(&mut rng, 16);
            t.train_batch(&x, &y);
        }
        let after = t.model.layer_states();
        assert_eq!(before[0], after[0], "frozen layer 0 must not change");
        assert_ne!(before[2], after[2], "unfrozen layer 2 must receive updates");
    }

    #[test]
    fn layer_state_roundtrip_through_spec() {
        let mut rng = rng();
        let spec = mlp_spec(&[3, 5, 2]);
        let mut a = Model::from_spec(spec.clone(), &mut rng);
        let states = a.layer_states();
        let mut b = Model::from_spec(spec, &mut rng);
        b.load_states(&states);
        let x = Matrix::xavier(4, 3, &mut rng);
        assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }

    #[test]
    fn partial_layer_load_creates_hybrid() {
        let mut rng = rng();
        let spec = mlp_spec(&[2, 4, 1]);
        let mut a = Model::from_spec(spec.clone(), &mut rng);
        let mut b = Model::from_spec(spec.clone(), &mut rng);
        // Hybrid: layer 0 from a, layer 2 (second linear) from b.
        let mut h = Model::from_spec(spec, &mut rng);
        h.load_layer_state(0, &a.layer_states()[0]);
        h.load_layer_state(2, &b.layer_states()[2]);
        let x = Matrix::xavier(3, 2, &mut rng);
        let ya = a.forward(&x);
        let yb = b.forward(&x);
        let yh = h.forward(&x);
        assert_ne!(yh.data, ya.data);
        assert_ne!(yh.data, yb.data);
    }

    #[test]
    fn describe_lists_layers() {
        let mut rng = rng();
        let m = Model::from_spec(mlp_spec(&[2, 4, 1]), &mut rng);
        assert_eq!(m.describe(), "linear(2->4) -> relu -> linear(4->1)");
    }
}

//! Loss functions: value + gradient with respect to predictions.

use crate::tensor::Matrix;

/// Mean squared error over all cells: `L = mean((pred - target)^2)`.
/// Returns `(loss, dL/dpred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!((pred.rows, pred.cols), (target.rows, target.cols));
    let n = (pred.rows * pred.cols) as f32;
    let diff = pred.sub(target);
    let loss = diff.data.iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Binary cross-entropy on logits (numerically stable):
/// `L = mean(max(z,0) - z*y + ln(1+e^{-|z|}))`. Targets in {0,1}.
pub fn bce_with_logits(logits: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!((logits.rows, logits.cols), (target.rows, target.cols));
    let n = (logits.rows * logits.cols) as f32;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(logits.rows, logits.cols);
    for i in 0..logits.data.len() {
        let z = logits.data[i];
        let y = target.data[i];
        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        let sig = 1.0 / (1.0 + (-z).exp());
        grad.data[i] = (sig - y) / n;
    }
    (loss / n, grad)
}

/// Softmax cross-entropy for one-hot class targets. `logits` is
/// `batch × classes`, `labels[i]` is the class index of row i.
/// Returns `(mean loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows, labels.len());
    let probs = logits.softmax_rows();
    let n = logits.rows as f32;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols, "label out of range");
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    (loss / n, grad.scale(1.0 / n))
}

/// Classification accuracy given logits and class labels.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    if logits.rows == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if argmax == label {
            correct += 1;
        }
    }
    correct as f64 / logits.rows as f64
}

/// Binary accuracy from logits (threshold at 0) and 0/1 targets.
pub fn binary_accuracy(logits: &Matrix, target: &Matrix) -> f64 {
    if logits.rows == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..logits.data.len() {
        let pred = logits.data[i] > 0.0;
        let truth = target.data[i] > 0.5;
        if pred == truth {
            correct += 1;
        }
    }
    correct as f64 / logits.data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_equal() {
        let p = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.data.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn mse_gradient_numeric() {
        let p = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        let t = Matrix::from_vec(1, 3, vec![0.0, 0.0, 1.0]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data[i] += eps;
            let mut pm = p.clone();
            pm.data[i] -= eps;
            let numeric = (mse(&pp, &t).0 - mse(&pm, &t).0) / (2.0 * eps);
            assert!((numeric - g.data[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_stable_for_large_logits() {
        let z = Matrix::from_vec(1, 2, vec![100.0, -100.0]);
        let y = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (l, g) = bce_with_logits(&z, &y);
        assert!(l.is_finite() && l < 1e-3);
        assert!(g.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bce_gradient_numeric() {
        let z = Matrix::from_vec(1, 3, vec![0.3, -0.7, 1.2]);
        let y = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let (_, g) = bce_with_logits(&z, &y);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut zp = z.clone();
            zp.data[i] += eps;
            let mut zm = z.clone();
            zm.data[i] -= eps;
            let numeric = (bce_with_logits(&zp, &y).0 - bce_with_logits(&zm, &y).0) / (2.0 * eps);
            assert!((numeric - g.data[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn ce_gradient_numeric() {
        let z = Matrix::from_vec(2, 3, vec![0.1, 0.5, -0.2, 1.0, -1.0, 0.0]);
        let labels = vec![2usize, 0usize];
        let (_, g) = softmax_cross_entropy(&z, &labels);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut zp = z.clone();
            zp.data[i] += eps;
            let mut zm = z.clone();
            zm.data[i] -= eps;
            let numeric = (softmax_cross_entropy(&zp, &labels).0
                - softmax_cross_entropy(&zm, &labels).0)
                / (2.0 * eps);
            assert!((numeric - g.data[i]).abs() < 1e-3, "at {i}");
        }
    }

    #[test]
    fn accuracy_metrics() {
        let z = Matrix::from_vec(2, 2, vec![2.0, -1.0, 0.0, 3.0]);
        assert_eq!(accuracy(&z, &[0, 1]), 1.0);
        assert_eq!(accuracy(&z, &[1, 0]), 0.0);
        let logits = Matrix::from_vec(1, 4, vec![1.0, -1.0, 2.0, -2.0]);
        let target = Matrix::from_vec(1, 4, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(binary_accuracy(&logits, &target), 0.5);
    }
}

//! Tree encoder for query-plan trees ("tree transformer", paper Fig. 5).
//!
//! Encodes an arbitrary binary plan tree into a fixed-size embedding by
//! recursive composition: `h(node) = tanh(W_n x_node + W_l h(left) +
//! W_r h(right) + b)`. The learned query optimizer feeds one such embedding
//! per candidate plan into its cross-attention encoder. Gradients flow back
//! through the recursion (backprop-through-structure).

use crate::tensor::Matrix;
use bytes::{Buf, BufMut, BytesMut};
use rand::Rng;

/// A node of an encodable plan tree: a feature vector plus up to two
/// children.
#[derive(Debug, Clone)]
pub struct TreeNode {
    pub features: Vec<f32>,
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    pub fn leaf(features: Vec<f32>) -> Self {
        TreeNode {
            features,
            children: Vec::new(),
        }
    }

    pub fn inner(features: Vec<f32>, children: Vec<TreeNode>) -> Self {
        assert!(children.len() <= 2, "binary trees only");
        TreeNode { features, children }
    }

    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }
}

/// Recursive tree encoder with tied weights across nodes.
pub struct TreeEncoder {
    pub feat_dim: usize,
    pub out_dim: usize,
    wn: Matrix, // feat_dim x out_dim
    wl: Matrix, // out_dim x out_dim
    wr: Matrix, // out_dim x out_dim
    b: Vec<f32>,
    gn: Matrix,
    gl: Matrix,
    gr: Matrix,
    gb: Vec<f32>,
}

/// Cached activations for one encoded tree (needed for backward).
pub struct TreeTrace {
    /// Post-order list: (features, left trace idx, right trace idx, pre-activation, h).
    nodes: Vec<TraceNode>,
    root: usize,
}

struct TraceNode {
    features: Vec<f32>,
    left: Option<usize>,
    right: Option<usize>,
    pre: Vec<f32>,
    h: Vec<f32>,
}

impl TreeEncoder {
    pub fn new(feat_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        TreeEncoder {
            feat_dim,
            out_dim,
            wn: Matrix::xavier(feat_dim, out_dim, rng),
            wl: Matrix::xavier(out_dim, out_dim, rng),
            wr: Matrix::xavier(out_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            gn: Matrix::zeros(feat_dim, out_dim),
            gl: Matrix::zeros(out_dim, out_dim),
            gr: Matrix::zeros(out_dim, out_dim),
            gb: vec![0.0; out_dim],
        }
    }

    fn encode_rec(&self, node: &TreeNode, trace: &mut Vec<TraceNode>) -> usize {
        let left = node.children.first().map(|c| self.encode_rec(c, trace));
        let right = node.children.get(1).map(|c| self.encode_rec(c, trace));
        let mut feats = node.features.clone();
        feats.resize(self.feat_dim, 0.0);
        let mut pre = self.b.clone();
        // W_n^T x
        for (i, f) in feats.iter().enumerate() {
            if *f != 0.0 {
                for (p, w) in pre.iter_mut().zip(self.wn.row(i).iter()) {
                    *p += f * w;
                }
            }
        }
        for (child, w) in [(left, &self.wl), (right, &self.wr)] {
            if let Some(ci) = child {
                let ch = trace[ci].h.clone();
                for (i, hv) in ch.iter().enumerate() {
                    for (p, wv) in pre.iter_mut().zip(w.row(i).iter()) {
                        *p += hv * wv;
                    }
                }
            }
        }
        let h: Vec<f32> = pre.iter().map(|v| v.tanh()).collect();
        trace.push(TraceNode {
            features: feats,
            left,
            right,
            pre,
            h,
        });
        trace.len() - 1
    }

    /// Encode a tree; returns the root embedding and a trace for backward.
    pub fn encode(&self, tree: &TreeNode) -> (Vec<f32>, TreeTrace) {
        let mut nodes = Vec::with_capacity(tree.size());
        let root = self.encode_rec(tree, &mut nodes);
        let h = nodes[root].h.clone();
        (h, TreeTrace { nodes, root })
    }

    /// Backprop `d_root` (dL/d root embedding) through the tree, updating
    /// parameter gradients.
    pub fn backward(&mut self, trace: &TreeTrace, d_root: &[f32]) {
        let n = trace.nodes.len();
        let mut dh = vec![vec![0.0f32; self.out_dim]; n];
        dh[trace.root].copy_from_slice(d_root);
        // Traverse in reverse post-order (parents after children in the
        // trace vector, so iterate indices downward).
        for i in (0..n).rev() {
            let (left, right) = (trace.nodes[i].left, trace.nodes[i].right);
            // dpre = dh * (1 - tanh^2)
            let dpre: Vec<f32> = trace.nodes[i]
                .pre
                .iter()
                .zip(dh[i].iter())
                .map(|(p, d)| d * (1.0 - p.tanh().powi(2)))
                .collect();
            // Parameter grads.
            for (fi, f) in trace.nodes[i].features.iter().enumerate() {
                if *f != 0.0 {
                    for (g, d) in self.gn.row_mut(fi).iter_mut().zip(dpre.iter()) {
                        *g += f * d;
                    }
                }
            }
            for (g, d) in self.gb.iter_mut().zip(dpre.iter()) {
                *g += d;
            }
            for (child, w, gw) in [
                (left, &self.wl, &mut self.gl),
                (right, &self.wr, &mut self.gr),
            ] {
                if let Some(ci) = child {
                    let ch = trace.nodes[ci].h.clone();
                    for (hi, hv) in ch.iter().enumerate() {
                        for (g, d) in gw.row_mut(hi).iter_mut().zip(dpre.iter()) {
                            *g += hv * d;
                        }
                    }
                    // dh_child += W dpre (W is out_dim x out_dim, row = child dim)
                    for (hi, slot) in dh[ci].iter_mut().enumerate().take(self.out_dim) {
                        let mut s = 0.0;
                        for (wv, d) in w.row(hi).iter().zip(dpre.iter()) {
                            s += wv * d;
                        }
                        *slot += s;
                    }
                }
            }
        }
    }

    pub fn params(&mut self) -> Vec<&mut [f32]> {
        vec![
            &mut self.wn.data,
            &mut self.wl.data,
            &mut self.wr.data,
            &mut self.b,
        ]
    }

    pub fn grads(&mut self) -> Vec<&mut [f32]> {
        vec![
            &mut self.gn.data,
            &mut self.gl.data,
            &mut self.gr.data,
            &mut self.gb,
        ]
    }

    pub fn zero_grad(&mut self) {
        self.gn.data.iter_mut().for_each(|v| *v = 0.0);
        self.gl.data.iter_mut().for_each(|v| *v = 0.0);
        self.gr.data.iter_mut().for_each(|v| *v = 0.0);
        self.gb.iter_mut().for_each(|v| *v = 0.0);
    }

    pub fn param_count(&self) -> usize {
        self.wn.data.len() + self.wl.data.len() + self.wr.data.len() + self.b.len()
    }

    pub fn state(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.feat_dim as u32);
        buf.put_u32_le(self.out_dim as u32);
        for m in [&self.wn, &self.wl, &self.wr] {
            for v in &m.data {
                buf.put_f32_le(*v);
            }
        }
        for v in &self.b {
            buf.put_f32_le(*v);
        }
        buf.to_vec()
    }

    pub fn load_state(&mut self, bytes: &[u8]) {
        let mut buf = bytes;
        let fd = buf.get_u32_le() as usize;
        let od = buf.get_u32_le() as usize;
        assert_eq!((fd, od), (self.feat_dim, self.out_dim));
        for m in [&mut self.wn, &mut self.wl, &mut self.wr] {
            for v in &mut m.data {
                *v = buf.get_f32_le();
            }
        }
        for v in &mut self.b {
            *v = buf.get_f32_le();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chain(depth: usize, feat: f32) -> TreeNode {
        let mut node = TreeNode::leaf(vec![feat, 1.0]);
        for _ in 0..depth {
            node = TreeNode::inner(vec![feat, 0.5], vec![node]);
        }
        node
    }

    #[test]
    fn encoding_is_deterministic_and_structure_sensitive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        let enc = TreeEncoder::new(2, 8, &mut rng);
        let t1 = chain(3, 0.7);
        let (h1, _) = enc.encode(&t1);
        let (h1b, _) = enc.encode(&t1);
        assert_eq!(h1, h1b);
        let t2 = chain(4, 0.7);
        let (h2, _) = enc.encode(&t2);
        assert_ne!(h1, h2, "deeper tree must encode differently");
        // Left vs right child placement matters.
        let leaf = TreeNode::leaf(vec![1.0, 0.0]);
        let l = TreeNode::inner(vec![0.0, 0.0], vec![leaf.clone()]);
        let r = TreeNode {
            features: vec![0.0, 0.0],
            children: vec![TreeNode::leaf(vec![0.0, 0.0]), leaf],
        };
        assert_ne!(enc.encode(&l).0, enc.encode(&r).0);
    }

    #[test]
    fn gradient_check_through_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut enc = TreeEncoder::new(2, 4, &mut rng);
        let tree = TreeNode::inner(
            vec![0.3, -0.2],
            vec![
                TreeNode::leaf(vec![0.5, 0.1]),
                TreeNode::inner(vec![-0.4, 0.9], vec![TreeNode::leaf(vec![0.2, 0.2])]),
            ],
        );
        let (h, trace) = enc.encode(&tree);
        enc.zero_grad();
        let d_root = vec![1.0; 4];
        enc.backward(&trace, &d_root);
        let _ = h;
        // Finite differences on a few weights of each matrix.
        let eps = 1e-2f32;
        let check = |enc: &mut TreeEncoder, which: usize, idx: usize, analytic: f32| {
            let get = |e: &TreeEncoder| -> f32 {
                let (h, _) = e.encode(&tree);
                h.iter().sum()
            };
            let bump = |e: &mut TreeEncoder, d: f32| match which {
                0 => e.wn.data[idx] += d,
                1 => e.wl.data[idx] += d,
                2 => e.wr.data[idx] += d,
                _ => e.b[idx] += d,
            };
            bump(enc, eps);
            let fp = get(enc);
            bump(enc, -2.0 * eps);
            let fm = get(enc);
            bump(enc, eps);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + numeric.abs()),
                "grad mismatch which={which} idx={idx}: {numeric} vs {analytic}"
            );
        };
        for idx in 0..4 {
            let a = enc.gn.data[idx];
            check(&mut enc, 0, idx, a);
            let a = enc.gl.data[idx];
            check(&mut enc, 1, idx, a);
            let a = enc.gr.data[idx];
            check(&mut enc, 2, idx, a);
            let a = enc.gb[idx];
            check(&mut enc, 3, idx, a);
        }
    }

    #[test]
    fn state_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let a = TreeEncoder::new(3, 6, &mut rng);
        let mut b = TreeEncoder::new(3, 6, &mut rng);
        b.load_state(&a.state());
        let t = chain(2, 0.5);
        assert_eq!(a.encode(&t).0, b.encode(&t).0);
    }

    #[test]
    fn size_and_depth() {
        let t = chain(3, 0.1);
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 4);
    }

    #[test]
    fn short_feature_vectors_are_padded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let enc = TreeEncoder::new(8, 4, &mut rng);
        let t = TreeNode::leaf(vec![1.0]); // 1 < feat_dim = 8
        let (h, _) = enc.encode(&t);
        assert_eq!(h.len(), 4);
    }
}

//! ArmNet: the structured-data analytics model NeurDB uses by default.
//!
//! A faithful simplification of *ARM-Net: Adaptive Relation Modeling
//! Network for Structured Data* (Cai et al., SIGMOD'21): categorical fields
//! are embedded, an exponential gated-interaction layer models multiplicative
//! cross-features (`exp(sum_j alpha_kj * ln|e_j|)` per interaction head),
//! and an MLP head produces the prediction. Expressed as a [`LayerSpec`]
//! stack so the model manager can version and incrementally update it like
//! any other model — the paper's Fig. 6(c) experiment fine-tunes exactly
//! this model's trailing layers under data drift.

use crate::model::{LayerSpec, LossKind, Model, Trainer};
use crate::optim::OptimConfig;
use crate::tensor::Matrix;
use rand::Rng;

/// Configuration of an ArmNet instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmNetConfig {
    /// Number of categorical input fields.
    pub nfields: usize,
    /// Vocabulary size shared by the fields (ids are bucketized upstream).
    pub vocab: usize,
    /// Embedding dimension per field.
    pub embed_dim: usize,
    /// Hidden width of the MLP head.
    pub hidden: usize,
    /// Output width (1 for regression / binary classification logits).
    pub outputs: usize,
}

impl Default for ArmNetConfig {
    fn default() -> Self {
        ArmNetConfig {
            nfields: 22, // Avazu's attribute count
            vocab: 1024,
            embed_dim: 8,
            hidden: 64,
            outputs: 1,
        }
    }
}

/// The layer stack of an ArmNet.
///
/// The adaptive-relation part is approximated by an embedding layer
/// followed by LayerNorm (stabilizing the interaction scale), a gated
/// hidden layer (Linear+Tanh, playing the role of the exponential
/// interaction machinery on the embedded fields), and the MLP head. The
/// final two layers (`Linear -> output`) are what incremental updates
/// fine-tune.
pub fn armnet_spec(cfg: &ArmNetConfig) -> Vec<LayerSpec> {
    let emb_out = cfg.nfields * cfg.embed_dim;
    vec![
        LayerSpec::Embedding {
            vocab: cfg.vocab,
            dim: cfg.embed_dim,
            nfields: cfg.nfields,
        },
        LayerSpec::LayerNorm { dim: emb_out },
        LayerSpec::Linear {
            inputs: emb_out,
            outputs: cfg.hidden,
        },
        LayerSpec::Tanh,
        LayerSpec::Linear {
            inputs: cfg.hidden,
            outputs: cfg.hidden,
        },
        LayerSpec::Relu,
        LayerSpec::Linear {
            inputs: cfg.hidden,
            outputs: cfg.outputs,
        },
    ]
}

/// Index of the first layer that incremental updates fine-tune (the last
/// Linear): everything before it is frozen.
pub fn armnet_finetune_from(cfg: &ArmNetConfig) -> usize {
    let _ = cfg;
    armnet_spec(cfg).len() - 1
}

/// Build a ready-to-train ArmNet.
pub fn armnet_trainer(cfg: &ArmNetConfig, loss: LossKind, lr: f32, rng: &mut impl Rng) -> Trainer {
    let model = Model::from_spec(armnet_spec(cfg), rng);
    Trainer::new(
        model,
        loss,
        OptimConfig {
            lr,
            ..Default::default()
        },
    )
}

/// Hash-bucketize a raw categorical value into the vocab range. All fields
/// share one table; field id is mixed in to avoid collisions across fields.
pub fn bucketize(field: usize, raw: u64, vocab: usize) -> usize {
    // FNV-1a style mix.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in (field as u64)
        .to_le_bytes()
        .iter()
        .chain(raw.to_le_bytes().iter())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % vocab as u64) as usize
}

/// Encode a batch of raw categorical rows into the id matrix ArmNet eats.
pub fn encode_batch(rows: &[Vec<u64>], cfg: &ArmNetConfig) -> Matrix {
    let mut m = Matrix::zeros(rows.len(), cfg.nfields);
    for (r, row) in rows.iter().enumerate() {
        for f in 0..cfg.nfields {
            let raw = row.get(f).copied().unwrap_or(0);
            m.set(r, f, bucketize(f, raw, cfg.vocab) as f32);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> ArmNetConfig {
        ArmNetConfig {
            nfields: 4,
            vocab: 64,
            embed_dim: 4,
            hidden: 16,
            outputs: 1,
        }
    }

    #[test]
    fn spec_shape_consistency() {
        let cfg = small_cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let mut model = Model::from_spec(armnet_spec(&cfg), &mut rng);
        let x = encode_batch(&[vec![1, 2, 3, 4], vec![5, 6, 7, 8]], &cfg);
        let y = model.forward(&x);
        assert_eq!((y.rows, y.cols), (2, 1));
    }

    #[test]
    fn learns_synthetic_ctr_signal() {
        let cfg = small_cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut t = armnet_trainer(&cfg, LossKind::Bce, 0.01, &mut rng);
        // Click iff field0's raw value is even.
        let make = |rng: &mut rand::rngs::StdRng, n: usize| {
            let rows: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..4).map(|_| rng.gen_range(0..32u64)).collect())
                .collect();
            let y = Matrix::from_vec(
                n,
                1,
                rows.iter()
                    .map(|r| if r[0] % 2 == 0 { 1.0 } else { 0.0 })
                    .collect(),
            );
            (encode_batch(&rows, &cfg), y)
        };
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..400 {
            let (x, y) = make(&mut rng, 64);
            let l = t.train_batch(&x, &y);
            if i == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first * 0.5, "loss should halve: {first} -> {last}");
    }

    #[test]
    fn bucketize_deterministic_and_field_sensitive() {
        assert_eq!(bucketize(0, 42, 100), bucketize(0, 42, 100));
        // Same raw value in different fields should (almost surely) bucket
        // differently.
        let same = (0..16)
            .filter(|f| bucketize(*f, 7, 1024) == bucketize(0, 7, 1024))
            .count();
        assert!(same <= 2);
    }

    #[test]
    fn finetune_from_is_last_linear() {
        let cfg = small_cfg();
        let spec = armnet_spec(&cfg);
        let from = armnet_finetune_from(&cfg);
        assert!(matches!(spec[from], LayerSpec::Linear { .. }));
        assert_eq!(from, spec.len() - 1);
    }

    #[test]
    fn encode_pads_missing_fields() {
        let cfg = small_cfg();
        let m = encode_batch(&[vec![1, 2]], &cfg); // only 2 of 4 fields
        assert_eq!(m.cols, 4);
    }
}

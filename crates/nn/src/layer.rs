//! The [`Layer`] trait and the elementary layers.
//!
//! Models in NeurDB's model manager are *ordered stacks of layers* whose
//! weights are stored and versioned independently (Section 4.1, "Model
//! Incremental Update"). Every layer here therefore exposes its parameters
//! as flat slices (`params` / `grads`) and a byte codec (`state` /
//! `load_state`) so the model storage can persist single layers.

use crate::tensor::Matrix;
use bytes::{Buf, BufMut, BytesMut};
use rand::Rng;

/// A differentiable layer. `forward` caches whatever `backward` needs, so a
/// layer instance handles one in-flight batch at a time (standard for
/// sequential training loops).
pub trait Layer: Send {
    /// Forward pass: `input` is `batch × in_features`.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Backward pass: receives dL/d(output), returns dL/d(input), and
    /// accumulates parameter gradients internally.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Flat view of trainable parameters (empty for activations).
    fn params(&mut self) -> Vec<&mut [f32]>;

    /// Flat view of accumulated gradients, parallel to `params`.
    fn grads(&mut self) -> Vec<&mut [f32]>;

    /// Zero the accumulated gradients.
    fn zero_grad(&mut self);

    /// Number of trainable scalars.
    fn param_count(&self) -> usize;

    /// Serialize weights (not gradients/caches) to bytes.
    fn state(&self) -> Vec<u8>;

    /// Restore weights from `state` bytes.
    fn load_state(&mut self, bytes: &[u8]);

    /// A short human-readable name ("linear(64->32)" etc.).
    fn describe(&self) -> String;
}

fn put_slice_f32(buf: &mut BytesMut, s: &[f32]) {
    buf.put_u32_le(s.len() as u32);
    for v in s {
        buf.put_f32_le(*v);
    }
}

fn get_vec_f32(buf: &mut &[u8]) -> Vec<f32> {
    let n = buf.get_u32_le() as usize;
    (0..n).map(|_| buf.get_f32_le()).collect()
}

/// Fully-connected layer: `y = x W + b`.
pub struct Linear {
    pub in_features: usize,
    pub out_features: usize,
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    input: Option<Matrix>,
}

impl Linear {
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Linear {
            in_features,
            out_features,
            w: Matrix::xavier(in_features, out_features, rng),
            b: vec![0.0; out_features],
            gw: Matrix::zeros(in_features, out_features),
            gb: vec![0.0; out_features],
            input: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols, self.in_features, "linear input width");
        self.input = Some(input.clone());
        input.matmul(&self.w).add_row_broadcast(&self.b)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("backward before forward");
        // dW = x^T g ; db = column sums of g ; dx = g W^T
        let gw = input.t_matmul(grad_out);
        self.gw = self.gw.add(&gw);
        for (a, b) in self.gb.iter_mut().zip(grad_out.sum_rows()) {
            *a += b;
        }
        grad_out.matmul_t(&self.w)
    }

    fn params(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.w.data, &mut self.b]
    }

    fn grads(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.gw.data, &mut self.gb]
    }

    fn zero_grad(&mut self) {
        self.gw.data.iter_mut().for_each(|v| *v = 0.0);
        self.gb.iter_mut().for_each(|v| *v = 0.0);
    }

    fn param_count(&self) -> usize {
        self.w.data.len() + self.b.len()
    }

    fn state(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.in_features as u32);
        buf.put_u32_le(self.out_features as u32);
        put_slice_f32(&mut buf, &self.w.data);
        put_slice_f32(&mut buf, &self.b);
        buf.to_vec()
    }

    fn load_state(&mut self, bytes: &[u8]) {
        let mut buf = bytes;
        let inf = buf.get_u32_le() as usize;
        let outf = buf.get_u32_le() as usize;
        assert_eq!(
            (inf, outf),
            (self.in_features, self.out_features),
            "shape mismatch"
        );
        self.w.data = get_vec_f32(&mut buf);
        self.b = get_vec_f32(&mut buf);
    }

    fn describe(&self) -> String {
        format!("linear({}->{})", self.in_features, self.out_features)
    }
}

/// Embedding lookup: input cells are categorical ids (stored as f32); each
/// row of `nfields` ids becomes the concatenation of their embeddings.
pub struct Embedding {
    pub vocab: usize,
    pub dim: usize,
    pub nfields: usize,
    table: Matrix,
    gtable: Matrix,
    input_ids: Option<Vec<usize>>,
}

impl Embedding {
    pub fn new(vocab: usize, dim: usize, nfields: usize, rng: &mut impl Rng) -> Self {
        Embedding {
            vocab,
            dim,
            nfields,
            table: Matrix::xavier(vocab, dim, rng),
            gtable: Matrix::zeros(vocab, dim),
            input_ids: None,
        }
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols, self.nfields, "embedding field count");
        let mut out = Matrix::zeros(input.rows, self.nfields * self.dim);
        let mut ids = Vec::with_capacity(input.rows * self.nfields);
        for r in 0..input.rows {
            for f in 0..self.nfields {
                let id = (input.get(r, f).max(0.0) as usize).min(self.vocab - 1);
                ids.push(id);
                let src = self.table.row(id);
                let dst = &mut out.row_mut(r)[f * self.dim..(f + 1) * self.dim];
                dst.copy_from_slice(src);
            }
        }
        self.input_ids = Some(ids);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let ids = self.input_ids.as_ref().expect("backward before forward");
        let rows = grad_out.rows;
        for r in 0..rows {
            for f in 0..self.nfields {
                let id = ids[r * self.nfields + f];
                let g = &grad_out.row(r)[f * self.dim..(f + 1) * self.dim];
                let dst = self.gtable.row_mut(id);
                for (d, gv) in dst.iter_mut().zip(g.iter()) {
                    *d += gv;
                }
            }
        }
        // Ids carry no gradient.
        Matrix::zeros(rows, self.nfields)
    }

    fn params(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.table.data]
    }

    fn grads(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.gtable.data]
    }

    fn zero_grad(&mut self) {
        self.gtable.data.iter_mut().for_each(|v| *v = 0.0);
    }

    fn param_count(&self) -> usize {
        self.table.data.len()
    }

    fn state(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.vocab as u32);
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.nfields as u32);
        put_slice_f32(&mut buf, &self.table.data);
        buf.to_vec()
    }

    fn load_state(&mut self, bytes: &[u8]) {
        let mut buf = bytes;
        let vocab = buf.get_u32_le() as usize;
        let dim = buf.get_u32_le() as usize;
        let nfields = buf.get_u32_le() as usize;
        assert_eq!((vocab, dim, nfields), (self.vocab, self.dim, self.nfields));
        self.table.data = get_vec_f32(&mut buf);
    }

    fn describe(&self) -> String {
        format!(
            "embedding({}x{} over {} fields)",
            self.vocab, self.dim, self.nfields
        )
    }
}

macro_rules! stateless_activation {
    ($name:ident, $fwd:expr, $bwd:expr, $desc:expr) => {
        /// Stateless activation layer.
        #[derive(Default)]
        pub struct $name {
            input: Option<Matrix>,
        }

        impl $name {
            pub fn new() -> Self {
                Self { input: None }
            }
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Matrix) -> Matrix {
                self.input = Some(input.clone());
                input.map($fwd)
            }

            fn backward(&mut self, grad_out: &Matrix) -> Matrix {
                let input = self.input.as_ref().expect("backward before forward");
                let deriv = input.map($bwd);
                grad_out.hadamard(&deriv)
            }

            fn params(&mut self) -> Vec<&mut [f32]> {
                vec![]
            }
            fn grads(&mut self) -> Vec<&mut [f32]> {
                vec![]
            }
            fn zero_grad(&mut self) {}
            fn param_count(&self) -> usize {
                0
            }
            fn state(&self) -> Vec<u8> {
                vec![]
            }
            fn load_state(&mut self, _bytes: &[u8]) {}
            fn describe(&self) -> String {
                $desc.to_string()
            }
        }
    };
}

stateless_activation!(
    Relu,
    |x| if x > 0.0 { x } else { 0.0 },
    |x| if x > 0.0 { 1.0 } else { 0.0 },
    "relu"
);
stateless_activation!(
    Sigmoid,
    |x: f32| 1.0 / (1.0 + (-x).exp()),
    |x: f32| {
        let s = 1.0 / (1.0 + (-x).exp());
        s * (1.0 - s)
    },
    "sigmoid"
);
stateless_activation!(
    Tanh,
    |x: f32| x.tanh(),
    |x: f32| 1.0 - x.tanh().powi(2),
    "tanh"
);

/// Layer normalization over the feature dimension, with learned gain/bias.
pub struct LayerNorm {
    pub dim: usize,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    ggamma: Vec<f32>,
    gbeta: Vec<f32>,
    cache: Option<(Matrix, Vec<f32>, Vec<f32>)>, // normalized x, mean, inv_std
    eps: f32,
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            dim,
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            ggamma: vec![0.0; dim],
            gbeta: vec![0.0; dim],
            cache: None,
            eps: 1e-5,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols, self.dim);
        let mut xhat = Matrix::zeros(input.rows, input.cols);
        let mut means = Vec::with_capacity(input.rows);
        let mut inv_stds = Vec::with_capacity(input.rows);
        let mut out = Matrix::zeros(input.rows, input.cols);
        for r in 0..input.rows {
            let row = input.row(r);
            let mean = row.iter().sum::<f32>() / self.dim as f32;
            let var = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / self.dim as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            means.push(mean);
            inv_stds.push(inv_std);
            for (c, &x) in row.iter().enumerate() {
                let h = (x - mean) * inv_std;
                xhat.set(r, c, h);
                out.set(r, c, h * self.gamma[c] + self.beta[c]);
            }
        }
        self.cache = Some((xhat, means, inv_stds));
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (xhat, _means, inv_stds) = self.cache.as_ref().expect("backward before forward");
        let n = self.dim as f32;
        let mut grad_in = Matrix::zeros(grad_out.rows, grad_out.cols);
        for (r, &inv_std) in inv_stds.iter().enumerate() {
            let g = grad_out.row(r);
            let xh = xhat.row(r);
            // Accumulate param grads.
            for c in 0..self.dim {
                self.ggamma[c] += g[c] * xh[c];
                self.gbeta[c] += g[c];
            }
            // dxhat = g * gamma
            let dxhat: Vec<f32> = (0..self.dim).map(|c| g[c] * self.gamma[c]).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh.iter()).map(|(a, b)| a * b).sum();
            for c in 0..self.dim {
                let v = (dxhat[c] - sum_dxhat / n - xh[c] * sum_dxhat_xhat / n) * inv_std;
                grad_in.set(r, c, v);
            }
        }
        grad_in
    }

    fn params(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&mut self) -> Vec<&mut [f32]> {
        vec![&mut self.ggamma, &mut self.gbeta]
    }

    fn zero_grad(&mut self) {
        self.ggamma.iter_mut().for_each(|v| *v = 0.0);
        self.gbeta.iter_mut().for_each(|v| *v = 0.0);
    }

    fn param_count(&self) -> usize {
        2 * self.dim
    }

    fn state(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.dim as u32);
        put_slice_f32(&mut buf, &self.gamma);
        put_slice_f32(&mut buf, &self.beta);
        buf.to_vec()
    }

    fn load_state(&mut self, bytes: &[u8]) {
        let mut buf = bytes;
        let dim = buf.get_u32_le() as usize;
        assert_eq!(dim, self.dim);
        self.gamma = get_vec_f32(&mut buf);
        self.beta = get_vec_f32(&mut buf);
    }

    fn describe(&self) -> String {
        format!("layernorm({})", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Central-difference gradient check for a layer's input gradient.
    fn grad_check_input(layer: &mut dyn Layer, input: &Matrix) {
        let out = layer.forward(input);
        // Loss = sum of outputs; dL/dy = ones.
        let ones = Matrix::from_vec(out.rows, out.cols, vec![1.0; out.rows * out.cols]);
        let grad_in = layer.backward(&ones);
        let eps = 1e-2f32;
        for i in 0..input.data.len().min(20) {
            let mut plus = input.clone();
            plus.data[i] += eps;
            let mut minus = input.clone();
            minus.data[i] -= eps;
            let fp: f32 = layer.forward(&plus).data.iter().sum();
            let fm: f32 = layer.forward(&minus).data.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grad_in.data[i];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "grad mismatch at {i}: numeric {numeric} vs analytic {analytic} ({})",
                layer.describe()
            );
        }
    }

    #[test]
    fn linear_gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Matrix::xavier(5, 4, &mut rng);
        grad_check_input(&mut l, &x);
    }

    #[test]
    fn linear_weight_gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::xavier(4, 3, &mut rng);
        l.forward(&x);
        let ones = Matrix::from_vec(4, 2, vec![1.0; 8]);
        l.zero_grad();
        l.backward(&ones);
        let analytic = l.gw.clone();
        let eps = 1e-2f32;
        for i in 0..l.w.data.len() {
            let orig = l.w.data[i];
            l.w.data[i] = orig + eps;
            let fp: f32 = l.forward(&x).data.iter().sum();
            l.w.data[i] = orig - eps;
            let fm: f32 = l.forward(&x).data.iter().sum();
            l.w.data[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "weight grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn activations_gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Matrix::xavier(3, 6, &mut rng).scale(2.0);
        grad_check_input(&mut Sigmoid::new(), &x);
        grad_check_input(&mut Tanh::new(), &x);
        // ReLU: keep inputs away from the kink.
        let x_off = x.map(|v| if v.abs() < 0.1 { v + 0.5 } else { v });
        grad_check_input(&mut Relu::new(), &x_off);
    }

    #[test]
    fn layernorm_gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut ln = LayerNorm::new(8);
        let x = Matrix::xavier(4, 8, &mut rng).scale(3.0);
        grad_check_input(&mut ln, &x);
    }

    #[test]
    fn layernorm_normalizes() {
        let mut ln = LayerNorm::new(4);
        let x = Matrix::from_vec(1, 4, vec![10.0, 20.0, 30.0, 40.0]);
        let y = ln.forward(&x);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut e = Embedding::new(10, 4, 2, &mut rng);
        let x = Matrix::from_vec(2, 2, vec![1.0, 3.0, 1.0, 7.0]);
        let y = e.forward(&x);
        assert_eq!((y.rows, y.cols), (2, 8));
        // Row 0 field 0 and row 1 field 0 share id 1 -> identical slices.
        assert_eq!(&y.row(0)[..4], &y.row(1)[..4]);
        let g = Matrix::from_vec(2, 8, vec![1.0; 16]);
        e.backward(&g);
        // Id 1 was used twice -> its gradient row accumulates 2.0 per dim.
        assert!(e.gtable.row(1).iter().all(|v| (*v - 2.0).abs() < 1e-6));
        assert!(e.gtable.row(0).iter().all(|v| *v == 0.0));
    }

    #[test]
    fn embedding_clamps_out_of_vocab() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut e = Embedding::new(4, 2, 1, &mut rng);
        let x = Matrix::from_vec(1, 1, vec![99.0]);
        let y = e.forward(&x); // must not panic
        assert_eq!(y.cols, 2);
    }

    #[test]
    fn state_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut a = Linear::new(5, 3, &mut rng);
        let bytes = a.state();
        let mut b = Linear::new(5, 3, &mut rng);
        b.load_state(&bytes);
        let x = Matrix::xavier(2, 5, &mut rng);
        assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }

    #[test]
    fn param_counts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        assert_eq!(Linear::new(4, 3, &mut rng).param_count(), 15);
        assert_eq!(Embedding::new(10, 4, 2, &mut rng).param_count(), 40);
        assert_eq!(LayerNorm::new(6).param_count(), 12);
        assert_eq!(Relu::new().param_count(), 0);
    }
}

//! # neurdb-nn
//!
//! From-scratch neural-network substrate for NeurDB-RS (the Rust
//! reproduction of the CIDR 2025 NeurDB paper). It replaces the paper's
//! PyTorch runtime with a CPU implementation that is deliberately
//! *layer-oriented*: models are ordered stacks of [`Layer`]s whose weights
//! serialize independently, because the paper's model manager stores,
//! versions, and incrementally updates models **per layer** (Section 4.1).
//!
//! Contents:
//! * [`tensor::Matrix`] — row-major f32 matrices with the needed BLAS-1/3 ops.
//! * [`layer`] — Linear, Embedding, activations, LayerNorm; all gradient-checked.
//! * [`attention`] — multi-head self-attention and cross-attention (for the
//!   learned query optimizer's dual-module model).
//! * [`loss`] / [`optim`] — MSE/BCE/CE and SGD/Adam with clipping & freezing.
//! * [`model`] — [`model::Model`] stacks + [`model::Trainer`] with frozen-prefix
//!   fine-tuning (the incremental-update mechanism).
//! * [`armnet`] — the ARM-Net-style structured-data model used by PREDICT.
//! * [`tree`] — backprop-through-structure plan-tree encoder ("tree transformer").

pub mod armnet;
pub mod attention;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod tensor;
pub mod tree;

pub use armnet::{armnet_finetune_from, armnet_spec, armnet_trainer, encode_batch, ArmNetConfig};
pub use attention::{CrossAttention, MultiHeadAttention};
pub use layer::{Embedding, Layer, LayerNorm, Linear, Relu, Sigmoid, Tanh};
pub use loss::{accuracy, bce_with_logits, binary_accuracy, mse, softmax_cross_entropy};
pub use model::{mlp_spec, LayerSpec, LossKind, Model, Trainer};
pub use optim::{Adam, OptimConfig, Sgd};
pub use tensor::Matrix;
pub use tree::{TreeEncoder, TreeNode, TreeTrace};

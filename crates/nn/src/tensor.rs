//! Dense 2-D tensors (row-major `f32` matrices) and the linear algebra the
//! NN substrate needs. Shapes follow the ML convention used throughout the
//! crate: `rows` = batch / sequence positions, `cols` = features.

use rand::Rng;
use std::fmt;

/// A row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization for a layer with `rows` inputs
    /// and `cols` outputs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — naive ikj matmul (cache-friendly inner loop).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, a) in arow.iter().enumerate() {
                if *a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut s = 0.0;
                for (a, b) in arow.iter().zip(brow.iter()) {
                    s += a * b;
                }
                out.set(i, j, s);
            }
        }
        out
    }

    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    pub fn scale(&self, k: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * k).collect(),
        }
    }

    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| f(*a)).collect(),
        }
    }

    /// Add a row vector (1 × cols) to every row.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols);
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Column-wise sum → length-`cols` vector (used for bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Row-wise softmax, numerically stabilized.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_matmuls_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 5, &mut rng);
        let b = Matrix::xavier(4, 3, &mut rng);
        let via_t = a.transpose().matmul(&b);
        let fused = a.t_matmul(&b);
        for (x, y) in via_t.data.iter().zip(fused.data.iter()) {
            assert!(approx(*x, *y));
        }
        let c = Matrix::xavier(6, 5, &mut rng);
        let via_t2 = a.matmul(&c.transpose());
        let fused2 = a.matmul_t(&c);
        for (x, y) in via_t2.data.iter().zip(fused2.data.iter()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!(approx(sum, 1.0));
        }
        // Large inputs must not overflow to NaN.
        assert!(s.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn broadcast_and_sum() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(b.data, vec![11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.sum_rows(), vec![4.0, 6.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = Matrix::xavier(100, 50, &mut rng);
        let bound = (6.0 / 150.0_f32).sqrt();
        assert!(m.data.iter().all(|x| x.abs() <= bound));
        assert!(m.mean().abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}

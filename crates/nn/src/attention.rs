//! Multi-head self-attention and cross-attention.
//!
//! The learned query optimizer (paper Fig. 5) feeds candidate-plan
//! embeddings and system-condition embeddings through *cross-attention
//! layers* to a unified embedding, then an *analyzer* applies multi-head
//! attention over the candidates. In this crate:
//!
//! * [`MultiHeadAttention`] implements [`Layer`]: rows of the input matrix
//!   are sequence positions (for the analyzer: one row per candidate plan).
//! * [`CrossAttention`] is a two-input module (`queries` attend over
//!   `context`) with explicit forward/backward since the [`Layer`] trait is
//!   single-input.

use crate::layer::Layer;
use crate::tensor::Matrix;
use bytes::{Buf, BufMut, BytesMut};
use rand::Rng;

fn put_mat(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows as u32);
    buf.put_u32_le(m.cols as u32);
    for v in &m.data {
        buf.put_f32_le(*v);
    }
}

fn get_mat(buf: &mut &[u8]) -> Matrix {
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let data = (0..rows * cols).map(|_| buf.get_f32_le()).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Gradient of row-wise softmax: given A = softmax(S) and dL/dA, returns
/// dL/dS = A ∘ (dA - rowsum(dA ∘ A)).
fn softmax_backward(a: &Matrix, da: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, a.cols);
    for r in 0..a.rows {
        let arow = a.row(r);
        let darow = da.row(r);
        let dot: f32 = arow.iter().zip(darow.iter()).map(|(x, y)| x * y).sum();
        for c in 0..a.cols {
            out.set(r, c, arow[c] * (darow[c] - dot));
        }
    }
    out
}

struct HeadCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
}

/// Multi-head self-attention over the rows of the input matrix, with a
/// residual connection (`out = x + attn(x) Wo`).
pub struct MultiHeadAttention {
    pub dim: usize,
    pub heads: usize,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    gq: Matrix,
    gk: Matrix,
    gv: Matrix,
    go: Matrix,
    cache: Option<(Matrix, Vec<HeadCache>, Matrix)>, // input, per-head, concat
}

impl MultiHeadAttention {
    pub fn new(dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(dim.is_multiple_of(heads), "dim must divide heads");
        MultiHeadAttention {
            dim,
            heads,
            wq: Matrix::xavier(dim, dim, rng),
            wk: Matrix::xavier(dim, dim, rng),
            wv: Matrix::xavier(dim, dim, rng),
            wo: Matrix::xavier(dim, dim, rng),
            gq: Matrix::zeros(dim, dim),
            gk: Matrix::zeros(dim, dim),
            gv: Matrix::zeros(dim, dim),
            go: Matrix::zeros(dim, dim),
            cache: None,
        }
    }

    fn head_slice(m: &Matrix, head: usize, dh: usize) -> Matrix {
        let mut out = Matrix::zeros(m.rows, dh);
        for r in 0..m.rows {
            out.row_mut(r)
                .copy_from_slice(&m.row(r)[head * dh..(head + 1) * dh]);
        }
        out
    }

    fn write_head(dst: &mut Matrix, src: &Matrix, head: usize, dh: usize) {
        for r in 0..src.rows {
            dst.row_mut(r)[head * dh..(head + 1) * dh].copy_from_slice(src.row(r));
        }
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols, self.dim);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let qf = input.matmul(&self.wq);
        let kf = input.matmul(&self.wk);
        let vf = input.matmul(&self.wv);
        let mut concat = Matrix::zeros(input.rows, self.dim);
        let mut caches = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let q = Self::head_slice(&qf, h, dh);
            let k = Self::head_slice(&kf, h, dh);
            let v = Self::head_slice(&vf, h, dh);
            let scores = q.matmul_t(&k).scale(scale);
            let attn = scores.softmax_rows();
            let o = attn.matmul(&v);
            Self::write_head(&mut concat, &o, h, dh);
            caches.push(HeadCache { q, k, v, attn });
        }
        let out = input.add(&concat.matmul(&self.wo));
        self.cache = Some((input.clone(), caches, concat));
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (input, caches, concat) = self.cache.as_ref().expect("backward before forward");
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        // out = input + concat @ wo
        let mut grad_in = grad_out.clone(); // residual path
        self.go = self.go.add(&concat.t_matmul(grad_out));
        let dconcat = grad_out.matmul_t(&self.wo);
        let mut dqf = Matrix::zeros(input.rows, self.dim);
        let mut dkf = Matrix::zeros(input.rows, self.dim);
        let mut dvf = Matrix::zeros(input.rows, self.dim);
        for (h, cache) in caches.iter().enumerate() {
            let do_h = Self::head_slice(&dconcat, h, dh);
            // o = attn @ v
            let dattn = do_h.matmul_t(&cache.v);
            let dv = cache.attn.t_matmul(&do_h);
            // attn = softmax(scores)
            let dscores = softmax_backward(&cache.attn, &dattn).scale(scale);
            // scores = q @ k^T
            let dq = dscores.matmul(&cache.k);
            let dk = dscores.t_matmul(&cache.q);
            Self::write_head(&mut dqf, &dq, h, dh);
            Self::write_head(&mut dkf, &dk, h, dh);
            Self::write_head(&mut dvf, &dv, h, dh);
        }
        // qf = input @ wq etc.
        self.gq = self.gq.add(&input.t_matmul(&dqf));
        self.gk = self.gk.add(&input.t_matmul(&dkf));
        self.gv = self.gv.add(&input.t_matmul(&dvf));
        grad_in = grad_in.add(&dqf.matmul_t(&self.wq));
        grad_in = grad_in.add(&dkf.matmul_t(&self.wk));
        grad_in = grad_in.add(&dvf.matmul_t(&self.wv));
        grad_in
    }

    fn params(&mut self) -> Vec<&mut [f32]> {
        vec![
            &mut self.wq.data,
            &mut self.wk.data,
            &mut self.wv.data,
            &mut self.wo.data,
        ]
    }

    fn grads(&mut self) -> Vec<&mut [f32]> {
        vec![
            &mut self.gq.data,
            &mut self.gk.data,
            &mut self.gv.data,
            &mut self.go.data,
        ]
    }

    fn zero_grad(&mut self) {
        for g in [&mut self.gq, &mut self.gk, &mut self.gv, &mut self.go] {
            g.data.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    fn param_count(&self) -> usize {
        4 * self.dim * self.dim
    }

    fn state(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.heads as u32);
        for m in [&self.wq, &self.wk, &self.wv, &self.wo] {
            put_mat(&mut buf, m);
        }
        buf.to_vec()
    }

    fn load_state(&mut self, bytes: &[u8]) {
        let mut buf = bytes;
        let dim = buf.get_u32_le() as usize;
        let heads = buf.get_u32_le() as usize;
        assert_eq!((dim, heads), (self.dim, self.heads));
        self.wq = get_mat(&mut buf);
        self.wk = get_mat(&mut buf);
        self.wv = get_mat(&mut buf);
        self.wo = get_mat(&mut buf);
    }

    fn describe(&self) -> String {
        format!("mha(dim={}, heads={})", self.dim, self.heads)
    }
}

/// Cross-attention: each row of `queries` attends over the rows of
/// `context`. `out = queries + softmax(Q K^T / √d) V @ Wo` where Q comes
/// from `queries` and K, V from `context`.
pub struct CrossAttention {
    pub dim: usize,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    gq: Matrix,
    gk: Matrix,
    gv: Matrix,
    go: Matrix,
    cache: Option<CrossCache>,
}

struct CrossCache {
    queries: Matrix,
    context: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
    mixed: Matrix,
}

impl CrossAttention {
    pub fn new(dim: usize, rng: &mut impl Rng) -> Self {
        CrossAttention {
            dim,
            wq: Matrix::xavier(dim, dim, rng),
            wk: Matrix::xavier(dim, dim, rng),
            wv: Matrix::xavier(dim, dim, rng),
            wo: Matrix::xavier(dim, dim, rng),
            gq: Matrix::zeros(dim, dim),
            gk: Matrix::zeros(dim, dim),
            gv: Matrix::zeros(dim, dim),
            go: Matrix::zeros(dim, dim),
            cache: None,
        }
    }

    /// Forward: `queries` is `nq × dim`, `context` is `nc × dim`.
    pub fn forward(&mut self, queries: &Matrix, context: &Matrix) -> Matrix {
        assert_eq!(queries.cols, self.dim);
        assert_eq!(context.cols, self.dim);
        let scale = 1.0 / (self.dim as f32).sqrt();
        let q = queries.matmul(&self.wq);
        let k = context.matmul(&self.wk);
        let v = context.matmul(&self.wv);
        let attn = q.matmul_t(&k).scale(scale).softmax_rows();
        let mixed = attn.matmul(&v);
        let out = queries.add(&mixed.matmul(&self.wo));
        self.cache = Some(CrossCache {
            queries: queries.clone(),
            context: context.clone(),
            q,
            k,
            v,
            attn,
            mixed,
        });
        out
    }

    /// Backward: returns `(d_queries, d_context)`.
    pub fn backward(&mut self, grad_out: &Matrix) -> (Matrix, Matrix) {
        let c = self.cache.as_ref().expect("backward before forward");
        let scale = 1.0 / (self.dim as f32).sqrt();
        self.go = self.go.add(&c.mixed.t_matmul(grad_out));
        let dmixed = grad_out.matmul_t(&self.wo);
        let dattn = dmixed.matmul_t(&c.v);
        let dv = c.attn.t_matmul(&dmixed);
        let dscores = softmax_backward(&c.attn, &dattn).scale(scale);
        let dq = dscores.matmul(&c.k);
        let dk = dscores.t_matmul(&c.q);
        self.gq = self.gq.add(&c.queries.t_matmul(&dq));
        self.gk = self.gk.add(&c.context.t_matmul(&dk));
        self.gv = self.gv.add(&c.context.t_matmul(&dv));
        let dqueries = grad_out.add(&dq.matmul_t(&self.wq));
        let dcontext = dk.matmul_t(&self.wk).add(&dv.matmul_t(&self.wv));
        (dqueries, dcontext)
    }

    pub fn params(&mut self) -> Vec<&mut [f32]> {
        vec![
            &mut self.wq.data,
            &mut self.wk.data,
            &mut self.wv.data,
            &mut self.wo.data,
        ]
    }

    pub fn grads(&mut self) -> Vec<&mut [f32]> {
        vec![
            &mut self.gq.data,
            &mut self.gk.data,
            &mut self.gv.data,
            &mut self.go.data,
        ]
    }

    pub fn zero_grad(&mut self) {
        for g in [&mut self.gq, &mut self.gk, &mut self.gv, &mut self.go] {
            g.data.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    pub fn param_count(&self) -> usize {
        4 * self.dim * self.dim
    }

    pub fn state(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.dim as u32);
        for m in [&self.wq, &self.wk, &self.wv, &self.wo] {
            put_mat(&mut buf, m);
        }
        buf.to_vec()
    }

    pub fn load_state(&mut self, bytes: &[u8]) {
        let mut buf = bytes;
        let dim = buf.get_u32_le() as usize;
        assert_eq!(dim, self.dim);
        self.wq = get_mat(&mut buf);
        self.wk = get_mat(&mut buf);
        self.wv = get_mat(&mut buf);
        self.wo = get_mat(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mha_shapes_and_residual() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut m = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Matrix::xavier(5, 8, &mut rng);
        let y = m.forward(&x);
        assert_eq!((y.rows, y.cols), (5, 8));
    }

    #[test]
    fn mha_input_gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut m = MultiHeadAttention::new(4, 2, &mut rng);
        let x = Matrix::xavier(3, 4, &mut rng);
        let out = m.forward(&x);
        let ones = Matrix::from_vec(out.rows, out.cols, vec![1.0; out.rows * out.cols]);
        let g = m.backward(&ones);
        let eps = 1e-2f32;
        for i in 0..x.data.len() {
            let mut p = x.clone();
            p.data[i] += eps;
            let mut mm = x.clone();
            mm.data[i] -= eps;
            let fp: f32 = m.forward(&p).data.iter().sum();
            let fm: f32 = m.forward(&mm).data.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - g.data[i]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "mha grad mismatch at {i}: {numeric} vs {}",
                g.data[i]
            );
        }
    }

    #[test]
    fn cross_attention_gradient_check_both_inputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut ca = CrossAttention::new(4, &mut rng);
        let xq = Matrix::xavier(3, 4, &mut rng);
        let xc = Matrix::xavier(5, 4, &mut rng);
        let out = ca.forward(&xq, &xc);
        let ones = Matrix::from_vec(out.rows, out.cols, vec![1.0; out.rows * out.cols]);
        let (dq, dc) = ca.backward(&ones);
        let eps = 1e-2f32;
        for i in 0..xq.data.len() {
            let mut p = xq.clone();
            p.data[i] += eps;
            let mut m = xq.clone();
            m.data[i] -= eps;
            let fp: f32 = ca.forward(&p, &xc).data.iter().sum();
            let fm: f32 = ca.forward(&m, &xc).data.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - dq.data[i]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "query grad mismatch at {i}"
            );
        }
        for i in 0..xc.data.len() {
            let mut p = xc.clone();
            p.data[i] += eps;
            let mut m = xc.clone();
            m.data[i] -= eps;
            let fp: f32 = ca.forward(&xq, &p).data.iter().sum();
            let fm: f32 = ca.forward(&xq, &m).data.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - dc.data[i]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "context grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn state_roundtrip_mha() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let mut a = MultiHeadAttention::new(8, 2, &mut rng);
        let mut b = MultiHeadAttention::new(8, 2, &mut rng);
        b.load_state(&a.state());
        let x = Matrix::xavier(4, 8, &mut rng);
        assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }

    #[test]
    fn cross_attention_mixes_context() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let mut ca = CrossAttention::new(4, &mut rng);
        let xq = Matrix::xavier(2, 4, &mut rng);
        let c1 = Matrix::xavier(3, 4, &mut rng);
        let c2 = c1.scale(5.0);
        let y1 = ca.forward(&xq, &c1);
        let y2 = ca.forward(&xq, &c2);
        assert_ne!(y1.data, y2.data, "different context must change output");
    }
}

//! Optimizers: SGD (with momentum) and Adam.
//!
//! Optimizers operate on `(params, grads)` slice pairs obtained from layers,
//! so they work uniformly for any layer and respect the model manager's
//! layer freezing (frozen layers simply aren't passed in).

/// Configuration shared by optimizers.
#[derive(Debug, Clone, Copy)]
pub struct OptimConfig {
    pub lr: f32,
    /// L2 weight decay; 0 disables.
    pub weight_decay: f32,
    /// Gradient-norm clip; 0 disables.
    pub clip: f32,
}

impl Default for OptimConfig {
    fn default() -> Self {
        OptimConfig {
            lr: 1e-3,
            weight_decay: 0.0,
            clip: 5.0,
        }
    }
}

fn clip_scale(grads: &[&mut [f32]], clip: f32) -> f32 {
    if clip <= 0.0 {
        return 1.0;
    }
    let norm: f32 = grads
        .iter()
        .flat_map(|g| g.iter())
        .map(|v| v * v)
        .sum::<f32>()
        .sqrt();
    if norm > clip {
        clip / norm
    } else {
        1.0
    }
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    pub cfg: OptimConfig,
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(cfg: OptimConfig, momentum: f32) -> Self {
        Sgd {
            cfg,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update step. `params[i]` and `grads[i]` must be parallel
    /// and keep the same shapes across calls.
    pub fn step(&mut self, params: &mut [&mut [f32]], grads: &mut [&mut [f32]]) {
        assert_eq!(params.len(), grads.len());
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        let scale = clip_scale(grads, self.cfg.clip);
        for ((p, g), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.velocity.iter_mut())
        {
            if v.len() != p.len() {
                *v = vec![0.0; p.len()];
            }
            for i in 0..p.len() {
                let grad = g[i] * scale + self.cfg.weight_decay * p[i];
                v[i] = self.momentum * v[i] - self.cfg.lr * grad;
                p[i] += v[i];
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba).
pub struct Adam {
    pub cfg: OptimConfig,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(cfg: OptimConfig) -> Self {
        Adam {
            cfg,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    pub fn step(&mut self, params: &mut [&mut [f32]], grads: &mut [&mut [f32]]) {
        assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let scale = clip_scale(grads, self.cfg.clip);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            if m.len() != p.len() {
                *m = vec![0.0; p.len()];
                *v = vec![0.0; p.len()];
            }
            for i in 0..p.len() {
                let grad = g[i] * scale + self.cfg.weight_decay * p[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad * grad;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= self.cfg.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Reset moment estimates (used when a model is re-assembled from
    /// versioned layers and the old moments no longer correspond).
    pub fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)^2 with each optimizer.
    fn run<F: FnMut(&mut [&mut [f32]], &mut [&mut [f32]])>(mut step: F) -> f32 {
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let mut g = vec![2.0 * (x[0] - 3.0)];
            let mut params: Vec<&mut [f32]> = vec![&mut x];
            let mut grads: Vec<&mut [f32]> = vec![&mut g];
            step(&mut params, &mut grads);
        }
        x[0]
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(
            OptimConfig {
                lr: 0.05,
                ..Default::default()
            },
            0.9,
        );
        let x = run(|p, g| opt.step(p, g));
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(OptimConfig {
            lr: 0.05,
            ..Default::default()
        });
        let x = run(|p, g| opt.step(p, g));
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn clipping_bounds_update() {
        let mut opt = Sgd::new(
            OptimConfig {
                lr: 1.0,
                clip: 1.0,
                ..Default::default()
            },
            0.0,
        );
        let mut x = vec![0.0f32];
        let mut g = vec![1000.0f32];
        let mut params: Vec<&mut [f32]> = vec![&mut x];
        let mut grads: Vec<&mut [f32]> = vec![&mut g];
        opt.step(&mut params, &mut grads);
        assert!(
            (x[0].abs() - 1.0).abs() < 1e-5,
            "clipped step should be lr*clip"
        );
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(
            OptimConfig {
                lr: 0.1,
                weight_decay: 0.5,
                clip: 0.0,
            },
            0.0,
        );
        let mut x = vec![10.0f32];
        let mut g = vec![0.0f32];
        let mut params: Vec<&mut [f32]> = vec![&mut x];
        let mut grads: Vec<&mut [f32]> = vec![&mut g];
        opt.step(&mut params, &mut grads);
        assert!(x[0] < 10.0);
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut opt = Adam::new(OptimConfig::default());
        let mut x = vec![1.0f32];
        let mut g = vec![1.0f32];
        let mut params: Vec<&mut [f32]> = vec![&mut x];
        let mut grads: Vec<&mut [f32]> = vec![&mut g];
        opt.step(&mut params, &mut grads);
        opt.reset();
        assert_eq!(opt.t, 0);
    }
}

//! Property-based tests for the AI engine: layered-version reconstruction
//! and the streaming wire codec.

use neurdb_engine::streaming::DataBatch;
use neurdb_engine::ModelManager;
use neurdb_nn::{mlp_spec, Matrix, Model};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The wire codec round-trips arbitrary batch shapes exactly.
    #[test]
    fn wire_codec_roundtrip(
        rows in 1usize..64,
        cols in 1usize..32,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = DataBatch {
            features: Matrix::xavier(rows, cols, &mut rng),
            targets: Matrix::xavier(rows, 1, &mut rng),
        };
        prop_assert_eq!(DataBatch::decode(&b.encode()), b);
    }

    /// Versioned reconstruction: after an arbitrary sequence of
    /// incremental updates, `layer_states_at(v)` returns, for every layer,
    /// exactly the newest state written at or before v — checked against a
    /// straightforward reference implementation.
    #[test]
    fn layered_versions_match_reference(
        updates in prop::collection::vec(
            (0u32..3, any::<u8>()), // (layer id, byte to poke)
            1..20
        ),
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = mlp_spec(&[3, 4, 2]); // 3 layers: Linear, Relu, Linear
        let model = Model::from_spec(spec.clone(), &mut rng);
        let mm = ModelManager::new();
        let base_states = model.layer_states();
        let (mid, v0) = mm.register(spec, base_states.clone());
        // Reference: per layer, (version, state) history.
        let mut reference: Vec<Vec<(u64, Vec<u8>)>> =
            base_states.iter().map(|s| vec![(v0, s.clone())]).collect();
        let mut versions = vec![v0];
        for (lid, poke) in updates {
            let lid = lid as usize;
            let mut state = reference[lid].last().unwrap().1.clone();
            if state.is_empty() {
                // Activation layers have empty state; writing them is a
                // no-op version-wise but still a valid incremental row.
                let v = mm.save_incremental(mid, vec![(lid as u32, state)]).unwrap();
                reference[lid].push((v, Vec::new()));
                versions.push(v);
                continue;
            }
            let idx = poke as usize % state.len();
            state[idx] ^= 0x5A;
            let v = mm.save_incremental(mid, vec![(lid as u32, state.clone())]).unwrap();
            reference[lid].push((v, state));
            versions.push(v);
        }
        // Every recorded version reconstructs to the reference states.
        for &v in &versions {
            let got = mm.layer_states_at(mid, v).unwrap();
            for (lid, layer_hist) in reference.iter().enumerate() {
                let want = &layer_hist
                    .iter()
                    .rev()
                    .find(|(ts, _)| *ts <= v)
                    .unwrap()
                    .1;
                prop_assert_eq!(&got[lid], want, "layer {} at version {}", lid, v);
            }
        }
        prop_assert_eq!(mm.versions(mid).unwrap().len(), versions.len());
    }

    /// Storage accounting: stored bytes never exceed the naive full-copy
    /// scheme, and savings are in [0, 1).
    #[test]
    fn storage_report_bounds(n_updates in 0usize..12, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = mlp_spec(&[4, 6, 1]);
        let model = Model::from_spec(spec.clone(), &mut rng);
        let mm = ModelManager::new();
        let (mid, _) = mm.register(spec, model.layer_states());
        let last = model.layer_states().pop().unwrap();
        for _ in 0..n_updates {
            mm.save_incremental(mid, vec![(2, last.clone())]).unwrap();
        }
        let r = mm.storage_report();
        prop_assert!(r.stored_bytes <= r.naive_bytes);
        prop_assert!((0.0..1.0).contains(&r.savings()) || r.naive_bytes == 0);
        prop_assert_eq!(r.versions, 1 + n_updates);
    }
}

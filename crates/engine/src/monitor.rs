//! The monitor: detects performance and accuracy anomalies and triggers
//! model adaptation (paper Section 3: "we further implement a monitor to
//! detect unexpected performance or accuracy issues, based on which we
//! trigger automatic and appropriate model adaptation").
//!
//! Two signals are watched:
//! * **accuracy drift** — a windowed loss ratio: if the recent-window mean
//!   loss exceeds `threshold ×` the reference-window mean, data has drifted
//!   and fine-tuning is triggered;
//! * **performance drift** — windowed throughput ratio, for learned system
//!   components (CC/QO) whose "loss" is latency or abort rate.

use std::collections::VecDeque;

/// What the monitor recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// Everything nominal.
    None,
    /// Fine-tune trailing layers (cheap incremental update).
    FineTune,
    /// The drift is severe; retrain from scratch.
    Retrain,
}

/// Configuration of a drift detector.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Window length (observations) for both reference and recent windows.
    pub window: usize,
    /// Recent/reference ratio above which fine-tuning triggers.
    pub finetune_ratio: f64,
    /// Ratio above which full retraining triggers.
    pub retrain_ratio: f64,
    /// Observations to skip after an adaptation before re-arming
    /// (avoids re-triggering while the model is still converging).
    pub cooldown: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: 20,
            finetune_ratio: 1.5,
            retrain_ratio: 4.0,
            cooldown: 20,
        }
    }
}

/// Windowed drift detector over a "badness" signal (loss, latency, abort
/// rate — anything where larger is worse).
#[derive(Debug)]
pub struct DriftMonitor {
    cfg: MonitorConfig,
    reference: VecDeque<f64>,
    recent: VecDeque<f64>,
    cooldown_left: usize,
    triggers: usize,
}

impl DriftMonitor {
    pub fn new(cfg: MonitorConfig) -> Self {
        DriftMonitor {
            cfg,
            reference: VecDeque::with_capacity(cfg.window),
            recent: VecDeque::with_capacity(cfg.window),
            cooldown_left: 0,
            triggers: 0,
        }
    }

    /// Feed one observation; returns the recommended adaptation.
    pub fn observe(&mut self, badness: f64) -> Adaptation {
        if !badness.is_finite() {
            return Adaptation::None;
        }
        // Recent window slides; values leaving it enter the reference
        // window, which also slides.
        self.recent.push_back(badness);
        if self.recent.len() > self.cfg.window {
            let old = self.recent.pop_front().unwrap();
            self.reference.push_back(old);
            if self.reference.len() > self.cfg.window {
                self.reference.pop_front();
            }
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return Adaptation::None;
        }
        if self.reference.len() < self.cfg.window || self.recent.len() < self.cfg.window {
            return Adaptation::None;
        }
        let ref_mean: f64 = self.reference.iter().sum::<f64>() / self.reference.len() as f64;
        let rec_mean: f64 = self.recent.iter().sum::<f64>() / self.recent.len() as f64;
        if ref_mean <= 0.0 {
            return Adaptation::None;
        }
        let ratio = rec_mean / ref_mean;
        if ratio >= self.cfg.retrain_ratio {
            self.arm_cooldown();
            Adaptation::Retrain
        } else if ratio >= self.cfg.finetune_ratio {
            self.arm_cooldown();
            Adaptation::FineTune
        } else {
            Adaptation::None
        }
    }

    fn arm_cooldown(&mut self) {
        self.triggers += 1;
        self.cooldown_left = self.cfg.cooldown;
        // Reset windows so post-adaptation observations form the new
        // reference.
        self.reference.clear();
        self.recent.clear();
    }

    /// Number of adaptations triggered so far.
    pub fn triggers(&self) -> usize {
        self.triggers
    }
}

/// Convenience wrapper watching throughput (larger is better): converts to
/// badness as `1 / max(x, ε)`.
#[derive(Debug)]
pub struct ThroughputMonitor {
    inner: DriftMonitor,
}

impl ThroughputMonitor {
    pub fn new(cfg: MonitorConfig) -> Self {
        ThroughputMonitor {
            inner: DriftMonitor::new(cfg),
        }
    }

    pub fn observe(&mut self, throughput: f64) -> Adaptation {
        self.inner.observe(1.0 / throughput.max(1e-9))
    }

    pub fn triggers(&self) -> usize {
        self.inner.triggers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            window: 10,
            finetune_ratio: 1.5,
            retrain_ratio: 4.0,
            cooldown: 5,
        }
    }

    #[test]
    fn stable_signal_never_triggers() {
        let mut m = DriftMonitor::new(cfg());
        for i in 0..200 {
            let noise = (i % 7) as f64 * 0.01;
            assert_eq!(m.observe(1.0 + noise), Adaptation::None);
        }
        assert_eq!(m.triggers(), 0);
    }

    #[test]
    fn loss_jump_triggers_finetune() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..30 {
            m.observe(1.0);
        }
        let mut fired = None;
        for _ in 0..15 {
            let a = m.observe(2.5);
            if a != Adaptation::None {
                fired = Some(a);
                break;
            }
        }
        assert_eq!(fired, Some(Adaptation::FineTune));
    }

    #[test]
    fn severe_jump_triggers_retrain() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..30 {
            m.observe(0.5);
        }
        // One catastrophic observation pushes the windowed ratio straight
        // past the retrain threshold (windowed mean with a 100x outlier).
        let mut fired = None;
        for _ in 0..15 {
            let a = m.observe(50.0);
            if a != Adaptation::None {
                fired = Some(a);
                break;
            }
        }
        assert_eq!(fired, Some(Adaptation::Retrain));
    }

    #[test]
    fn cooldown_suppresses_immediate_retrigger() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..30 {
            m.observe(1.0);
        }
        let mut first = 0;
        for i in 0..100 {
            if m.observe(3.0) != Adaptation::None {
                first = i;
                break;
            }
        }
        // Immediately after, cooldown + window refill must pass before the
        // next trigger can fire.
        let mut second = None;
        for i in 0..cfg().cooldown + 2 * cfg().window - 1 {
            if m.observe(3.0) != Adaptation::None {
                second = Some(i);
                break;
            }
        }
        assert!(second.is_none() || second.unwrap() > first + cfg().cooldown);
    }

    #[test]
    fn throughput_drop_is_drift() {
        let mut m = ThroughputMonitor::new(cfg());
        for _ in 0..30 {
            m.observe(1000.0);
        }
        let mut fired = false;
        for _ in 0..15 {
            if m.observe(300.0) != Adaptation::None {
                fired = true;
                break;
            }
        }
        assert!(fired, "3.3x throughput drop must trigger adaptation");
    }

    #[test]
    fn nan_is_ignored() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..30 {
            m.observe(1.0);
        }
        assert_eq!(m.observe(f64::NAN), Adaptation::None);
    }
}

//! The model-selection AI operator (paper Section 3: "a query may call
//! the model selection operator (denoted as MSelection) to automatically
//! select the best-suited model for a given prediction task, thereby
//! enhancing accuracy and efficiency").
//!
//! Selection follows the filter-and-refine principle the paper builds on:
//! a cheap *filtering* stage discards models whose input arity cannot
//! serve the task or whose parameter budget exceeds the caller's latency
//! envelope, then a *refinement* stage scores the survivors on a held-out
//! validation batch and returns the best.

use crate::model_manager::{Mid, ModelError, ModelManager};
use neurdb_nn::{bce_with_logits, mse, LayerSpec, LossKind, Matrix};

/// A candidate's refinement score.
#[derive(Debug, Clone)]
pub struct ModelScore {
    pub mid: Mid,
    pub validation_loss: f32,
    pub param_count: usize,
}

/// Constraints applied in the filtering stage.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConstraints {
    /// Required model input width (features of the task).
    pub input_width: usize,
    /// Optional parameter budget (latency envelope); `None` = unbounded.
    pub max_params: Option<usize>,
}

/// Input width a layer stack expects, derived from its first parametric
/// layer.
pub fn spec_input_width(spec: &[LayerSpec]) -> Option<usize> {
    for layer in spec {
        match layer {
            LayerSpec::Linear { inputs, .. } => return Some(*inputs),
            LayerSpec::Embedding { nfields, .. } => return Some(*nfields),
            LayerSpec::LayerNorm { dim } => return Some(*dim),
            LayerSpec::MultiHeadAttention { dim, .. } => return Some(*dim),
            _ => continue,
        }
    }
    None
}

fn spec_param_count(spec: &[LayerSpec]) -> usize {
    spec.iter()
        .map(|l| match l {
            LayerSpec::Linear { inputs, outputs } => inputs * outputs + outputs,
            LayerSpec::Embedding { vocab, dim, .. } => vocab * dim,
            LayerSpec::LayerNorm { dim } => 2 * dim,
            LayerSpec::MultiHeadAttention { dim, .. } => 4 * dim * dim,
            _ => 0,
        })
        .sum()
}

/// Run MSelection over `candidates`: filter by constraints, then score the
/// survivors on `(features, targets)` with `loss` and return them sorted
/// best-first. Errors only if *no* candidate survives filtering.
pub fn mselection(
    manager: &ModelManager,
    candidates: &[Mid],
    constraints: SelectionConstraints,
    loss: LossKind,
    features: &Matrix,
    targets: &Matrix,
) -> Result<Vec<ModelScore>, ModelError> {
    // --- Filtering: structural compatibility + parameter budget ---
    let mut survivors = Vec::new();
    for &mid in candidates {
        let spec = manager.spec(mid)?;
        if spec_input_width(&spec) != Some(constraints.input_width) {
            continue;
        }
        let params = spec_param_count(&spec);
        if let Some(maxp) = constraints.max_params {
            if params > maxp {
                continue;
            }
        }
        survivors.push((mid, params));
    }
    if survivors.is_empty() {
        return Err(ModelError::NoVersionAtOrBefore(0, 0));
    }
    // --- Refinement: validation loss on the held-out batch ---
    let mut scores = Vec::with_capacity(survivors.len());
    for (mid, param_count) in survivors {
        let mut model = manager.materialize_latest(mid)?;
        let pred = model.forward(features);
        let validation_loss = match loss {
            LossKind::Mse => mse(&pred, targets).0,
            LossKind::Bce => bce_with_logits(&pred, targets).0,
            LossKind::CrossEntropy => {
                let labels: Vec<usize> = (0..targets.rows)
                    .map(|r| targets.get(r, 0).max(0.0) as usize)
                    .collect();
                neurdb_nn::softmax_cross_entropy(&pred, &labels).0
            }
        };
        scores.push(ModelScore {
            mid,
            validation_loss,
            param_count,
        });
    }
    scores.sort_by(|a, b| a.validation_loss.total_cmp(&b.validation_loss));
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_nn::{mlp_spec, Model, OptimConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_batch(rng: &mut StdRng, n: usize) -> (Matrix, Matrix) {
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for r in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            x.set(r, 0, a);
            x.set(r, 1, b);
            y.set(r, 0, a + b);
        }
        (x, y)
    }

    /// Register one trained and one untrained model; MSelection must rank
    /// the trained one first.
    #[test]
    fn selects_trained_over_random() {
        let mm = ModelManager::new();
        let mut rng = StdRng::seed_from_u64(1);
        // Trained model.
        let mut trainer = Trainer::new(
            Model::from_spec(mlp_spec(&[2, 8, 1]), &mut rng),
            LossKind::Mse,
            OptimConfig {
                lr: 0.02,
                ..Default::default()
            },
        );
        for _ in 0..300 {
            let (x, y) = toy_batch(&mut rng, 32);
            trainer.train_batch(&x, &y);
        }
        let (good, _) = mm.register(mlp_spec(&[2, 8, 1]), trainer.model.layer_states());
        // Untrained model.
        let fresh = Model::from_spec(mlp_spec(&[2, 8, 1]), &mut rng);
        let (bad, _) = mm.register(mlp_spec(&[2, 8, 1]), fresh.layer_states());
        let (vx, vy) = toy_batch(&mut rng, 128);
        let scores = mselection(
            &mm,
            &[bad, good],
            SelectionConstraints {
                input_width: 2,
                max_params: None,
            },
            LossKind::Mse,
            &vx,
            &vy,
        )
        .unwrap();
        assert_eq!(scores[0].mid, good);
        assert!(scores[0].validation_loss < scores[1].validation_loss);
    }

    /// Filtering removes incompatible input widths and over-budget models.
    #[test]
    fn filtering_stage_prunes() {
        let mm = ModelManager::new();
        let mut rng = StdRng::seed_from_u64(2);
        let narrow = Model::from_spec(mlp_spec(&[2, 4, 1]), &mut rng);
        let (narrow_mid, _) = mm.register(mlp_spec(&[2, 4, 1]), narrow.layer_states());
        let wide = Model::from_spec(mlp_spec(&[3, 4, 1]), &mut rng);
        let (wide_mid, _) = mm.register(mlp_spec(&[3, 4, 1]), wide.layer_states());
        let big = Model::from_spec(mlp_spec(&[2, 256, 1]), &mut rng);
        let (big_mid, _) = mm.register(mlp_spec(&[2, 256, 1]), big.layer_states());
        let (vx, vy) = toy_batch(&mut rng, 16);
        let scores = mselection(
            &mm,
            &[narrow_mid, wide_mid, big_mid],
            SelectionConstraints {
                input_width: 2,
                max_params: Some(1000),
            },
            LossKind::Mse,
            &vx,
            &vy,
        )
        .unwrap();
        // wide_mid filtered (arity), big_mid filtered (params).
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].mid, narrow_mid);
    }

    #[test]
    fn empty_survivor_set_is_error() {
        let mm = ModelManager::new();
        let mut rng = StdRng::seed_from_u64(3);
        let m = Model::from_spec(mlp_spec(&[5, 4, 1]), &mut rng);
        let (mid, _) = mm.register(mlp_spec(&[5, 4, 1]), m.layer_states());
        let (vx, vy) = toy_batch(&mut rng, 4);
        assert!(mselection(
            &mm,
            &[mid],
            SelectionConstraints {
                input_width: 2, // incompatible
                max_params: None,
            },
            LossKind::Mse,
            &vx,
            &vy,
        )
        .is_err());
    }

    #[test]
    fn spec_introspection() {
        assert_eq!(spec_input_width(&mlp_spec(&[7, 3, 1])), Some(7));
        let arm = neurdb_nn::armnet_spec(&neurdb_nn::ArmNetConfig {
            nfields: 22,
            vocab: 64,
            embed_dim: 4,
            hidden: 8,
            outputs: 1,
        });
        assert_eq!(spec_input_width(&arm), Some(22));
        assert!(spec_param_count(&arm) > 0);
    }
}

//! The model manager: layered model storage, model views, versioning, and
//! incremental updates (paper Section 4.1, Fig. 3).
//!
//! Physical representation mirrors the paper's two relations:
//!
//! * **model table** — `(MID, timestamp)` rows: one per model *version*;
//! * **layer table** — `(MID, LID, timestamp, weights)` rows: one per
//!   *stored layer version*.
//!
//! A model version `M_{i,t}` is assembled by taking, for each layer `LID`,
//! the stored weights with the largest timestamp `≤ t` — exactly the
//! formula in Section 4.1. Incremental updates therefore persist only the
//! fine-tuned trailing layers; earlier versions' frozen layers are shared.

use neurdb_nn::{LayerSpec, Model};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;

/// A durable model-manager event, emitted after the in-memory state
/// change commits. The database layer encodes these into WAL records so a
/// crash loses neither trained models nor their version chains.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelEvent {
    /// A new model was registered (version 1, all layers stored).
    Registered {
        mid: Mid,
        ts: VersionTs,
        spec: Vec<LayerSpec>,
        states: Vec<Vec<u8>>,
    },
    /// A full new version was persisted (complete retraining).
    SavedFull {
        mid: Mid,
        ts: VersionTs,
        states: Vec<Vec<u8>>,
    },
    /// An incremental version was persisted (only `changed` layers).
    SavedIncremental {
        mid: Mid,
        ts: VersionTs,
        changed: Vec<(Lid, Vec<u8>)>,
    },
}

/// Receives [`ModelEvent`]s synchronously, before the mutating call
/// returns — so a WAL-backed sink can order the event's log record ahead
/// of anything that observes the new version.
pub type EventSink = Box<dyn Fn(&ModelEvent) + Send + Sync>;

/// Model identifier.
pub type Mid = u64;
/// Layer identifier (index within the model's stack).
pub type Lid = u32;
/// Version timestamp (logical).
pub type VersionTs = u64;

/// Errors from the model manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    UnknownModel(Mid),
    NoVersionAtOrBefore(Mid, VersionTs),
    LayerCountMismatch { expected: usize, got: usize },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownModel(m) => write!(f, "unknown model {m}"),
            ModelError::NoVersionAtOrBefore(m, t) => {
                write!(f, "model {m} has no version at or before t={t}")
            }
            ModelError::LayerCountMismatch { expected, got } => {
                write!(f, "layer count mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

struct ModelEntry {
    spec: Vec<LayerSpec>,
    /// Version timestamps, ascending (the model table).
    versions: Vec<VersionTs>,
    /// The layer table: per LID, `(timestamp, weights)` ascending by ts.
    layers: Vec<Vec<(VersionTs, Vec<u8>)>>,
}

/// Storage accounting the Fig. 3 design exists to improve.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageReport {
    /// Bytes actually stored (shared frozen layers stored once).
    pub stored_bytes: usize,
    /// Bytes a naive full-copy-per-version scheme would store.
    pub naive_bytes: usize,
    /// Number of model versions across all models.
    pub versions: usize,
    /// Number of stored layer rows.
    pub layer_rows: usize,
}

impl StorageReport {
    /// Fraction of naive storage saved by layer sharing.
    pub fn savings(&self) -> f64 {
        if self.naive_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.naive_bytes as f64
        }
    }
}

/// The model manager. Thread-safe; the AI engine shares one instance.
pub struct ModelManager {
    models: RwLock<HashMap<Mid, ModelEntry>>,
    next_mid: RwLock<Mid>,
    clock: RwLock<VersionTs>,
    /// Durability hook; `None` for volatile managers.
    sink: RwLock<Option<EventSink>>,
}

impl Default for ModelManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelManager {
    pub fn new() -> Self {
        ModelManager {
            models: RwLock::new(HashMap::new()),
            next_mid: RwLock::new(1),
            clock: RwLock::new(1),
            sink: RwLock::new(None),
        }
    }

    /// Install the durability sink. Replaces any previous sink; events
    /// fire synchronously from the mutating call.
    pub fn set_event_sink(&self, sink: EventSink) {
        *self.sink.write() = Some(sink);
    }

    fn has_sink(&self) -> bool {
        self.sink.read().is_some()
    }

    fn emit(&self, event: ModelEvent) {
        if let Some(sink) = self.sink.read().as_ref() {
            sink(&event);
        }
    }

    fn next_ts(&self) -> VersionTs {
        let mut c = self.clock.write();
        let t = *c;
        *c += 1;
        t
    }

    /// Register a new model: stores the spec and version 1 with all layers.
    pub fn register(&self, spec: Vec<LayerSpec>, states: Vec<Vec<u8>>) -> (Mid, VersionTs) {
        assert_eq!(spec.len(), states.len(), "spec/state length mismatch");
        let mid = {
            let mut n = self.next_mid.write();
            let m = *n;
            *n += 1;
            m
        };
        let ts = self.next_ts();
        // Only pay for the event's full-weight copies when a sink exists.
        let event = self.has_sink().then(|| ModelEvent::Registered {
            mid,
            ts,
            spec: spec.clone(),
            states: states.clone(),
        });
        let layers = states.into_iter().map(|s| vec![(ts, s)]).collect();
        let mut models = self.models.write();
        models.insert(
            mid,
            ModelEntry {
                spec,
                versions: vec![ts],
                layers,
            },
        );
        // Emit while still holding the write lock: the event's log record
        // must be ordered before any other version mutation of this store
        // becomes visible, or replay order could diverge from chain order.
        if let Some(event) = event {
            self.emit(event);
        }
        drop(models);
        (mid, ts)
    }

    /// Persist a **full** new version (every layer re-stored). This is what
    /// complete retraining produces.
    pub fn save_full(&self, mid: Mid, states: Vec<Vec<u8>>) -> Result<VersionTs, ModelError> {
        let ts = self.next_ts();
        {
            let mut models = self.models.write();
            let entry = models.get_mut(&mid).ok_or(ModelError::UnknownModel(mid))?;
            if states.len() != entry.layers.len() {
                return Err(ModelError::LayerCountMismatch {
                    expected: entry.layers.len(),
                    got: states.len(),
                });
            }
            let event = self.has_sink().then(|| ModelEvent::SavedFull {
                mid,
                ts,
                states: states.clone(),
            });
            for (lid, s) in states.into_iter().enumerate() {
                entry.layers[lid].push((ts, s));
            }
            entry.versions.push(ts);
            // Emit under the write lock (see `register`).
            if let Some(event) = event {
                self.emit(event);
            }
        }
        Ok(ts)
    }

    /// Persist an **incremental** new version: only `changed` layers (LID,
    /// weights) are stored; all other layers are inherited from earlier
    /// versions (Fig. 3's layer sharing).
    pub fn save_incremental(
        &self,
        mid: Mid,
        changed: Vec<(Lid, Vec<u8>)>,
    ) -> Result<VersionTs, ModelError> {
        let ts = self.next_ts();
        {
            let mut models = self.models.write();
            let entry = models.get_mut(&mid).ok_or(ModelError::UnknownModel(mid))?;
            for (lid, _) in &changed {
                if *lid as usize >= entry.layers.len() {
                    return Err(ModelError::LayerCountMismatch {
                        expected: entry.layers.len(),
                        got: *lid as usize + 1,
                    });
                }
            }
            let event = self.has_sink().then(|| ModelEvent::SavedIncremental {
                mid,
                ts,
                changed: changed.clone(),
            });
            for (lid, s) in changed {
                entry.layers[lid as usize].push((ts, s));
            }
            entry.versions.push(ts);
            // Emit under the write lock (see `register`).
            if let Some(event) = event {
                self.emit(event);
            }
        }
        Ok(ts)
    }

    /// Re-apply a logged event during crash recovery, preserving the
    /// original model id and version timestamp. Does not emit events (the
    /// sink is installed after replay finishes). Idempotent: an event
    /// whose model/version already exists is skipped, because an event
    /// can legitimately be captured in a checkpoint snapshot *and* sit
    /// after the checkpoint LSN in the log (its record is appended
    /// outside the checkpoint quiesce latch). Replay in log order.
    pub fn apply_replay(&self, event: ModelEvent) -> Result<(), ModelError> {
        match event {
            ModelEvent::Registered {
                mid,
                ts,
                spec,
                states,
            } => {
                if self.models.read().contains_key(&mid) {
                    return Ok(()); // already in the snapshot
                }
                let layers = states.into_iter().map(|s| vec![(ts, s)]).collect();
                self.models.write().insert(
                    mid,
                    ModelEntry {
                        spec,
                        versions: vec![ts],
                        layers,
                    },
                );
                self.bump_counters(mid, ts);
                Ok(())
            }
            ModelEvent::SavedFull { mid, ts, states } => {
                let mut models = self.models.write();
                let entry = models.get_mut(&mid).ok_or(ModelError::UnknownModel(mid))?;
                if entry.versions.contains(&ts) {
                    return Ok(()); // already in the snapshot
                }
                if states.len() != entry.layers.len() {
                    return Err(ModelError::LayerCountMismatch {
                        expected: entry.layers.len(),
                        got: states.len(),
                    });
                }
                for (lid, s) in states.into_iter().enumerate() {
                    entry.layers[lid].push((ts, s));
                }
                entry.versions.push(ts);
                drop(models);
                self.bump_counters(mid, ts);
                Ok(())
            }
            ModelEvent::SavedIncremental { mid, ts, changed } => {
                let mut models = self.models.write();
                let entry = models.get_mut(&mid).ok_or(ModelError::UnknownModel(mid))?;
                if entry.versions.contains(&ts) {
                    return Ok(()); // already in the snapshot
                }
                for (lid, s) in changed {
                    let lid = lid as usize;
                    if lid >= entry.layers.len() {
                        return Err(ModelError::LayerCountMismatch {
                            expected: entry.layers.len(),
                            got: lid + 1,
                        });
                    }
                    entry.layers[lid].push((ts, s));
                }
                entry.versions.push(ts);
                drop(models);
                self.bump_counters(mid, ts);
                Ok(())
            }
        }
    }

    fn bump_counters(&self, mid: Mid, ts: VersionTs) {
        let mut n = self.next_mid.write();
        *n = (*n).max(mid + 1);
        drop(n);
        let mut c = self.clock.write();
        *c = (*c).max(ts + 1);
    }

    /// Latest version timestamp of a model.
    pub fn latest_version(&self, mid: Mid) -> Result<VersionTs, ModelError> {
        let models = self.models.read();
        let entry = models.get(&mid).ok_or(ModelError::UnknownModel(mid))?;
        entry
            .versions
            .last()
            .copied()
            .ok_or(ModelError::NoVersionAtOrBefore(mid, 0))
    }

    /// All version timestamps of a model.
    pub fn versions(&self, mid: Mid) -> Result<Vec<VersionTs>, ModelError> {
        let models = self.models.read();
        let entry = models.get(&mid).ok_or(ModelError::UnknownModel(mid))?;
        Ok(entry.versions.clone())
    }

    /// The model's layer spec.
    pub fn spec(&self, mid: Mid) -> Result<Vec<LayerSpec>, ModelError> {
        let models = self.models.read();
        let entry = models.get(&mid).ok_or(ModelError::UnknownModel(mid))?;
        Ok(entry.spec.clone())
    }

    /// Assemble the layer states of `M_{mid, t}`: for each layer, the
    /// weights with the largest timestamp `≤ t`.
    pub fn layer_states_at(&self, mid: Mid, t: VersionTs) -> Result<Vec<Vec<u8>>, ModelError> {
        let models = self.models.read();
        let entry = models.get(&mid).ok_or(ModelError::UnknownModel(mid))?;
        if !entry.versions.iter().any(|v| *v <= t) {
            return Err(ModelError::NoVersionAtOrBefore(mid, t));
        }
        let mut out = Vec::with_capacity(entry.layers.len());
        for layer_versions in &entry.layers {
            let state = layer_versions
                .iter()
                .rev()
                .find(|(ts, _)| *ts <= t)
                .map(|(_, s)| s.clone())
                .ok_or(ModelError::NoVersionAtOrBefore(mid, t))?;
            out.push(state);
        }
        Ok(out)
    }

    /// Materialize an executable [`Model`] at version `t` (a *model view*
    /// in the paper's terms). The architecture comes from the stored spec;
    /// weights are loaded per layer. `seed` only affects transient init
    /// before weights are overwritten.
    pub fn materialize(&self, mid: Mid, t: VersionTs) -> Result<Model, ModelError> {
        let spec = self.spec(mid)?;
        let states = self.layer_states_at(mid, t)?;
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Model::from_spec(spec, &mut rng);
        model.load_states(&states);
        Ok(model)
    }

    /// Materialize the latest version.
    pub fn materialize_latest(&self, mid: Mid) -> Result<Model, ModelError> {
        let t = self.latest_version(mid)?;
        self.materialize(mid, t)
    }

    /// Storage accounting across all models.
    pub fn storage_report(&self) -> StorageReport {
        let models = self.models.read();
        let mut r = StorageReport::default();
        for entry in models.values() {
            r.versions += entry.versions.len();
            let full_size: usize = entry
                .layers
                .iter()
                .filter_map(|lv| lv.last().map(|(_, s)| s.len()))
                .sum();
            r.naive_bytes += full_size * entry.versions.len();
            for lv in &entry.layers {
                for (_, s) in lv {
                    r.stored_bytes += s.len();
                    r.layer_rows += 1;
                }
            }
        }
        r
    }

    pub fn num_models(&self) -> usize {
        self.models.read().len()
    }

    /// Serialize the full store — specs, version chains, layer rows, and
    /// id counters — for a durability checkpoint. Layout (all LE):
    /// `[next_mid u64][clock u64][n_models u32]` then per model
    /// `[mid u64][spec_stack][n_versions u32][ts u64...]` followed by per
    /// layer `[n_rows u32]([ts u64][len u32][bytes])...`.
    pub fn snapshot(&self) -> Vec<u8> {
        fn put_u32(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let models = self.models.read();
        let mut out = Vec::new();
        put_u64(&mut out, *self.next_mid.read());
        put_u64(&mut out, *self.clock.read());
        put_u32(&mut out, models.len() as u32);
        // Sorted for deterministic snapshots.
        let mut mids: Vec<Mid> = models.keys().copied().collect();
        mids.sort_unstable();
        for mid in mids {
            let entry = &models[&mid];
            put_u64(&mut out, mid);
            let spec = LayerSpec::encode_stack(&entry.spec);
            put_u32(&mut out, spec.len() as u32);
            out.extend_from_slice(&spec);
            put_u32(&mut out, entry.versions.len() as u32);
            for v in &entry.versions {
                put_u64(&mut out, *v);
            }
            put_u32(&mut out, entry.layers.len() as u32);
            for rows in &entry.layers {
                put_u32(&mut out, rows.len() as u32);
                for (ts, s) in rows {
                    put_u64(&mut out, *ts);
                    put_u32(&mut out, s.len() as u32);
                    out.extend_from_slice(s);
                }
            }
        }
        out
    }

    /// Rebuild the store from a [`ModelManager::snapshot`] blob,
    /// replacing all current state. `None` on malformed input.
    pub fn restore(&self, bytes: &[u8]) -> Option<()> {
        struct R<'a>(&'a [u8]);
        impl R<'_> {
            fn u32(&mut self) -> Option<u32> {
                let (head, rest) = self.0.split_at_checked(4)?;
                self.0 = rest;
                Some(u32::from_le_bytes(head.try_into().ok()?))
            }
            fn u64(&mut self) -> Option<u64> {
                let (head, rest) = self.0.split_at_checked(8)?;
                self.0 = rest;
                Some(u64::from_le_bytes(head.try_into().ok()?))
            }
            fn bytes(&mut self, n: usize) -> Option<&[u8]> {
                let (head, rest) = self.0.split_at_checked(n)?;
                self.0 = rest;
                Some(head)
            }
        }
        let mut r = R(bytes);
        let next_mid = r.u64()?;
        let clock = r.u64()?;
        let n_models = r.u32()? as usize;
        let mut map = HashMap::with_capacity(n_models);
        for _ in 0..n_models {
            let mid = r.u64()?;
            let spec_len = r.u32()? as usize;
            let spec = LayerSpec::decode_stack(r.bytes(spec_len)?)?;
            let n_versions = r.u32()? as usize;
            let mut versions = Vec::with_capacity(n_versions);
            for _ in 0..n_versions {
                versions.push(r.u64()?);
            }
            let n_layers = r.u32()? as usize;
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                let n_rows = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let ts = r.u64()?;
                    let len = r.u32()? as usize;
                    rows.push((ts, r.bytes(len)?.to_vec()));
                }
                layers.push(rows);
            }
            map.insert(
                mid,
                ModelEntry {
                    spec,
                    versions,
                    layers,
                },
            );
        }
        *self.models.write() = map;
        *self.next_mid.write() = next_mid;
        *self.clock.write() = clock;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_nn::{mlp_spec, Matrix};

    fn fresh_model() -> (Vec<LayerSpec>, Model) {
        let spec = mlp_spec(&[3, 8, 1]);
        let mut rng = StdRng::seed_from_u64(99);
        let model = Model::from_spec(spec.clone(), &mut rng);
        (spec, model)
    }

    #[test]
    fn register_and_materialize_roundtrip() {
        let mm = ModelManager::new();
        let (spec, mut model) = fresh_model();
        let (mid, ts) = mm.register(spec, model.layer_states());
        let mut restored = mm.materialize(mid, ts).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::xavier(4, 3, &mut rng);
        assert_eq!(model.forward(&x).data, restored.forward(&x).data);
    }

    #[test]
    fn incremental_version_shares_frozen_layers() {
        let mm = ModelManager::new();
        let (spec, model) = fresh_model();
        let (mid, v1) = mm.register(spec.clone(), model.layer_states());
        // Fine-tune: only the last layer changes.
        let mut rng = StdRng::seed_from_u64(7);
        let fresh = Model::from_spec(spec, &mut rng);
        let new_last = fresh.layer_states().pop().unwrap();
        let last_lid = (model.num_layers() - 1) as Lid;
        let v2 = mm
            .save_incremental(mid, vec![(last_lid, new_last.clone())])
            .unwrap();
        assert!(v2 > v1);
        // v2 = frozen prefix of v1 + new last layer.
        let s1 = mm.layer_states_at(mid, v1).unwrap();
        let s2 = mm.layer_states_at(mid, v2).unwrap();
        assert_eq!(s1[0], s2[0], "frozen layer shared");
        assert_eq!(s2.last().unwrap(), &new_last);
        assert_ne!(s1.last().unwrap(), s2.last().unwrap());
    }

    #[test]
    fn old_versions_stay_reconstructible() {
        let mm = ModelManager::new();
        let (spec, model) = fresh_model();
        let (mid, v1) = mm.register(spec, model.layer_states());
        let orig_last = model.layer_states().pop().unwrap();
        for i in 0..5 {
            let mut changed = model.layer_states().pop().unwrap();
            changed[8] = i as u8; // mutate one weight byte
            mm.save_incremental(mid, vec![(2, changed)]).unwrap();
        }
        let s1 = mm.layer_states_at(mid, v1).unwrap();
        assert_eq!(
            s1.last().unwrap(),
            &orig_last,
            "v1 unchanged by later versions"
        );
        assert_eq!(mm.versions(mid).unwrap().len(), 6);
    }

    #[test]
    fn storage_savings_from_incremental_updates() {
        let mm = ModelManager::new();
        let (spec, model) = fresh_model();
        let (mid, _) = mm.register(spec, model.layer_states());
        let last = model.layer_states().pop().unwrap();
        for _ in 0..9 {
            mm.save_incremental(mid, vec![(2, last.clone())]).unwrap();
        }
        let r = mm.storage_report();
        assert_eq!(r.versions, 10);
        // The big first linear layer is stored once; naive stores it 10x.
        assert!(
            r.savings() > 0.5,
            "expected >50% savings, got {:.2}",
            r.savings()
        );
    }

    #[test]
    fn errors() {
        let mm = ModelManager::new();
        assert_eq!(
            mm.materialize(42, 1).unwrap_err(),
            ModelError::UnknownModel(42)
        );
        let (spec, model) = fresh_model();
        let (mid, v1) = mm.register(spec, model.layer_states());
        assert!(mm.layer_states_at(mid, v1 - 1).is_err());
        assert!(mm.save_incremental(mid, vec![(99, vec![])]).is_err());
        assert!(mm.save_full(mid, vec![vec![]]).is_err());
    }

    #[test]
    fn version_query_semantics_match_paper_formula() {
        // Fig. 3 example: M1 v2 assembled from layers {L1@t1.., Ln@t2}.
        let mm = ModelManager::new();
        let (spec, model) = fresh_model();
        let (mid, v1) = mm.register(spec, model.layer_states());
        let mut new_last = model.layer_states().pop().unwrap();
        new_last[8] ^= 0xFF;
        let v2 = mm.save_incremental(mid, vec![(2, new_last)]).unwrap();
        // Query strictly between v1 and v2 resolves to v1's layers.
        let mid_ts = (v1 + v2) / 2;
        if mid_ts > v1 && mid_ts < v2 {
            let s = mm.layer_states_at(mid, mid_ts).unwrap();
            assert_eq!(s, mm.layer_states_at(mid, v1).unwrap());
        }
    }
}

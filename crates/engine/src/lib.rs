//! # neurdb-engine
//!
//! The in-database AI ecosystem of NeurDB-RS (paper Section 4.1): the AI
//! engine with its task manager and dispatchers, the data streaming
//! protocol between database and AI runtimes, the model manager with
//! layered model storage / versioning / incremental updates (Fig. 3), and
//! the monitor that detects drift and triggers adaptation.
//!
//! ```
//! use neurdb_engine::{AiEngine, streaming::{stream_from_source, Handshake, StreamParams, DataBatch}};
//! use neurdb_nn::{mlp_spec, LossKind, Matrix};
//!
//! let engine = AiEngine::new();
//! let batches = (0..4).map(|_| DataBatch {
//!     features: Matrix::from_vec(8, 2, vec![0.1; 16]),
//!     targets: Matrix::from_vec(8, 1, vec![0.2; 8]),
//! });
//! let hs = Handshake { model_descriptor: "mlp".into(), params: StreamParams { batch_size: 8, window: 2 } };
//! let (rx, h) = stream_from_source(&hs, batches);
//! let out = engine.train_streaming(mlp_spec(&[2, 4, 1]), LossKind::Mse, 0.01, rx);
//! h.join().unwrap();
//! assert_eq!(out.samples, 32);
//! ```

pub mod engine;
pub mod model_manager;
pub mod monitor;
pub mod mselection;
pub mod streaming;

pub use engine::{batch_load_then_train, AiEngine, AiTask, TaskManager, TaskResult, TrainOutcome};
pub use model_manager::{
    EventSink, Lid, Mid, ModelError, ModelEvent, ModelManager, StorageReport, VersionTs,
};
pub use monitor::{Adaptation, DriftMonitor, MonitorConfig, ThroughputMonitor};
pub use mselection::{mselection, ModelScore, SelectionConstraints};
pub use streaming::{
    open_stream, stream_from_source, DataBatch, Handshake, StreamParams, StreamReceiver,
    StreamSender,
};

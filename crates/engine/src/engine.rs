//! The AI engine: task manager, dispatchers, and AI runtimes
//! (paper Section 4.1, Fig. 2).
//!
//! The task manager accepts AI tasks (training / fine-tuning / inference),
//! creates a *dispatcher* per task, and hands execution to an *AI runtime*.
//! Dispatchers stream data to runtimes through the
//! [streaming protocol](crate::streaming); fine-tuning runs with a frozen
//! layer prefix and persists only the updated trailing layers through the
//! [model manager](crate::model_manager) — the incremental update of
//! Fig. 3.

use crate::model_manager::{Mid, ModelManager, VersionTs};
use crate::streaming::{DataBatch, StreamReceiver};
use crossbeam::channel::{unbounded, Receiver, Sender};
use neurdb_nn::{LayerSpec, LossKind, Matrix, Model, OptimConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Outcome of a training or fine-tuning task.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    pub mid: Mid,
    pub version: VersionTs,
    /// Per-batch training losses, in arrival order.
    pub losses: Vec<f32>,
    /// Total samples consumed.
    pub samples: usize,
    /// Wall-clock seconds spent inside `train_batch` (compute).
    pub compute_seconds: f64,
    /// Wall-clock seconds spent waiting for data (stream stalls).
    pub wait_seconds: f64,
    /// End-to-end seconds for the task.
    pub total_seconds: f64,
}

impl TrainOutcome {
    /// Training throughput in samples/second over the whole task.
    pub fn throughput(&self) -> f64 {
        self.samples as f64 / self.total_seconds.max(1e-9)
    }
}

/// The AI engine. Shares a [`ModelManager`]; spawns runtimes on demand.
pub struct AiEngine {
    pub models: Arc<ModelManager>,
    rng_seed: AtomicU64,
}

impl Default for AiEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AiEngine {
    pub fn new() -> Self {
        AiEngine {
            models: Arc::new(ModelManager::new()),
            rng_seed: AtomicU64::new(0xA1EC05),
        }
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.rng_seed.fetch_add(1, Ordering::Relaxed))
    }

    /// **Training task** over a data stream: the runtime trains while the
    /// dispatcher keeps streaming (pipelined). Registers the final model
    /// and returns the outcome.
    pub fn train_streaming(
        &self,
        spec: Vec<LayerSpec>,
        loss: LossKind,
        lr: f32,
        mut rx: StreamReceiver,
    ) -> TrainOutcome {
        let start = Instant::now();
        let mut rng = self.rng();
        let model = Model::from_spec(spec.clone(), &mut rng);
        let mut trainer = Trainer::new(
            model,
            loss,
            OptimConfig {
                lr,
                ..Default::default()
            },
        );
        let (losses, samples, compute, wait) = Self::consume(&mut trainer, &mut rx);
        let (mid, version) = self.models.register(spec, trainer.model.layer_states());
        TrainOutcome {
            mid,
            version,
            losses,
            samples,
            compute_seconds: compute,
            wait_seconds: wait,
            total_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// **Fine-tuning task**: materialize the latest version, freeze the
    /// first `frozen_prefix` layers, train on the stream, persist only the
    /// updated trailing layers (incremental version).
    pub fn finetune_streaming(
        &self,
        mid: Mid,
        loss: LossKind,
        lr: f32,
        frozen_prefix: usize,
        mut rx: StreamReceiver,
    ) -> Result<TrainOutcome, crate::model_manager::ModelError> {
        let start = Instant::now();
        let model = self.models.materialize_latest(mid)?;
        let n_layers = model.num_layers();
        let mut trainer = Trainer::new(
            model,
            loss,
            OptimConfig {
                lr,
                ..Default::default()
            },
        );
        trainer.set_frozen_prefix(frozen_prefix.min(n_layers));
        let (losses, samples, compute, wait) = Self::consume(&mut trainer, &mut rx);
        let states = trainer.model.layer_states();
        let changed: Vec<(u32, Vec<u8>)> = (frozen_prefix..n_layers)
            .map(|lid| (lid as u32, states[lid].clone()))
            .collect();
        let version = self.models.save_incremental(mid, changed)?;
        Ok(TrainOutcome {
            mid,
            version,
            losses,
            samples,
            compute_seconds: compute,
            wait_seconds: wait,
            total_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// **Inference task**: run the latest model version on `features`.
    pub fn infer(
        &self,
        mid: Mid,
        features: &Matrix,
    ) -> Result<Matrix, crate::model_manager::ModelError> {
        let mut model = self.models.materialize_latest(mid)?;
        Ok(model.forward(features))
    }

    /// **Inference at a version** (time travel over model views).
    pub fn infer_at(
        &self,
        mid: Mid,
        version: VersionTs,
        features: &Matrix,
    ) -> Result<Matrix, crate::model_manager::ModelError> {
        let mut model = self.models.materialize(mid, version)?;
        Ok(model.forward(features))
    }

    /// Shared consume loop: pulls batches, measuring stall vs compute time.
    fn consume(trainer: &mut Trainer, rx: &mut StreamReceiver) -> (Vec<f32>, usize, f64, f64) {
        let mut losses = Vec::new();
        let mut samples = 0usize;
        let mut compute = 0.0;
        let mut wait = 0.0;
        loop {
            let t0 = Instant::now();
            let Some(batch) = rx.recv() else { break };
            wait += t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let l = trainer.train_batch(&batch.features, &batch.targets);
            compute += t1.elapsed().as_secs_f64();
            samples += batch.rows();
            losses.push(l);
        }
        (losses, samples, compute, wait)
    }
}

/// A queued AI task for the [`TaskManager`].
pub struct AiTask {
    /// Human-readable description ("train avazu", "finetune mid=3"...).
    pub label: String,
    /// The work itself.
    pub run: Box<dyn FnOnce() -> TaskResult + Send>,
}

/// Result of a managed task.
#[derive(Debug, Clone)]
pub struct TaskResult {
    pub label: String,
    pub seconds: f64,
    /// Task-defined scalar outcome (final loss, accuracy, ...).
    pub metric: f64,
}

/// The task manager: a dispatcher pool executing queued AI tasks on worker
/// threads ("the task manager coordinates and schedules the tasks and
/// resources ... creates a dispatcher for each task", Fig. 2).
pub struct TaskManager {
    tx: Option<Sender<AiTask>>,
    results_rx: Receiver<TaskResult>,
    workers: Vec<JoinHandle<()>>,
    submitted: AtomicU64,
}

impl TaskManager {
    /// Spawn a manager with `dispatchers` worker threads.
    pub fn new(dispatchers: usize) -> Self {
        let (tx, rx) = unbounded::<AiTask>();
        let (res_tx, results_rx) = unbounded::<TaskResult>();
        let workers = (0..dispatchers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let res_tx = res_tx.clone();
                std::thread::spawn(move || {
                    while let Ok(task) = rx.recv() {
                        let start = Instant::now();
                        let mut result = (task.run)();
                        result.seconds = start.elapsed().as_secs_f64();
                        if res_tx.send(result).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        TaskManager {
            tx: Some(tx),
            results_rx,
            workers,
            submitted: AtomicU64::new(0),
        }
    }

    /// Queue a task.
    pub fn submit(&self, task: AiTask) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .as_ref()
            .expect("task manager shut down")
            .send(task)
            .expect("workers alive");
    }

    /// Wait for all submitted tasks and collect their results.
    pub fn drain(&self) -> Vec<TaskResult> {
        let n = self.submitted.swap(0, Ordering::Relaxed);
        (0..n)
            .map(|_| self.results_rx.recv().expect("worker delivered result"))
            .collect()
    }
}

impl Drop for TaskManager {
    fn drop(&mut self) {
        self.tx.take(); // close the queue
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The PostgreSQL+P baseline path: load **all** batches first (paying a
/// full serialize→copy→deserialize round per batch, as a client-protocol
/// export does), then train — no pipelining, peak memory holds the whole
/// dataset (paper Section 5.1.2).
pub fn batch_load_then_train(
    engine: &AiEngine,
    spec: Vec<LayerSpec>,
    loss: LossKind,
    lr: f32,
    source: impl Iterator<Item = DataBatch>,
) -> TrainOutcome {
    let start = Instant::now();
    // Phase 1: bulk export. Extra encode/decode models the wire format +
    // driver parse that an out-of-database runtime pays.
    let t0 = Instant::now();
    let staged: Vec<DataBatch> = source
        .map(|b| {
            let wire = b.encode();
            let parsed = DataBatch::decode(&wire);
            let wire2 = parsed.encode(); // driver -> tensor copy
            DataBatch::decode(&wire2)
        })
        .collect();
    let wait = t0.elapsed().as_secs_f64();
    // Phase 2: train.
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    let model = Model::from_spec(spec.clone(), &mut rng);
    let mut trainer = Trainer::new(
        model,
        loss,
        OptimConfig {
            lr,
            ..Default::default()
        },
    );
    let mut losses = Vec::new();
    let mut samples = 0;
    let t1 = Instant::now();
    for b in &staged {
        losses.push(trainer.train_batch(&b.features, &b.targets));
        samples += b.rows();
    }
    let compute = t1.elapsed().as_secs_f64();
    let (mid, version) = engine.models.register(spec, trainer.model.layer_states());
    TrainOutcome {
        mid,
        version,
        losses,
        samples,
        compute_seconds: compute,
        wait_seconds: wait,
        total_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::{stream_from_source, Handshake, StreamParams};
    use neurdb_nn::mlp_spec;

    fn toy_batches(n: usize, rows: usize) -> Vec<DataBatch> {
        // y = x0 - x1
        (0..n)
            .map(|b| {
                let mut f = Matrix::zeros(rows, 2);
                let mut t = Matrix::zeros(rows, 1);
                for r in 0..rows {
                    let a = ((b * rows + r) % 17) as f32 / 17.0 - 0.5;
                    let c = ((b * rows + r) % 13) as f32 / 13.0 - 0.5;
                    f.set(r, 0, a);
                    f.set(r, 1, c);
                    t.set(r, 0, a - c);
                }
                DataBatch {
                    features: f,
                    targets: t,
                }
            })
            .collect()
    }

    fn handshake() -> Handshake {
        Handshake {
            model_descriptor: "mlp".into(),
            params: StreamParams {
                batch_size: 32,
                window: 8,
            },
        }
    }

    #[test]
    fn streaming_training_learns_and_registers() {
        let engine = AiEngine::new();
        let (rx, h) = stream_from_source(&handshake(), toy_batches(60, 32).into_iter());
        let out = engine.train_streaming(mlp_spec(&[2, 16, 1]), LossKind::Mse, 0.01, rx);
        h.join().unwrap();
        assert_eq!(out.samples, 60 * 32);
        assert!(out.losses.last().unwrap() < &(out.losses[0] * 0.5));
        assert_eq!(engine.models.num_models(), 1);
    }

    #[test]
    fn finetune_creates_incremental_version() {
        let engine = AiEngine::new();
        let (rx, h) = stream_from_source(&handshake(), toy_batches(30, 32).into_iter());
        let out = engine.train_streaming(mlp_spec(&[2, 8, 1]), LossKind::Mse, 0.01, rx);
        h.join().unwrap();
        let (rx2, h2) = stream_from_source(&handshake(), toy_batches(10, 32).into_iter());
        let ft = engine
            .finetune_streaming(out.mid, LossKind::Mse, 0.01, 2, rx2)
            .unwrap();
        h2.join().unwrap();
        assert!(ft.version > out.version);
        // Frozen layer 0 shared between versions.
        let s1 = engine.models.layer_states_at(out.mid, out.version).unwrap();
        let s2 = engine.models.layer_states_at(out.mid, ft.version).unwrap();
        assert_eq!(s1[0], s2[0]);
        assert_ne!(s1[2], s2[2]);
    }

    #[test]
    fn inference_and_time_travel() {
        let engine = AiEngine::new();
        let (rx, h) = stream_from_source(&handshake(), toy_batches(40, 32).into_iter());
        let out = engine.train_streaming(mlp_spec(&[2, 8, 1]), LossKind::Mse, 0.01, rx);
        h.join().unwrap();
        let x = Matrix::from_vec(1, 2, vec![0.4, -0.1]);
        let y = engine.infer(out.mid, &x).unwrap();
        assert!(
            (y.get(0, 0) - 0.5).abs() < 0.25,
            "prediction {}",
            y.get(0, 0)
        );
        // Old version still servable.
        let y_old = engine.infer_at(out.mid, out.version, &x).unwrap();
        assert_eq!(y.data, y_old.data);
    }

    #[test]
    fn task_manager_runs_parallel_tasks() {
        let tm = TaskManager::new(4);
        for i in 0..8 {
            tm.submit(AiTask {
                label: format!("task{i}"),
                run: Box::new(move || TaskResult {
                    label: format!("task{i}"),
                    seconds: 0.0,
                    metric: i as f64,
                }),
            });
        }
        let results = tm.drain();
        assert_eq!(results.len(), 8);
        let mut metrics: Vec<f64> = results.iter().map(|r| r.metric).collect();
        metrics.sort_by(f64::total_cmp);
        assert_eq!(metrics, (0..8).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn baseline_pays_staging_cost() {
        let engine = AiEngine::new();
        let out = batch_load_then_train(
            &engine,
            mlp_spec(&[2, 8, 1]),
            LossKind::Mse,
            0.01,
            toy_batches(30, 64).into_iter(),
        );
        assert_eq!(out.samples, 30 * 64);
        assert!(out.wait_seconds > 0.0, "staging must be accounted");
    }
}

//! The data streaming protocol between the database and AI runtimes
//! (paper Section 4.1, "Data Streaming Protocol").
//!
//! A dispatcher performs a *handshake* with the runtime to negotiate model
//! and streaming parameters (batch size, window size = batches in flight,
//! buffer sizes), then streams encoded batches through a bounded channel
//! whose capacity is the negotiated window. Because the channel is bounded
//! and the producer (data preparation: scan + encode) runs concurrently
//! with the consumer (training), data preparation overlaps computation —
//! the overlap is where NeurDB's latency advantage over the batch-loading
//! PostgreSQL+P baseline comes from (paper Fig. 6(a,b)).
//!
//! Batches are actually serialized to bytes and deserialized on the other
//! side, so the protocol pays a realistic per-byte cost rather than moving
//! pointers.

use bytes::{Buf, BufMut, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender};
use neurdb_nn::Matrix;
use std::thread::JoinHandle;

/// Streaming parameters negotiated at handshake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Records per batch (paper default: 4096).
    pub batch_size: usize,
    /// Batches in flight between dispatcher and runtime (paper default: 80).
    pub window: usize,
}

impl Default for StreamParams {
    fn default() -> Self {
        StreamParams {
            batch_size: 4096,
            window: 80,
        }
    }
}

/// Handshake message: model + streaming parameters (paper lists model
/// structure/arguments/batch size and buffer sizes/batches-per-transmission).
#[derive(Debug, Clone, PartialEq)]
pub struct Handshake {
    pub model_descriptor: String,
    pub params: StreamParams,
}

/// One streamed batch: features and targets, encoded on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct DataBatch {
    pub features: Matrix,
    pub targets: Matrix,
}

impl DataBatch {
    /// Wire-encode the batch (length-prefixed f32 payloads).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            BytesMut::with_capacity(16 + 4 * (self.features.data.len() + self.targets.data.len()));
        for m in [&self.features, &self.targets] {
            buf.put_u32_le(m.rows as u32);
            buf.put_u32_le(m.cols as u32);
            for v in &m.data {
                buf.put_f32_le(*v);
            }
        }
        buf.to_vec()
    }

    /// Decode a batch from wire bytes.
    pub fn decode(bytes: &[u8]) -> DataBatch {
        let mut buf = bytes;
        let mut mats = Vec::with_capacity(2);
        for _ in 0..2 {
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            let data: Vec<f32> = (0..rows * cols).map(|_| buf.get_f32_le()).collect();
            mats.push(Matrix::from_vec(rows, cols, data));
        }
        let targets = mats.pop().unwrap();
        let features = mats.pop().unwrap();
        DataBatch { features, targets }
    }

    pub fn rows(&self) -> usize {
        self.features.rows
    }
}

/// Messages on the stream.
enum Frame {
    Data(Vec<u8>),
    /// Dynamic parameter update for an ongoing task (the paper's
    /// "data-driven dispatcher" adjusting streaming parameters live).
    Reconfigure(StreamParams),
    End,
}

/// Producer half of a data stream.
pub struct StreamSender {
    tx: Sender<Frame>,
    sent_batches: usize,
    sent_bytes: usize,
}

impl StreamSender {
    /// Send a batch (blocking when the window is full — this backpressure
    /// is what bounds memory, one of the protocol's stated goals).
    pub fn send(&mut self, batch: &DataBatch) -> Result<(), &'static str> {
        let bytes = batch.encode();
        self.sent_bytes += bytes.len();
        self.sent_batches += 1;
        self.tx
            .send(Frame::Data(bytes))
            .map_err(|_| "stream receiver dropped")
    }

    /// Push a live reconfiguration to the runtime.
    pub fn reconfigure(&mut self, params: StreamParams) -> Result<(), &'static str> {
        self.tx
            .send(Frame::Reconfigure(params))
            .map_err(|_| "stream receiver dropped")
    }

    /// Signal end-of-stream.
    pub fn finish(self) {
        let _ = self.tx.send(Frame::End);
    }

    pub fn sent_batches(&self) -> usize {
        self.sent_batches
    }

    pub fn sent_bytes(&self) -> usize {
        self.sent_bytes
    }
}

/// Consumer half of a data stream.
pub struct StreamReceiver {
    rx: Receiver<Frame>,
    pub params: StreamParams,
}

impl StreamReceiver {
    /// Blocking receive; `None` at end-of-stream. Reconfiguration frames
    /// are applied transparently.
    pub fn recv(&mut self) -> Option<DataBatch> {
        loop {
            match self.rx.recv().ok()? {
                Frame::Data(bytes) => return Some(DataBatch::decode(&bytes)),
                Frame::Reconfigure(p) => {
                    self.params = p;
                }
                Frame::End => return None,
            }
        }
    }
}

/// Perform the handshake and open a stream with the negotiated window.
pub fn open_stream(handshake: &Handshake) -> (StreamSender, StreamReceiver) {
    let (tx, rx) = bounded(handshake.params.window.max(1));
    (
        StreamSender {
            tx,
            sent_batches: 0,
            sent_bytes: 0,
        },
        StreamReceiver {
            rx,
            params: handshake.params,
        },
    )
}

/// Spawn a producer thread that pulls batches from `source` and streams
/// them; returns the receiver and the producer handle.
pub fn stream_from_source(
    handshake: &Handshake,
    source: impl Iterator<Item = DataBatch> + Send + 'static,
) -> (StreamReceiver, JoinHandle<usize>) {
    let (mut tx, rx) = open_stream(handshake);
    let handle = std::thread::spawn(move || {
        let mut n = 0;
        for batch in source {
            if tx.send(&batch).is_err() {
                break;
            }
            n += 1;
        }
        tx.finish();
        n
    });
    (rx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rows: usize, seed: f32) -> DataBatch {
        let features = Matrix::from_vec(rows, 3, (0..rows * 3).map(|i| seed + i as f32).collect());
        let targets = Matrix::from_vec(rows, 1, (0..rows).map(|i| seed - i as f32).collect());
        DataBatch { features, targets }
    }

    #[test]
    fn batch_wire_roundtrip() {
        let b = batch(7, 0.5);
        let decoded = DataBatch::decode(&b.encode());
        assert_eq!(b, decoded);
    }

    #[test]
    fn stream_delivers_in_order() {
        let hs = Handshake {
            model_descriptor: "test".into(),
            params: StreamParams {
                batch_size: 4,
                window: 2,
            },
        };
        let (mut tx, mut rx) = open_stream(&hs);
        let producer = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(&batch(4, i as f32)).unwrap();
            }
            tx.finish();
        });
        let mut got = 0;
        while let Some(b) = rx.recv() {
            assert_eq!(b.features.get(0, 0), got as f32);
            got += 1;
        }
        assert_eq!(got, 10);
        producer.join().unwrap();
    }

    #[test]
    fn window_applies_backpressure() {
        let hs = Handshake {
            model_descriptor: "bp".into(),
            params: StreamParams {
                batch_size: 1,
                window: 2,
            },
        };
        let (mut tx, mut rx) = open_stream(&hs);
        // Fill the window without a consumer: two sends succeed instantly.
        tx.send(&batch(1, 0.0)).unwrap();
        tx.send(&batch(1, 1.0)).unwrap();
        // A slow consumer drains everything after 30ms.
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut n = 0;
            while rx.recv().is_some() {
                n += 1;
            }
            n
        });
        // The third send must block until the consumer frees a slot.
        let start = std::time::Instant::now();
        tx.send(&batch(1, 2.0)).unwrap();
        assert!(
            start.elapsed().as_millis() >= 20,
            "send should have blocked"
        );
        tx.finish();
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn reconfigure_reaches_receiver() {
        let hs = Handshake {
            model_descriptor: "cfg".into(),
            params: StreamParams::default(),
        };
        let (mut tx, mut rx) = open_stream(&hs);
        let new = StreamParams {
            batch_size: 128,
            window: 8,
        };
        tx.reconfigure(new).unwrap();
        tx.send(&batch(1, 0.0)).unwrap();
        tx.finish();
        assert!(rx.recv().is_some());
        assert_eq!(rx.params, new);
    }

    #[test]
    fn stream_from_source_counts() {
        let hs = Handshake {
            model_descriptor: "src".into(),
            params: StreamParams {
                batch_size: 2,
                window: 4,
            },
        };
        let batches: Vec<DataBatch> = (0..5).map(|i| batch(2, i as f32)).collect();
        let (mut rx, handle) = stream_from_source(&hs, batches.into_iter());
        let mut n = 0;
        while rx.recv().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert_eq!(handle.join().unwrap(), 5);
    }
}

//! # neurdb-cc
//!
//! The fast-adaptive **learned concurrency control** of NeurDB-RS (paper
//! Section 4.2, Fig. 4): a compressed ("flattened") decision model over a
//! fast low-dimensional encoding of the contention state assigns each
//! operation a CC action (optimistic read/write, locking read/write, or
//! immediate abort); a two-phase adaptation loop — Bayesian-optimization
//! *filtering* then reward-feedback *refinement* — re-tunes the model when
//! the performance monitor detects workload drift. A Polyjuice-style
//! baseline (static per-transaction-type policy table with evolutionary
//! training) is included for the Fig. 7(b) comparison.
//!
//! ```
//! use neurdb_cc::LearnedCc;
//! use neurdb_txn::{TxnEngine, EngineConfig};
//! use std::sync::Arc;
//!
//! let policy = Arc::new(LearnedCc::seeded());
//! let engine = TxnEngine::new(policy.clone(), EngineConfig::default());
//! engine.load(1, 10);
//! let mut txn = engine.begin_with_hint(2);
//! let v = engine.read(&mut txn, 1).unwrap();
//! engine.write(&mut txn, 1, v * 2).unwrap();
//! engine.commit(txn).unwrap();
//! assert_eq!(engine.peek(1), Some(20));
//! ```

pub mod adapt;
pub mod driver;
pub mod encoding;
pub mod live;
pub mod model;
pub mod polyjuice;

pub use adapt::{AdaptConfig, Observation, TwoPhaseAdapter};
pub use driver::{run_learned_adaptive, run_polyjuice_adaptive, Phase, TimelinePoint, TxnGen};
pub use encoding::{encode, ENCODING_DIM};
pub use live::{DecisionSample, LivePolicy, PolicyMode};
pub use model::{
    action_for, perturb_params, random_params, seed_params, LearnedCc, Params, PARAM_COUNT,
    READ_ACTIONS, WRITE_ACTIONS,
};
pub use polyjuice::{
    crossover_table, mutate_table, random_table, ActionEntry, PolicyTable, PolyjuiceCc,
    PolyjuiceTrainer, MAX_OPS, MAX_TYPES,
};

//! Two-phase adaptation for the learned CC (paper Section 4.2, Fig. 4).
//!
//! "In the first *filtering* phase, we generate several improved models
//! using Bayesian optimization and evaluate them over a specific timeframe
//! to identify the best-performing model. Then, in the *refinement* phase,
//! we employ reward-based feedback to further optimize the selected model."
//!
//! The filtering phase here keeps a history of `(params, reward)` pairs and
//! proposes candidates with an expected-improvement-flavoured acquisition:
//! Gaussian perturbations around the incumbent with a sigma shrunk toward
//! the best observations, plus an exploration fraction of fresh random
//! models. This is the filter-and-refine principle (FRP) the paper builds
//! both learned components on: filtering cheaply discards bad regions of
//! the parameter space before the more expensive refinement.

use crate::model::{perturb_params, random_params, seed_params, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the two-phase adaptation.
#[derive(Debug, Clone, Copy)]
pub struct AdaptConfig {
    /// Candidates generated per filtering round.
    pub candidates: usize,
    /// Fraction of candidates that are pure exploration (random models).
    pub explore_frac: f32,
    /// Initial perturbation sigma for exploitation candidates.
    pub sigma: f32,
    /// Refinement iterations (coordinate-wise reward hill climbing).
    pub refine_iters: usize,
    /// Refinement step size.
    pub refine_step: f32,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            candidates: 8,
            explore_frac: 0.25,
            sigma: 0.3,
            refine_iters: 12,
            refine_step: 0.15,
        }
    }
}

/// History entry of an evaluated model.
#[derive(Debug, Clone)]
pub struct Observation {
    pub params: Params,
    pub reward: f64,
}

/// The two-phase adapter. Generic over the reward oracle: callers pass a
/// closure that deploys candidate parameters and measures reward
/// (throughput) over a timeframe.
pub struct TwoPhaseAdapter {
    cfg: AdaptConfig,
    history: Vec<Observation>,
    rng: StdRng,
}

impl TwoPhaseAdapter {
    pub fn new(cfg: AdaptConfig, seed: u64) -> Self {
        TwoPhaseAdapter {
            cfg,
            history: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Best observation so far (if any).
    pub fn incumbent(&self) -> Option<&Observation> {
        self.history
            .iter()
            .max_by(|a, b| a.reward.total_cmp(&b.reward))
    }

    /// Record an externally-evaluated model (e.g. the currently deployed
    /// one) so the search starts informed.
    pub fn observe(&mut self, params: Params, reward: f64) {
        self.history.push(Observation { params, reward });
    }

    /// **Filtering phase**: propose candidates, evaluate each with
    /// `reward_of`, keep the best. Returns the winning parameters and
    /// reward.
    pub fn filter_phase(&mut self, mut reward_of: impl FnMut(&Params) -> f64) -> (Params, f64) {
        let base = self
            .incumbent()
            .map(|o| o.params.clone())
            .unwrap_or_else(seed_params);
        // Sigma shrinks as history accumulates: the surrogate gets more
        // confident around the incumbent.
        let sigma = self.cfg.sigma / (1.0 + (self.history.len() as f32).sqrt() * 0.25);
        let mut candidates: Vec<Params> = Vec::with_capacity(self.cfg.candidates + 1);
        candidates.push(base.clone()); // incumbent always competes
        for i in 0..self.cfg.candidates {
            let explore = (i as f32 + 0.5) / (self.cfg.candidates as f32) < self.cfg.explore_frac;
            if explore {
                candidates.push(random_params(&mut self.rng));
            } else {
                candidates.push(perturb_params(&base, sigma, &mut self.rng));
            }
        }
        let mut best: Option<(Params, f64)> = None;
        for cand in candidates {
            let r = reward_of(&cand);
            self.history.push(Observation {
                params: cand.clone(),
                reward: r,
            });
            if best.as_ref().is_none_or(|(_, br)| r > *br) {
                best = Some((cand, r));
            }
        }
        best.expect("at least one candidate")
    }

    /// **Refinement phase**: coordinate-descent hill climbing with
    /// reward feedback, starting from `params`.
    pub fn refine_phase(
        &mut self,
        params: Params,
        start_reward: f64,
        mut reward_of: impl FnMut(&Params) -> f64,
    ) -> (Params, f64) {
        let mut current = params;
        let mut current_r = start_reward;
        for _ in 0..self.cfg.refine_iters {
            let idx = self.rng.gen_range(0..current.len());
            let dir = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mut cand = current.clone();
            cand[idx] += dir * self.cfg.refine_step;
            let r = reward_of(&cand);
            self.history.push(Observation {
                params: cand.clone(),
                reward: r,
            });
            if r > current_r {
                current = cand;
                current_r = r;
            }
        }
        (current, current_r)
    }

    /// Full adaptation: filtering then refinement. The paper's `F -> F_next`.
    pub fn adapt(&mut self, mut reward_of: impl FnMut(&Params) -> f64) -> (Params, f64) {
        let (p, r) = self.filter_phase(&mut reward_of);
        self.refine_phase(p, r, reward_of)
    }

    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PARAM_COUNT;

    /// Synthetic reward landscape: closeness to a hidden target vector.
    fn reward_landscape(target: &Params) -> impl Fn(&Params) -> f64 + '_ {
        move |p: &Params| {
            let d: f32 = p
                .iter()
                .zip(target.iter())
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            -(d as f64)
        }
    }

    #[test]
    fn adaptation_improves_reward() {
        let mut rng = StdRng::seed_from_u64(11);
        let target = random_params(&mut rng);
        let oracle = reward_landscape(&target);
        let mut adapter = TwoPhaseAdapter::new(AdaptConfig::default(), 1);
        let start = seed_params();
        let start_r = oracle(&start);
        adapter.observe(start, start_r);
        let (_, r1) = adapter.adapt(&oracle);
        assert!(
            r1 >= start_r,
            "one round must not regress: {r1} vs {start_r}"
        );
        let (_, r2) = adapter.adapt(&oracle);
        let (_, r3) = adapter.adapt(&oracle);
        assert!(r3 >= r1, "rewards should trend up: {r1} {r2} {r3}");
    }

    #[test]
    fn incumbent_always_competes() {
        // With a zero-sigma-like deterministic oracle favouring the seed,
        // filtering must return something at least as good as the seed.
        let seed = seed_params();
        let oracle = |p: &Params| {
            let d: f32 = p.iter().zip(seed.iter()).map(|(a, b)| (a - b).abs()).sum();
            -(d as f64)
        };
        let mut adapter = TwoPhaseAdapter::new(AdaptConfig::default(), 2);
        adapter.observe(seed.clone(), 0.0);
        let (best, r) = adapter.filter_phase(oracle);
        assert_eq!(best, seed);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn refinement_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = random_params(&mut rng);
        let oracle = reward_landscape(&target);
        let mut adapter = TwoPhaseAdapter::new(
            AdaptConfig {
                refine_iters: 50,
                ..Default::default()
            },
            4,
        );
        let start = seed_params();
        let r0 = oracle(&start);
        let (_, r) = adapter.refine_phase(start, r0, &oracle);
        assert!(r >= r0);
    }

    #[test]
    fn history_grows_with_evaluations() {
        let mut adapter = TwoPhaseAdapter::new(AdaptConfig::default(), 5);
        let _ = adapter.filter_phase(|_| 1.0);
        assert_eq!(adapter.history_len(), AdaptConfig::default().candidates + 1);
    }

    #[test]
    fn param_vectors_have_model_dimension() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(seed_params().len(), PARAM_COUNT);
        assert_eq!(random_params(&mut rng).len(), PARAM_COUNT);
    }
}

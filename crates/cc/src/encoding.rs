//! Fast contention-state encoding (paper Section 4.2).
//!
//! "We first develop a fast encoding technique to significantly reduce the
//! dimension of contention state representation" — the raw state (per-key
//! conflict info + transaction context) is compressed to a fixed
//! [`ENCODING_DIM`]-dimensional vector of log-scaled, bounded features so
//! the decision model can run in nanoseconds on the transaction's critical
//! path.

use neurdb_txn::OpCtx;

/// Dimension of the encoded contention state.
pub const ENCODING_DIM: usize = 8;

/// Squash a non-negative count into [0, 1) with log scaling.
#[inline]
fn squash(x: f32) -> f32 {
    let l = (1.0 + x.max(0.0)).ln();
    l / (1.0 + l)
}

/// Encode the contention state of one operation.
#[inline]
pub fn encode(ctx: &OpCtx) -> [f32; ENCODING_DIM] {
    let c = &ctx.contention;
    let progress = if ctx.txn_len_hint == 0 {
        0.0
    } else {
        (ctx.ops_done as f32 / ctx.txn_len_hint as f32).min(1.0)
    };
    [
        squash(c.recent_reads),
        squash(c.recent_writes),
        squash(c.recent_aborts),
        if c.write_locked { 1.0 } else { 0.0 },
        squash(c.hotness()),
        progress,
        squash(ctx.txn_len_hint as f32),
        1.0, // bias feature
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::KeyContention;

    fn ctx(reads: f32, writes: f32, aborts: f32, locked: bool) -> OpCtx {
        OpCtx {
            key: 0,
            ops_done: 3,
            txn_len_hint: 10,
            txn_type: 0,
            contention: KeyContention {
                recent_reads: reads,
                recent_writes: writes,
                recent_aborts: aborts,
                write_locked: locked,
            },
        }
    }

    #[test]
    fn features_bounded() {
        let huge = ctx(1e9, 1e9, 1e9, true);
        for f in encode(&huge) {
            assert!((0.0..=1.0).contains(&f), "feature {f} out of bounds");
        }
    }

    #[test]
    fn monotone_in_contention() {
        let cold = encode(&ctx(0.0, 0.0, 0.0, false));
        let hot = encode(&ctx(100.0, 100.0, 50.0, true));
        assert!(hot[0] > cold[0]);
        assert!(hot[1] > cold[1]);
        assert!(hot[2] > cold[2]);
        assert!(hot[3] > cold[3]);
        assert!(hot[4] > cold[4]);
    }

    #[test]
    fn progress_feature() {
        let mut c = ctx(0.0, 0.0, 0.0, false);
        c.ops_done = 0;
        assert_eq!(encode(&c)[5], 0.0);
        c.ops_done = 10;
        assert_eq!(encode(&c)[5], 1.0);
        c.ops_done = 99;
        assert_eq!(encode(&c)[5], 1.0, "clamped");
    }

    #[test]
    fn bias_always_one() {
        assert_eq!(encode(&ctx(5.0, 1.0, 0.0, false))[7], 1.0);
    }
}

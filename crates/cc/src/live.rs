//! The serving-path CC policy: a hot-swappable dispatcher that fronts the
//! learned model, the Polyjuice baseline, and the classical policies, and
//! feeds the two-phase adaptation loop from live decision samples.
//!
//! `core` installs one [`LivePolicy`] into the shared `TxnEngine` at
//! startup; `SET cc_policy = '...'` flips the mode at runtime without
//! rebuilding the engine (the `CcPolicy` object stays the same, only the
//! dispatch target changes). Every consult is counted and sampled into a
//! bounded ring; [`LivePolicy::adapt_now`] drains the ring and runs the
//! paper's filtering + refinement search (Section 4.2), scoring candidate
//! models by *counterfactual replay*: what would this model have decided
//! on the recorded contention states, and does that match how contention
//! on those keys actually evolved?

use crate::adapt::{AdaptConfig, TwoPhaseAdapter};
use crate::encoding::encode;
use crate::model::{action_for, LearnedCc, Params};
use crate::polyjuice::PolyjuiceCc;
use neurdb_txn::{
    CcPolicy, ContentionTracker, Occ, OpCtx, ReadDecision, TwoPhaseLocking, WriteDecision,
};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which policy the dispatcher routes decisions to.
///
/// SSI is deliberately absent: its commit-time checks depend on
/// begin-time bookkeeping, so flipping into it mid-flight would leave
/// already-running transactions with inconsistent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    Learned,
    Polyjuice,
    Occ,
    TwoPl,
}

impl PolicyMode {
    /// Parse a `SET cc_policy` value (case-insensitive).
    pub fn parse(s: &str) -> Option<PolicyMode> {
        Some(match s.to_ascii_lowercase().as_str() {
            "learned" | "neurdb" | "neurdb-cc" => PolicyMode::Learned,
            "polyjuice" => PolicyMode::Polyjuice,
            "occ" => PolicyMode::Occ,
            "2pl" | "locking" => PolicyMode::TwoPl,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            PolicyMode::Learned => "neurdb-cc",
            PolicyMode::Polyjuice => "polyjuice",
            PolicyMode::Occ => "occ",
            PolicyMode::TwoPl => "2pl",
        }
    }
}

/// One recorded policy consult: the contention state the decision was made
/// under. Kept small (OpCtx is `Copy`) so sampling stays off the hot
/// path's allocator.
#[derive(Debug, Clone, Copy)]
pub struct DecisionSample {
    pub ctx: OpCtx,
    pub is_write: bool,
}

/// Bounded sample ring: old decisions age out; adaptation only ever looks
/// at recent behaviour (the workload it is adapting *to*).
const SAMPLE_CAP: usize = 512;

/// Hot-swappable serving-path policy. See module docs.
pub struct LivePolicy {
    mode: RwLock<PolicyMode>,
    learned: Arc<LearnedCc>,
    polyjuice: Arc<PolyjuiceCc>,
    occ: Occ,
    twopl: TwoPhaseLocking,
    consults: AtomicU64,
    samples: Mutex<VecDeque<DecisionSample>>,
    adapter: Mutex<TwoPhaseAdapter>,
    adaptations: AtomicU64,
}

impl LivePolicy {
    pub fn new(seed: u64) -> Self {
        LivePolicy {
            mode: RwLock::new(PolicyMode::Learned),
            learned: Arc::new(LearnedCc::seeded()),
            polyjuice: Arc::new(PolyjuiceCc::default_policy()),
            occ: Occ,
            twopl: TwoPhaseLocking,
            consults: AtomicU64::new(0),
            samples: Mutex::new(VecDeque::with_capacity(SAMPLE_CAP)),
            adapter: Mutex::new(TwoPhaseAdapter::new(AdaptConfig::default(), seed)),
            adaptations: AtomicU64::new(0),
        }
    }

    pub fn mode(&self) -> PolicyMode {
        *self.mode.read()
    }

    pub fn set_mode(&self, mode: PolicyMode) {
        *self.mode.write() = mode;
    }

    /// Total policy consults (read + write decisions) since startup.
    pub fn consults(&self) -> u64 {
        self.consults.load(Ordering::Relaxed)
    }

    /// Completed adaptation rounds.
    pub fn adaptations(&self) -> u64 {
        self.adaptations.load(Ordering::Relaxed)
    }

    /// The learned model behind the `Learned` mode (for tests/inspection).
    pub fn learned(&self) -> &Arc<LearnedCc> {
        &self.learned
    }

    fn record(&self, ctx: &OpCtx, is_write: bool) {
        self.consults.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.samples.lock();
        if ring.len() == SAMPLE_CAP {
            ring.pop_front();
        }
        ring.push_back(DecisionSample {
            ctx: *ctx,
            is_write,
        });
    }

    /// Number of decision samples currently buffered.
    pub fn sample_count(&self) -> usize {
        self.samples.lock().len()
    }

    /// Run one two-phase adaptation round over the buffered decision
    /// samples, installing the winning parameters into the learned model.
    /// Returns the winning reward, or `None` when there is nothing to
    /// learn from yet.
    pub fn adapt_now(&self, tracker: &ContentionTracker) -> Option<f64> {
        let samples: Vec<DecisionSample> = {
            let mut ring = self.samples.lock();
            ring.drain(..).collect()
        };
        if samples.is_empty() {
            return None;
        }
        let mut adapter = self.adapter.lock();
        // Seed the search with the currently deployed model so the
        // incumbent always competes.
        let current = self.learned.params();
        let current_r = replay_score(&current, &samples, tracker);
        adapter.observe(current, current_r);
        let (best, reward) = adapter.adapt(|p| replay_score(p, &samples, tracker));
        self.learned.set_params(best);
        self.adaptations.fetch_add(1, Ordering::Relaxed);
        Some(reward)
    }
}

/// Counterfactual replay reward: score a candidate model by replaying the
/// recorded decisions and comparing each choice against how contention on
/// that key actually evolved. Keys whose abort counters grew (or were
/// already hot at decision time) reward pessimism — locking queues the
/// conflict instead of wasting work; quiet keys reward optimism — locks
/// there only add latency. Immediate aborts only pay off in abort storms.
fn replay_score(params: &Params, samples: &[DecisionSample], tracker: &ContentionTracker) -> f64 {
    let mut score = 0.0;
    for s in samples {
        let x = encode(&s.ctx);
        let action = action_for(params, &x, s.is_write);
        let now = tracker.contention(s.ctx.key, false);
        let heat = now.recent_aborts.max(s.ctx.contention.recent_aborts);
        let contended = heat > 0.5;
        let storm = heat > 4.0;
        score += match action {
            0 => {
                // Optimistic (snapshot read / buffered write).
                if contended {
                    -0.5
                } else {
                    1.0
                }
            }
            1 => {
                // Pessimistic (locking read / locking write).
                if contended {
                    1.0
                } else {
                    -0.2
                }
            }
            _ => {
                // Immediate abort.
                if storm {
                    0.5
                } else {
                    -1.0
                }
            }
        };
    }
    score / samples.len() as f64
}

impl CcPolicy for LivePolicy {
    fn read_decision(&self, ctx: &OpCtx) -> ReadDecision {
        self.record(ctx, false);
        match self.mode() {
            PolicyMode::Learned => self.learned.read_decision(ctx),
            PolicyMode::Polyjuice => self.polyjuice.read_decision(ctx),
            PolicyMode::Occ => self.occ.read_decision(ctx),
            PolicyMode::TwoPl => self.twopl.read_decision(ctx),
        }
    }

    fn write_decision(&self, ctx: &OpCtx) -> WriteDecision {
        self.record(ctx, true);
        match self.mode() {
            PolicyMode::Learned => self.learned.write_decision(ctx),
            PolicyMode::Polyjuice => self.polyjuice.write_decision(ctx),
            PolicyMode::Occ => self.occ.write_decision(ctx),
            PolicyMode::TwoPl => self.twopl.write_decision(ctx),
        }
    }

    fn validate_reads(&self) -> bool {
        match self.mode() {
            PolicyMode::Learned => self.learned.validate_reads(),
            PolicyMode::Polyjuice => self.polyjuice.validate_reads(),
            PolicyMode::Occ => self.occ.validate_reads(),
            PolicyMode::TwoPl => self.twopl.validate_reads(),
        }
    }

    fn ssi_checks(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        self.mode().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::{KeyContention, ReadMode, WriteMode};

    fn ctx(key: u64, aborts: f32) -> OpCtx {
        OpCtx {
            key,
            ops_done: 1,
            txn_len_hint: 4,
            txn_type: 0,
            contention: KeyContention {
                recent_reads: 1.0,
                recent_writes: 1.0,
                recent_aborts: aborts,
                write_locked: false,
            },
        }
    }

    #[test]
    fn mode_parse_and_names() {
        assert_eq!(PolicyMode::parse("Learned"), Some(PolicyMode::Learned));
        assert_eq!(PolicyMode::parse("POLYJUICE"), Some(PolicyMode::Polyjuice));
        assert_eq!(PolicyMode::parse("occ"), Some(PolicyMode::Occ));
        assert_eq!(PolicyMode::parse("2pl"), Some(PolicyMode::TwoPl));
        assert_eq!(PolicyMode::parse("ssi"), None);
        assert_eq!(PolicyMode::Learned.name(), "neurdb-cc");
    }

    #[test]
    fn dispatch_follows_mode() {
        let live = LivePolicy::new(7);
        assert_eq!(live.name(), "neurdb-cc");
        // 2PL always locks; the learned seed is optimistic on cold keys.
        let cold = ctx(1, 0.0);
        assert_eq!(
            live.read_decision(&cold),
            ReadDecision::Proceed(ReadMode::Snapshot)
        );
        live.set_mode(PolicyMode::TwoPl);
        assert_eq!(live.name(), "2pl");
        assert_eq!(
            live.read_decision(&cold),
            ReadDecision::Proceed(ReadMode::LockShared)
        );
        assert_eq!(
            live.write_decision(&cold),
            WriteDecision::Proceed(WriteMode::LockExclusive)
        );
        assert!(!live.validate_reads(), "2pl needs no read validation");
        live.set_mode(PolicyMode::Occ);
        assert!(live.validate_reads());
    }

    #[test]
    fn consults_and_samples_accumulate() {
        let live = LivePolicy::new(1);
        for i in 0..600u64 {
            let _ = live.read_decision(&ctx(i, 0.0));
        }
        assert_eq!(live.consults(), 600);
        assert_eq!(live.sample_count(), SAMPLE_CAP, "ring is bounded");
    }

    #[test]
    fn adapt_now_installs_new_params_and_drains() {
        let live = LivePolicy::new(3);
        let tracker = ContentionTracker::new();
        // Hot key 5: aborts recorded; cold keys otherwise.
        for _ in 0..50 {
            tracker.record_write(5);
            tracker.record_abort(&[5]);
            let _ = live.write_decision(&ctx(5, tracker.contention(5, false).recent_aborts));
            let _ = live.write_decision(&ctx(1000, 0.0));
        }
        assert!(live.sample_count() > 0);
        let reward = live.adapt_now(&tracker);
        assert!(reward.is_some());
        assert_eq!(live.adaptations(), 1);
        assert_eq!(live.sample_count(), 0, "samples drained");
        // Nothing buffered: second round is a no-op.
        assert!(live.adapt_now(&tracker).is_none());
        assert_eq!(live.adaptations(), 1);
    }

    #[test]
    fn replay_rewards_matching_pessimism() {
        let tracker = ContentionTracker::new();
        for _ in 0..20 {
            tracker.record_write(9);
            tracker.record_abort(&[9]);
        }
        let hot = ctx(9, tracker.contention(9, false).recent_aborts);
        let samples = vec![DecisionSample {
            ctx: hot,
            is_write: true,
        }];
        // A model that always locks beats one that always buffers on a
        // contended key.
        let mut lock_all = vec![0.0f32; crate::model::PARAM_COUNT];
        // write action 1 (lock), bias feature.
        lock_all[(crate::model::READ_ACTIONS + 1) * crate::encoding::ENCODING_DIM + 7] = 5.0;
        let mut buffer_all = vec![0.0f32; crate::model::PARAM_COUNT];
        buffer_all[crate::model::READ_ACTIONS * crate::encoding::ENCODING_DIM + 7] = 5.0;
        let r_lock = replay_score(&lock_all, &samples, &tracker);
        let r_buf = replay_score(&buffer_all, &samples, &tracker);
        assert!(r_lock > r_buf, "lock {r_lock} vs buffer {r_buf}");
    }
}

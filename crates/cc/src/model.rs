//! The compressed decision model `F` of the learned concurrency control
//! (paper Section 4.2, Fig. 4).
//!
//! "We compress the model with a flattened layer to improve inference
//! efficiency": the model is a single linear layer over the encoded
//! contention state producing logits for the three read actions
//! {snapshot, lock, abort} and three write actions {buffer, lock, abort};
//! argmax picks the action. Parameters live in a flat `Vec<f32>` (the
//! *genome* the two-phase adaptation evolves) behind an `RwLock` so the
//! policy can be hot-swapped while worker threads run.

use crate::encoding::{encode, ENCODING_DIM};
use neurdb_txn::{CcPolicy, OpCtx, ReadDecision, ReadMode, WriteDecision, WriteMode};
use parking_lot::RwLock;
use rand::Rng;

/// Read actions, in logit order.
pub const READ_ACTIONS: usize = 3; // snapshot, lock-shared, abort
/// Write actions, in logit order.
pub const WRITE_ACTIONS: usize = 3; // buffer, lock-exclusive, abort

/// Total parameter count of the decision model.
pub const PARAM_COUNT: usize = ENCODING_DIM * (READ_ACTIONS + WRITE_ACTIONS);

/// Flat parameter vector (the adaptation search space).
pub type Params = Vec<f32>;

/// A sensible hand-initialized starting point: optimistic on cold keys,
/// pessimistic on write-locked keys, abort on very hot keys. The
/// *filtering* phase of adaptation starts its search here.
pub fn seed_params() -> Params {
    let mut p = vec![0.0f32; PARAM_COUNT];
    // Feature layout (see encoding.rs):
    // 0 reads, 1 writes, 2 aborts, 3 locked, 4 hotness, 5 progress, 6 len, 7 bias
    // Read logits: [snapshot, lock, abort] each ENCODING_DIM weights.
    let read = |a: usize, f: usize| a * ENCODING_DIM + f;
    let write = |a: usize, f: usize| (READ_ACTIONS + a) * ENCODING_DIM + f;
    // Snapshot read: favored by default (bias), disfavored when locked.
    p[read(0, 7)] = 1.0;
    p[read(0, 3)] = -0.5;
    // Locking read: favored when the key is write-locked or write-hot.
    p[read(1, 3)] = 1.0;
    p[read(1, 1)] = 0.8;
    // Read-abort: only under extreme abort rates.
    p[read(2, 2)] = 1.2;
    p[read(2, 7)] = -1.5;
    // Buffered (optimistic) write: default.
    p[write(0, 7)] = 1.0;
    p[write(0, 1)] = -0.6;
    // Locking write: favored on write-hot or locked keys, and early in
    // long transactions (cheap to wait now, expensive to abort later) —
    // but not when the key is an abort storm (locking just queues doomed
    // work there).
    p[write(1, 1)] = 1.0;
    p[write(1, 3)] = 0.8;
    p[write(1, 6)] = 0.3;
    p[write(1, 2)] = -1.0;
    // Write-abort: when aborts are rampant and we are early in the txn.
    p[write(2, 2)] = 3.0;
    p[write(2, 5)] = -0.8;
    p[write(2, 7)] = -1.2;
    p
}

/// Uniform random parameters (exploration candidates).
pub fn random_params(rng: &mut impl Rng) -> Params {
    (0..PARAM_COUNT).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Gaussian perturbation of existing parameters (exploitation candidates).
pub fn perturb_params(base: &Params, sigma: f32, rng: &mut impl Rng) -> Params {
    base.iter()
        .map(|w| {
            // Box-Muller without external deps.
            let u1: f32 = rng.gen_range(1e-6..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            w + sigma * n
        })
        .collect()
}

#[inline]
fn argmax_logits(params: &[f32], offset: usize, actions: usize, x: &[f32; ENCODING_DIM]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for a in 0..actions {
        let w = &params[(offset + a) * ENCODING_DIM..(offset + a + 1) * ENCODING_DIM];
        let mut v = 0.0;
        for i in 0..ENCODING_DIM {
            v += w[i] * x[i];
        }
        if v > best_v {
            best_v = v;
            best = a;
        }
    }
    best
}

/// Action index a candidate parameter vector would pick for an encoded
/// contention state — read actions [snapshot, lock, abort] or write
/// actions [buffer, lock, abort]. The adaptation loop uses this to replay
/// recorded decisions against candidate models without deploying them.
pub fn action_for(params: &Params, x: &[f32; ENCODING_DIM], is_write: bool) -> usize {
    if is_write {
        argmax_logits(params, READ_ACTIONS, WRITE_ACTIONS, x)
    } else {
        argmax_logits(params, 0, READ_ACTIONS, x)
    }
}

/// The learned CC policy: NeurDB(CC). Thread-safe; parameters hot-swap.
pub struct LearnedCc {
    params: RwLock<Params>,
}

impl LearnedCc {
    pub fn new(params: Params) -> Self {
        assert_eq!(params.len(), PARAM_COUNT);
        LearnedCc {
            params: RwLock::new(params),
        }
    }

    pub fn seeded() -> Self {
        Self::new(seed_params())
    }

    /// Atomically replace the parameters (model hot-swap during
    /// adaptation).
    pub fn set_params(&self, params: Params) {
        assert_eq!(params.len(), PARAM_COUNT);
        *self.params.write() = params;
    }

    pub fn params(&self) -> Params {
        self.params.read().clone()
    }
}

impl CcPolicy for LearnedCc {
    fn read_decision(&self, ctx: &OpCtx) -> ReadDecision {
        let x = encode(ctx);
        let a = argmax_logits(&self.params.read(), 0, READ_ACTIONS, &x);
        match a {
            0 => ReadDecision::Proceed(ReadMode::Snapshot),
            1 => ReadDecision::Proceed(ReadMode::LockShared),
            _ => ReadDecision::Abort,
        }
    }

    fn write_decision(&self, ctx: &OpCtx) -> WriteDecision {
        let x = encode(ctx);
        let a = argmax_logits(&self.params.read(), READ_ACTIONS, WRITE_ACTIONS, &x);
        match a {
            0 => WriteDecision::Proceed(WriteMode::Buffer),
            1 => WriteDecision::Proceed(WriteMode::LockExclusive),
            _ => WriteDecision::Abort,
        }
    }

    fn validate_reads(&self) -> bool {
        // Snapshot reads taken optimistically are validated at commit so
        // mixing optimistic and pessimistic actions stays serializable.
        true
    }

    fn ssi_checks(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "neurdb-cc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::KeyContention;
    use rand::SeedableRng;

    fn ctx(contention: KeyContention) -> OpCtx {
        OpCtx {
            key: 1,
            ops_done: 2,
            txn_len_hint: 10,
            txn_type: 0,
            contention,
        }
    }

    #[test]
    fn seeded_policy_is_optimistic_on_cold_keys() {
        let cc = LearnedCc::seeded();
        let cold = ctx(KeyContention::default());
        assert_eq!(
            cc.read_decision(&cold),
            ReadDecision::Proceed(ReadMode::Snapshot)
        );
        assert_eq!(
            cc.write_decision(&cold),
            WriteDecision::Proceed(WriteMode::Buffer)
        );
    }

    #[test]
    fn seeded_policy_locks_contended_writes() {
        let cc = LearnedCc::seeded();
        let hot = ctx(KeyContention {
            recent_reads: 5.0,
            recent_writes: 200.0,
            recent_aborts: 2.0,
            write_locked: true,
        });
        assert_eq!(
            cc.write_decision(&hot),
            WriteDecision::Proceed(WriteMode::LockExclusive)
        );
        assert_eq!(
            cc.read_decision(&hot),
            ReadDecision::Proceed(ReadMode::LockShared)
        );
    }

    #[test]
    fn seeded_policy_aborts_on_abort_storms() {
        let cc = LearnedCc::seeded();
        let storm = ctx(KeyContention {
            recent_reads: 10.0,
            recent_writes: 500.0,
            recent_aborts: 10_000.0,
            write_locked: true,
        });
        assert_eq!(cc.write_decision(&storm), WriteDecision::Abort);
    }

    #[test]
    fn hot_swap_changes_behaviour() {
        let cc = LearnedCc::seeded();
        let cold = ctx(KeyContention::default());
        assert_eq!(
            cc.read_decision(&cold),
            ReadDecision::Proceed(ReadMode::Snapshot)
        );
        // All-zero params with a forced lock-read bias.
        let mut p = vec![0.0; PARAM_COUNT];
        p[ENCODING_DIM + 7] = 5.0; // read action 1 (lock), bias feature
        cc.set_params(p);
        assert_eq!(
            cc.read_decision(&cold),
            ReadDecision::Proceed(ReadMode::LockShared)
        );
    }

    #[test]
    fn perturb_preserves_length_and_moves_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let base = seed_params();
        let p = perturb_params(&base, 0.1, &mut rng);
        assert_eq!(p.len(), base.len());
        assert_ne!(p, base);
        let dist: f32 = p
            .iter()
            .zip(base.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist < 2.0, "perturbation too large: {dist}");
    }
}

//! Self-adaptive CC drivers: close the loop between the workload, the
//! performance monitor, and model adaptation.
//!
//! This is the harness behind Fig. 7(b): a workload runs in *phases*
//! (8 threads/1 warehouse → 8 threads/2 warehouses → 16 threads/1
//! warehouse); each driver samples throughput per slice, detects drops via
//! the drift monitor, and runs its own adaptation machinery — NeurDB(CC)'s
//! two-phase filter/refine vs Polyjuice's evolutionary generations.

use crate::adapt::{AdaptConfig, TwoPhaseAdapter};
use crate::model::LearnedCc;
use crate::polyjuice::{PolyjuiceCc, PolyjuiceTrainer};
use neurdb_engine::{Adaptation, MonitorConfig, ThroughputMonitor};
use neurdb_txn::{run_workload, TxnEngine, TxnSpec};
use std::sync::Arc;
use std::time::Duration;

/// A generator of transactions: `(thread_id, seq) -> TxnSpec`.
pub type TxnGen = Arc<dyn Fn(usize, u64) -> TxnSpec + Send + Sync>;

/// One workload phase.
#[derive(Clone)]
pub struct Phase {
    pub label: String,
    pub threads: usize,
    /// Number of measurement slices in this phase.
    pub slices: usize,
    pub gen: TxnGen,
}

/// One throughput sample on the experiment timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelinePoint {
    /// Seconds since the experiment started.
    pub t: f64,
    pub throughput: f64,
    /// Whether an adaptation ran during this slice.
    pub adapted: bool,
}

/// Run phases with the **learned** CC: monitor-triggered two-phase
/// adaptation, evaluating candidates on short live slices (the paper's
/// "evaluate them over a specific timeframe").
#[allow(clippy::too_many_arguments)]
pub fn run_learned_adaptive(
    engine: &Arc<TxnEngine>,
    policy: &Arc<LearnedCc>,
    phases: &[Phase],
    slice: Duration,
    adapt_cfg: AdaptConfig,
    seed: u64,
) -> Vec<TimelinePoint> {
    let mut adapter = TwoPhaseAdapter::new(adapt_cfg, seed);
    let mut monitor = ThroughputMonitor::new(MonitorConfig {
        window: 3,
        finetune_ratio: 1.35,
        retrain_ratio: 3.0,
        cooldown: 2,
    });
    let mut timeline = Vec::new();
    let mut t = 0.0;
    let eval_slice = slice / 4;
    for phase in phases {
        for _ in 0..phase.slices {
            let stats = run_workload(engine, phase.threads, slice, {
                let g = phase.gen.clone();
                move |tid, seq| g(tid, seq)
            });
            t += stats.seconds;
            let mut adapted = false;
            if monitor.observe(stats.throughput()) != Adaptation::None {
                adapted = true;
                adapter.observe(policy.params(), stats.throughput());
                let threads = phase.threads;
                let gen = phase.gen.clone();
                let engine2 = engine.clone();
                let policy2 = policy.clone();
                let (best, _) = adapter.adapt(move |params| {
                    policy2.set_params(params.clone());
                    let g = gen.clone();
                    let s =
                        run_workload(&engine2, threads, eval_slice, move |tid, seq| g(tid, seq));
                    s.throughput()
                });
                policy.set_params(best);
                // Adaptation time counts against the timeline (candidates
                // ran live traffic, so it is not dead time, but we stamp
                // the elapsed evaluation wall-clock).
                let evals = (adapt_cfg.candidates + 1 + adapt_cfg.refine_iters) as f64;
                t += evals * eval_slice.as_secs_f64();
            }
            timeline.push(TimelinePoint {
                t,
                throughput: stats.throughput(),
                adapted,
            });
        }
    }
    timeline
}

/// Run phases with the **Polyjuice** baseline: monitor-triggered EA
/// generations. Each generation must evaluate its whole population on live
/// slices, and the policy-table features (txn type, op index) do not see
/// the drift, so recovery is slower — the behaviour Fig. 7(b) shows.
pub fn run_polyjuice_adaptive(
    engine: &Arc<TxnEngine>,
    policy: &Arc<PolyjuiceCc>,
    phases: &[Phase],
    slice: Duration,
    seed: u64,
) -> Vec<TimelinePoint> {
    let mut trainer = PolyjuiceTrainer::new(policy.table(), seed);
    let mut monitor = ThroughputMonitor::new(MonitorConfig {
        window: 3,
        finetune_ratio: 1.35,
        retrain_ratio: 3.0,
        cooldown: 2,
    });
    let mut timeline = Vec::new();
    let mut t = 0.0;
    let eval_slice = slice / 4;
    for phase in phases {
        for _ in 0..phase.slices {
            let stats = run_workload(engine, phase.threads, slice, {
                let g = phase.gen.clone();
                move |tid, seq| g(tid, seq)
            });
            t += stats.seconds;
            let mut adapted = false;
            if monitor.observe(stats.throughput()) != Adaptation::None {
                adapted = true;
                // EA: two generations per trigger (population re-evaluated
                // each time) — Polyjuice's heavier adaptation loop.
                for _ in 0..2 {
                    let threads = phase.threads;
                    let gen = phase.gen.clone();
                    let engine2 = engine.clone();
                    let policy2 = policy.clone();
                    let (best, _) = trainer.generation(move |table| {
                        policy2.set_table(table.clone());
                        let g = gen.clone();
                        let s = run_workload(&engine2, threads, eval_slice, move |tid, seq| {
                            g(tid, seq)
                        });
                        s.throughput()
                    });
                    policy.set_table(best);
                    t += (trainer.population as f64) * eval_slice.as_secs_f64();
                }
            }
            timeline.push(TimelinePoint {
                t,
                throughput: stats.throughput(),
                adapted,
            });
        }
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::{EngineConfig, Op};

    fn zipf_like_gen(keys: u64, hot_frac: f64) -> TxnGen {
        Arc::new(move |tid, seq| {
            let h = (tid as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ seq.wrapping_mul(0xBF58476D1CE4E5B9);
            let hot = (h % 100) as f64 / 100.0 < hot_frac;
            let span = if hot { keys / 100 + 1 } else { keys };
            let base = h % span;
            TxnSpec::new(
                0,
                vec![
                    Op::Read(base % keys),
                    Op::Read((base + 7) % keys),
                    Op::Rmw((base + 3) % keys, 1),
                ],
            )
        })
    }

    #[test]
    fn learned_driver_produces_timeline() {
        let policy = Arc::new(LearnedCc::seeded());
        let engine = Arc::new(TxnEngine::new(policy.clone(), EngineConfig::default()));
        for k in 0..1000 {
            engine.load(k, 0);
        }
        let phases = vec![Phase {
            label: "steady".into(),
            threads: 2,
            slices: 3,
            gen: zipf_like_gen(1000, 0.1),
        }];
        let tl = run_learned_adaptive(
            &engine,
            &policy,
            &phases,
            Duration::from_millis(30),
            AdaptConfig {
                candidates: 2,
                refine_iters: 2,
                ..Default::default()
            },
            1,
        );
        assert_eq!(tl.len(), 3);
        assert!(tl.iter().all(|p| p.throughput > 0.0));
        assert!(tl.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn polyjuice_driver_produces_timeline() {
        let policy = Arc::new(PolyjuiceCc::default_policy());
        let engine = Arc::new(TxnEngine::new(policy.clone(), EngineConfig::default()));
        for k in 0..1000 {
            engine.load(k, 0);
        }
        let phases = vec![Phase {
            label: "steady".into(),
            threads: 2,
            slices: 2,
            gen: zipf_like_gen(1000, 0.1),
        }];
        let tl = run_polyjuice_adaptive(&engine, &policy, &phases, Duration::from_millis(30), 2);
        assert_eq!(tl.len(), 2);
        assert!(tl.iter().all(|p| p.throughput > 0.0));
    }
}

//! Polyjuice-style baseline (Wang et al., OSDI'21), as used in the paper's
//! Fig. 7(b) comparison.
//!
//! Polyjuice learns a *policy table* keyed by static transaction/operation
//! patterns — `(transaction type, operation index)` — mapping to CC actions,
//! optimized with an evolutionary algorithm over measured throughput. Its
//! weakness (the one the paper exploits) is that the table keys on
//! transaction *type*, not on the live contention state, so when the
//! workload drifts (warehouse count or thread count changes) the learned
//! table is stale until a full EA generation re-evaluates; NeurDB(CC)'s
//! contention-state features move with the drift instead.

use neurdb_txn::{CcPolicy, OpCtx, ReadDecision, ReadMode, WriteDecision, WriteMode};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Max transaction types and ops-per-transaction indexed by the table.
pub const MAX_TYPES: usize = 4;
pub const MAX_OPS: usize = 16;

/// Per-(type, op) action entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActionEntry {
    /// 0 = snapshot read, 1 = locking read.
    pub read_action: u8,
    /// 0 = buffered write, 1 = locking write.
    pub write_action: u8,
}

/// The policy table (the Polyjuice "genome").
pub type PolicyTable = Vec<ActionEntry>; // MAX_TYPES * MAX_OPS

fn table_index(txn_type: u8, op: usize) -> usize {
    (txn_type as usize % MAX_TYPES) * MAX_OPS + op.min(MAX_OPS - 1)
}

/// Random policy table.
pub fn random_table(rng: &mut impl Rng) -> PolicyTable {
    (0..MAX_TYPES * MAX_OPS)
        .map(|_| ActionEntry {
            read_action: rng.gen_range(0..2),
            write_action: rng.gen_range(0..2),
        })
        .collect()
}

/// Mutate a table by flipping each entry's actions with probability `p`.
pub fn mutate_table(base: &PolicyTable, p: f64, rng: &mut impl Rng) -> PolicyTable {
    base.iter()
        .map(|e| {
            let mut e = *e;
            if rng.gen_bool(p) {
                e.read_action ^= 1;
            }
            if rng.gen_bool(p) {
                e.write_action ^= 1;
            }
            e
        })
        .collect()
}

/// Uniform crossover of two tables.
pub fn crossover_table(a: &PolicyTable, b: &PolicyTable, rng: &mut impl Rng) -> PolicyTable {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| if rng.gen_bool(0.5) { *x } else { *y })
        .collect()
}

/// The Polyjuice-style CC policy.
pub struct PolyjuiceCc {
    table: RwLock<PolicyTable>,
}

impl PolyjuiceCc {
    pub fn new(table: PolicyTable) -> Self {
        assert_eq!(table.len(), MAX_TYPES * MAX_OPS);
        PolyjuiceCc {
            table: RwLock::new(table),
        }
    }

    /// Default-initialized (optimistic everywhere).
    pub fn default_policy() -> Self {
        Self::new(vec![ActionEntry::default(); MAX_TYPES * MAX_OPS])
    }

    pub fn set_table(&self, table: PolicyTable) {
        assert_eq!(table.len(), MAX_TYPES * MAX_OPS);
        *self.table.write() = table;
    }

    pub fn table(&self) -> PolicyTable {
        self.table.read().clone()
    }
}

impl CcPolicy for PolyjuiceCc {
    fn read_decision(&self, ctx: &OpCtx) -> ReadDecision {
        let t = self.table.read();
        match t[table_index(ctx.txn_type, ctx.ops_done)].read_action {
            0 => ReadDecision::Proceed(ReadMode::Snapshot),
            _ => ReadDecision::Proceed(ReadMode::LockShared),
        }
    }

    fn write_decision(&self, ctx: &OpCtx) -> WriteDecision {
        let t = self.table.read();
        match t[table_index(ctx.txn_type, ctx.ops_done)].write_action {
            0 => WriteDecision::Proceed(WriteMode::Buffer),
            _ => WriteDecision::Proceed(WriteMode::LockExclusive),
        }
    }

    fn validate_reads(&self) -> bool {
        true
    }

    fn ssi_checks(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "polyjuice"
    }
}

/// Evolutionary trainer for the policy table: one `generation` evaluates a
/// population (incumbent + mutants + crossovers) with the caller's reward
/// oracle and installs the winner. Matches Polyjuice's offline EA loop; in
/// the drift experiment its cadence is what makes adaptation slow.
pub struct PolyjuiceTrainer {
    pub population: usize,
    pub mutation_p: f64,
    best: (PolicyTable, f64),
    rng: StdRng,
}

impl PolyjuiceTrainer {
    pub fn new(initial: PolicyTable, seed: u64) -> Self {
        PolyjuiceTrainer {
            population: 8,
            mutation_p: 0.08,
            best: (initial, f64::NEG_INFINITY),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn best_table(&self) -> &PolicyTable {
        &self.best.0
    }

    pub fn best_reward(&self) -> f64 {
        self.best.1
    }

    /// Run one EA generation. Returns the new best table and its reward.
    pub fn generation(
        &mut self,
        mut reward_of: impl FnMut(&PolicyTable) -> f64,
    ) -> (PolicyTable, f64) {
        let mut pop: Vec<PolicyTable> = vec![self.best.0.clone()];
        for _ in 0..self.population / 2 {
            pop.push(mutate_table(&self.best.0, self.mutation_p, &mut self.rng));
        }
        while pop.len() < self.population {
            let m = mutate_table(&self.best.0, self.mutation_p * 2.0, &mut self.rng);
            pop.push(crossover_table(&self.best.0, &m, &mut self.rng));
        }
        // Re-evaluate the incumbent too (rewards are noisy and the
        // workload may have drifted under it).
        let mut best: Option<(PolicyTable, f64)> = None;
        for cand in pop {
            let r = reward_of(&cand);
            if best.as_ref().is_none_or(|(_, br)| r > *br) {
                best = Some((cand, r));
            }
        }
        let (table, reward) = best.expect("population non-empty");
        self.best = (table.clone(), reward);
        (table, reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::KeyContention;

    fn ctx(txn_type: u8, ops_done: usize) -> OpCtx {
        OpCtx {
            key: 0,
            ops_done,
            txn_len_hint: 10,
            txn_type,
            contention: KeyContention::default(),
        }
    }

    #[test]
    fn table_lookup_by_type_and_op() {
        let mut table = vec![ActionEntry::default(); MAX_TYPES * MAX_OPS];
        table[table_index(1, 3)] = ActionEntry {
            read_action: 1,
            write_action: 1,
        };
        let pj = PolyjuiceCc::new(table);
        assert_eq!(
            pj.read_decision(&ctx(1, 3)),
            ReadDecision::Proceed(ReadMode::LockShared)
        );
        assert_eq!(
            pj.read_decision(&ctx(0, 3)),
            ReadDecision::Proceed(ReadMode::Snapshot),
            "other type unaffected"
        );
        assert_eq!(
            pj.write_decision(&ctx(1, 3)),
            WriteDecision::Proceed(WriteMode::LockExclusive)
        );
    }

    #[test]
    fn op_index_clamped() {
        let pj = PolyjuiceCc::default_policy();
        // ops beyond MAX_OPS reuse the last entry instead of panicking.
        let _ = pj.read_decision(&ctx(0, 999));
    }

    #[test]
    fn contention_is_ignored() {
        // The defining contrast with NeurDB(CC): identical decisions on
        // cold and scorching keys.
        let pj = PolyjuiceCc::default_policy();
        let mut hot = ctx(0, 0);
        hot.contention = KeyContention {
            recent_reads: 1e6,
            recent_writes: 1e6,
            recent_aborts: 1e6,
            write_locked: true,
        };
        assert_eq!(pj.read_decision(&ctx(0, 0)), pj.read_decision(&hot));
        assert_eq!(pj.write_decision(&ctx(0, 0)), pj.write_decision(&hot));
    }

    #[test]
    fn evolution_improves_on_synthetic_reward() {
        // Reward = number of locking writes in type 0 (pretend locking is
        // good for this workload); EA should discover that.
        let oracle =
            |t: &PolicyTable| -> f64 { t[0..MAX_OPS].iter().map(|e| e.write_action as f64).sum() };
        let mut trainer =
            PolyjuiceTrainer::new(vec![ActionEntry::default(); MAX_TYPES * MAX_OPS], 7);
        let mut last = f64::NEG_INFINITY;
        for _ in 0..30 {
            let (_, r) = trainer.generation(oracle);
            assert!(r >= last || (r - last).abs() < 1e-9);
            last = r;
        }
        assert!(
            last >= MAX_OPS as f64 * 0.5,
            "EA should lock most writes: {last}"
        );
    }

    #[test]
    fn crossover_mixes_parents() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = vec![
            ActionEntry {
                read_action: 0,
                write_action: 0
            };
            MAX_TYPES * MAX_OPS
        ];
        let b = vec![
            ActionEntry {
                read_action: 1,
                write_action: 1
            };
            MAX_TYPES * MAX_OPS
        ];
        let c = crossover_table(&a, &b, &mut rng);
        let zeros = c.iter().filter(|e| e.read_action == 0).count();
        assert!(
            zeros > 8 && zeros < MAX_TYPES * MAX_OPS - 8,
            "mixed: {zeros}"
        );
    }
}

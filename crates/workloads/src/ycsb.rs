//! YCSB-style transactional micro-benchmark (paper Section 5.1.1):
//! "Each transaction performs 5 selects and 5 updates on a table with 1
//! million records."

use crate::zipf::Zipf;
use neurdb_txn::{Op, TxnEngine, TxnSpec};
use rand::Rng;

/// YCSB workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    pub records: u64,
    pub reads_per_txn: usize,
    pub writes_per_txn: usize,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            records: 1_000_000,
            reads_per_txn: 5,
            writes_per_txn: 5,
            theta: 0.99,
        }
    }
}

/// The YCSB generator: thread-safe via per-call RNG.
#[derive(Debug, Clone)]
pub struct Ycsb {
    pub cfg: YcsbConfig,
    zipf: Zipf,
}

impl Ycsb {
    pub fn new(cfg: YcsbConfig) -> Self {
        Ycsb {
            zipf: Zipf::new(cfg.records, cfg.theta),
            cfg,
        }
    }

    /// Populate the engine's records.
    pub fn load(&self, engine: &TxnEngine) {
        for k in 0..self.cfg.records {
            engine.load(k, k);
        }
    }

    /// Generate one transaction (5 selects + 5 updates by default).
    pub fn transaction(&self, rng: &mut impl Rng) -> TxnSpec {
        let mut ops = Vec::with_capacity(self.cfg.reads_per_txn + self.cfg.writes_per_txn);
        for _ in 0..self.cfg.reads_per_txn {
            ops.push(Op::Read(self.zipf.sample(rng)));
        }
        for _ in 0..self.cfg.writes_per_txn {
            ops.push(Op::Write(self.zipf.sample(rng), rng.gen()));
        }
        TxnSpec::new(0, ops)
    }

    /// A deterministic per-(thread, seq) transaction, for `run_workload`
    /// closures that cannot carry a shared RNG.
    pub fn transaction_for(&self, thread: usize, seq: u64) -> TxnSpec {
        let seed = (thread as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(seq.wrapping_mul(0xD1B54A32D192ED03));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.transaction(&mut rng)
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::{EngineConfig, TwoPhaseLocking};
    use std::sync::Arc;

    fn small() -> Ycsb {
        Ycsb::new(YcsbConfig {
            records: 1000,
            ..Default::default()
        })
    }

    #[test]
    fn transaction_shape_matches_paper() {
        let y = Ycsb::new(YcsbConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = y.transaction(&mut rng);
        assert_eq!(t.ops.len(), 10);
        let reads = t.ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let writes = t.ops.iter().filter(|o| matches!(o, Op::Write(..))).count();
        assert_eq!((reads, writes), (5, 5));
    }

    #[test]
    fn load_and_run() {
        let y = small();
        let engine = Arc::new(neurdb_txn::TxnEngine::new(
            Arc::new(TwoPhaseLocking),
            EngineConfig::default(),
        ));
        y.load(&engine);
        assert_eq!(engine.peek(999), Some(999));
        let spec = y.transaction_for(0, 0);
        neurdb_txn::execute_spec(&engine, &spec).unwrap();
    }

    #[test]
    fn deterministic_per_thread_seq() {
        let y = small();
        let a = y.transaction_for(3, 17);
        let b = y.transaction_for(3, 17);
        assert_eq!(a.ops, b.ops);
        let c = y.transaction_for(4, 17);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn keys_within_range() {
        let y = small();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..100 {
            for op in y.transaction(&mut rng).ops {
                let k = match op {
                    Op::Read(k) | Op::Write(k, _) | Op::Rmw(k, _) => k,
                };
                assert!(k < 1000);
            }
        }
    }
}

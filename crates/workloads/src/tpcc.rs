//! TPC-C-lite: the drift workload of Fig. 7(b).
//!
//! Two transaction profiles over warehouse-partitioned keys:
//! * **NewOrder** (type 0): read the district, read ~10 item stocks,
//!   read-modify-write those stocks, RMW the district next-order counter —
//!   contended on the per-district counter and hot items;
//! * **Payment** (type 1): RMW warehouse YTD, RMW district YTD, RMW a
//!   customer balance — extremely contended on the warehouse row.
//!
//! Drift is induced by changing the warehouse count and thread count
//! between phases (8thr/1wh → 8thr/2wh → 16thr/1wh): contention per
//! warehouse row changes drastically, which is what the CC policy must
//! adapt to.

use neurdb_txn::{Op, TxnEngine, TxnSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key-space layout per warehouse.
const DISTRICTS: u64 = 10;
const CUSTOMERS: u64 = 3000;
const ITEMS: u64 = 10_000;
/// Stride between warehouses in the flat key space.
const WAREHOUSE_STRIDE: u64 = 1_000_000;

/// Key helpers.
pub fn warehouse_key(w: u64) -> u64 {
    w * WAREHOUSE_STRIDE
}
pub fn district_key(w: u64, d: u64) -> u64 {
    w * WAREHOUSE_STRIDE + 1 + d
}
pub fn customer_key(w: u64, c: u64) -> u64 {
    w * WAREHOUSE_STRIDE + 100 + c
}
pub fn stock_key(w: u64, i: u64) -> u64 {
    w * WAREHOUSE_STRIDE + 10_000 + i
}

/// TPC-C-lite configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    pub warehouses: u64,
    /// Fraction of NewOrder transactions (rest are Payment).
    pub neworder_frac: f64,
    /// Items per NewOrder.
    pub order_lines: usize,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 1,
            neworder_frac: 0.5,
            order_lines: 10,
        }
    }
}

/// The generator.
#[derive(Debug, Clone)]
pub struct Tpcc {
    pub cfg: TpccConfig,
}

impl Tpcc {
    pub fn new(cfg: TpccConfig) -> Self {
        Tpcc { cfg }
    }

    /// Load all rows for the configured warehouses.
    pub fn load(&self, engine: &TxnEngine) {
        for w in 0..self.cfg.warehouses {
            engine.load(warehouse_key(w), 0);
            for d in 0..DISTRICTS {
                engine.load(district_key(w, d), 0);
            }
            for c in 0..CUSTOMERS {
                engine.load(customer_key(w, c), 1000);
            }
            for i in 0..ITEMS {
                engine.load(stock_key(w, i), 100);
            }
        }
    }

    /// Load rows for warehouses `[from, to)` (growing the cluster when a
    /// drift phase adds warehouses).
    pub fn load_range(&self, engine: &TxnEngine, from: u64, to: u64) {
        for w in from..to {
            engine.load(warehouse_key(w), 0);
            for d in 0..DISTRICTS {
                engine.load(district_key(w, d), 0);
            }
            for c in 0..CUSTOMERS {
                engine.load(customer_key(w, c), 1000);
            }
            for i in 0..ITEMS {
                engine.load(stock_key(w, i), 100);
            }
        }
    }

    pub fn neworder(&self, rng: &mut impl Rng) -> TxnSpec {
        let w = rng.gen_range(0..self.cfg.warehouses);
        let d = rng.gen_range(0..DISTRICTS);
        let mut ops = Vec::with_capacity(2 + 2 * self.cfg.order_lines);
        ops.push(Op::Read(district_key(w, d)));
        for _ in 0..self.cfg.order_lines {
            // TPC-C item popularity is skewed; approximate with a quadratic
            // skew toward low item ids.
            let u: f64 = rng.gen_range(0.0..1.0);
            let i = ((u * u) * ITEMS as f64) as u64 % ITEMS;
            ops.push(Op::Rmw(stock_key(w, i), 1));
        }
        ops.push(Op::Rmw(district_key(w, d), 1)); // next order id
        TxnSpec::new(0, ops)
    }

    pub fn payment(&self, rng: &mut impl Rng) -> TxnSpec {
        let w = rng.gen_range(0..self.cfg.warehouses);
        let d = rng.gen_range(0..DISTRICTS);
        let c = rng.gen_range(0..CUSTOMERS);
        TxnSpec::new(
            1,
            vec![
                Op::Rmw(warehouse_key(w), 7),
                Op::Rmw(district_key(w, d), 7),
                Op::Rmw(customer_key(w, c), 7),
            ],
        )
    }

    pub fn transaction(&self, rng: &mut impl Rng) -> TxnSpec {
        if rng.gen_bool(self.cfg.neworder_frac) {
            self.neworder(rng)
        } else {
            self.payment(rng)
        }
    }

    /// Deterministic per-(thread, seq) transaction.
    pub fn transaction_for(&self, thread: usize, seq: u64) -> TxnSpec {
        let seed = (thread as u64)
            .wrapping_mul(0xA0761D6478BD642F)
            .wrapping_add(seq.wrapping_mul(0xE7037ED1A0B428DB));
        let mut rng = StdRng::seed_from_u64(seed);
        self.transaction(&mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_txn::{execute_spec, EngineConfig, TwoPhaseLocking, TxnEngine};
    use std::sync::Arc;

    #[test]
    fn key_spaces_disjoint() {
        assert_ne!(warehouse_key(0), district_key(0, 0));
        assert!(district_key(0, 9) < customer_key(0, 0));
        assert!(customer_key(0, 2999) < stock_key(0, 0));
        assert!(stock_key(0, ITEMS - 1) < warehouse_key(1));
    }

    #[test]
    fn neworder_touches_district_and_stocks() {
        let t = Tpcc::new(TpccConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let spec = t.neworder(&mut rng);
        assert_eq!(spec.txn_type, 0);
        assert_eq!(spec.ops.len(), 2 + t.cfg.order_lines);
        assert!(matches!(spec.ops[0], Op::Read(_)));
        assert!(matches!(spec.ops.last(), Some(Op::Rmw(_, 1))));
    }

    #[test]
    fn payment_is_three_rmws() {
        let t = Tpcc::new(TpccConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let spec = t.payment(&mut rng);
        assert_eq!(spec.txn_type, 1);
        assert_eq!(spec.ops.len(), 3);
        assert!(spec.ops.iter().all(|o| matches!(o, Op::Rmw(..))));
    }

    #[test]
    fn load_and_execute() {
        let t = Tpcc::new(TpccConfig {
            warehouses: 1,
            ..Default::default()
        });
        let e = Arc::new(TxnEngine::new(
            Arc::new(TwoPhaseLocking),
            EngineConfig::default(),
        ));
        t.load(&e);
        let spec = t.transaction_for(0, 0);
        execute_spec(&e, &spec).unwrap();
        // Warehouse growth for drift phases.
        t.load_range(&e, 1, 2);
        assert_eq!(e.peek(warehouse_key(1)), Some(0));
    }

    #[test]
    fn mix_respects_fraction() {
        let t = Tpcc::new(TpccConfig {
            neworder_frac: 0.5,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let neworders = (0..1000)
            .filter(|_| t.transaction(&mut rng).txn_type == 0)
            .count();
        assert!((400..600).contains(&neworders), "{neworders}");
    }
}

//! k-means clustering. The paper uses k-means to split the Avazu dataset
//! into five clusters C1..C5 whose alternation simulates data-distribution
//! drift (Section 5.1.1); this is that tool, built from scratch.

use rand::seq::SliceRandom;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    pub centroids: Vec<Vec<f64>>,
    pub assignments: Vec<usize>,
    pub inertia: f64,
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Lloyd's algorithm with k-means++ seeding.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut impl Rng) -> KMeans {
    assert!(k >= 1 && k <= points.len(), "1 <= k <= n");
    let dim = points[0].len();
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points.choose(rng).unwrap().clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::MAX, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            centroids.push(points.choose(rng).unwrap().clone());
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, d) in dists.iter().enumerate() {
            if pick < *d {
                chosen = i;
                break;
            }
            pick -= d;
        }
        centroids.push(points[chosen].clone());
    }
    // Lloyd iterations.
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| sq_dist(p, &centroids[a]).total_cmp(&sq_dist(p, &centroids[b])))
                .unwrap();
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p.iter()) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(assignments.iter())
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeans {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn blobs(rng: &mut impl Rng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut points = Vec::new();
        let mut truth = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..100 {
                points.push(vec![
                    c[0] + rng.gen_range(-1.0..1.0),
                    c[1] + rng.gen_range(-1.0..1.0),
                ]);
                truth.push(ci);
            }
        }
        (points, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let (points, truth) = blobs(&mut rng);
        let km = kmeans(&points, 3, 50, &mut rng);
        // Same-truth points must share a cluster; cross-truth must not.
        for chunk in truth.chunks(100).enumerate() {
            let (ci, labels) = chunk;
            let first = km.assignments[ci * 100];
            assert!(
                labels
                    .iter()
                    .enumerate()
                    .all(|(j, _)| km.assignments[ci * 100 + j] == first),
                "cluster {ci} split"
            );
        }
        let mut distinct: Vec<usize> = (0..3).map(|c| km.assignments[c * 100]).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (points, _) = blobs(&mut rng);
        let k1 = kmeans(&points, 1, 30, &mut rng).inertia;
        let k3 = kmeans(&points, 3, 30, &mut rng).inertia;
        assert!(k3 < k1 * 0.2, "k=3 should slash inertia: {k1} -> {k3}");
    }

    #[test]
    fn converges_and_terminates_early() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let (points, _) = blobs(&mut rng);
        let km = kmeans(&points, 3, 1000, &mut rng);
        assert!(km.iterations < 1000, "should converge before max iters");
    }

    #[test]
    fn k_equals_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let points = vec![vec![1.0], vec![3.0]];
        let km = kmeans(&points, 1, 10, &mut rng);
        assert!((km.centroids[0][0] - 2.0).abs() < 1e-9);
    }
}

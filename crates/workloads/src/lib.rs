//! # neurdb-workloads
//!
//! Workload and dataset generators for every experiment in the NeurDB
//! paper's evaluation (Section 5.1.1):
//!
//! * [`ycsb`] — the transactional micro-benchmark (5 selects + 5 updates
//!   per transaction, 1M records, zipfian keys) behind Fig. 7(a);
//! * [`tpcc`] — TPC-C-lite NewOrder/Payment with warehouse/thread drift
//!   phases behind Fig. 7(b);
//! * [`avazu`] — synthetic 22-attribute CTR stream with k-means clusters
//!   C1..C5 (workload E, Figs. 6(a–c));
//! * [`diabetes`] — synthetic 43-attribute classification stream
//!   (workload H, Fig. 6(a));
//! * [`stats`] — the 8-table / 8-SPJ-query STATS clone with
//!   Original/Mild/Severe drift behind Fig. 8;
//! * [`kmeans`] / [`zipf`] — the clustering and skew primitives the above
//!   are built from.

pub mod avazu;
pub mod diabetes;
pub mod kmeans;
pub mod stats;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use avazu::{clustered_corpus, AvazuGen, AvazuRow, AVAZU_CLUSTERS, AVAZU_FIELDS};
pub use diabetes::{DiabetesGen, DiabetesRow, DIABETES_FIELDS};
pub use kmeans::{kmeans, KMeans};
pub use stats::{drift_statements, query_graph, stats_queries, DriftLevel, StatsQuery};
pub use tpcc::{Tpcc, TpccConfig};
pub use ycsb::{Ycsb, YcsbConfig};
pub use zipf::Zipf;

//! Zipfian key chooser (the YCSB request distribution).
//!
//! Implements the Gray et al. rejection-free inverse-CDF approximation
//! used by the original YCSB `ZipfianGenerator`.

use rand::Rng;

/// Zipfian distribution over `0..n` with skew `theta` (YCSB default 0.99).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; integral approximation for large n keeps
        // construction O(1)-ish without materially changing the skew.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draw a key in `0..n` (0 is the hottest).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    #[allow(dead_code)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn skew_concentrates_on_small_keys() {
        let z = Zipf::new(1_000_000, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut hot = 0;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 1000 {
                hot += 1;
            }
        }
        // With theta=0.99 the top 0.1% of keys draw a large share.
        assert!(
            hot as f64 / total as f64 > 0.3,
            "hot share {}",
            hot as f64 / total as f64
        );
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zero_theta_is_near_uniform() {
        let z = Zipf::new(1000, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut top_decile = 0;
        let total = 50_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                top_decile += 1;
            }
        }
        let share = top_decile as f64 / total as f64;
        assert!((share - 0.1).abs() < 0.05, "share {share}");
    }
}

//! Synthetic STATS: the OLAP benchmark of Fig. 8 — 8 tables from the
//! Stats Stack Exchange network with 8 SPJ queries, plus the drift
//! protocol (random inserts/updates/deletes, following ALECE).
//!
//! Table cardinalities approximate the real STATS-CEB benchmark; join
//! selectivities encode the FK structure (users ← posts ← comments /
//! votes / postHistory / postLinks, users ← badges, posts ← tags).

use neurdb_qo::{JoinEdge, JoinGraph, TableInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Indexes of the 8 STATS tables.
pub const USERS: usize = 0;
pub const POSTS: usize = 1;
pub const COMMENTS: usize = 2;
pub const BADGES: usize = 3;
pub const VOTES: usize = 4;
pub const POST_HISTORY: usize = 5;
pub const POST_LINKS: usize = 6;
pub const TAGS: usize = 7;

pub const TABLE_NAMES: [&str; 8] = [
    "users",
    "posts",
    "comments",
    "badges",
    "votes",
    "postHistory",
    "postLinks",
    "tags",
];

/// Approximate real STATS row counts.
pub const TABLE_ROWS: [f64; 8] = [
    40_325.0,  // users
    91_976.0,  // posts
    174_305.0, // comments
    79_851.0,  // badges
    328_064.0, // votes
    303_187.0, // postHistory
    11_102.0,  // postLinks
    1_032.0,   // tags
];

/// FK edges `(a, b, selectivity)`: |A ⋈ B| = sel·|A|·|B| approximating
/// key/foreign-key joins (sel ≈ 1/|referenced table|).
fn fk_edges() -> Vec<(usize, usize, f64)> {
    vec![
        (USERS, POSTS, 1.0 / TABLE_ROWS[USERS]),
        (USERS, BADGES, 1.0 / TABLE_ROWS[USERS]),
        (USERS, COMMENTS, 1.0 / TABLE_ROWS[USERS]),
        (POSTS, COMMENTS, 1.0 / TABLE_ROWS[POSTS]),
        (POSTS, VOTES, 1.0 / TABLE_ROWS[POSTS]),
        (POSTS, POST_HISTORY, 1.0 / TABLE_ROWS[POSTS]),
        (POSTS, POST_LINKS, 1.0 / TABLE_ROWS[POSTS]),
        (POSTS, TAGS, 4.0 / TABLE_ROWS[TAGS]), // posts carry ~4 tags
    ]
}

/// Drift levels of the Fig. 8 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftLevel {
    Original,
    Mild,
    Severe,
}

impl DriftLevel {
    pub fn severity(self) -> f64 {
        match self {
            DriftLevel::Original => 0.0,
            DriftLevel::Mild => 0.35,
            DriftLevel::Severe => 1.0,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DriftLevel::Original => "Original STATS",
            DriftLevel::Mild => "STATS w. Mild Drift",
            DriftLevel::Severe => "STATS w. Severe Drift",
        }
    }
}

/// The 8 SPJ queries: table subsets with per-table local-predicate
/// selectivities. Modeled on the STATS-CEB query families.
pub struct StatsQuery {
    pub id: usize,
    pub tables: Vec<usize>,
    pub selectivities: Vec<f64>,
    pub sql: String,
}

/// Build the 8 SPJ query definitions.
pub fn stats_queries() -> Vec<StatsQuery> {
    let q = |id: usize, tables: Vec<usize>, selectivities: Vec<f64>| {
        let names: Vec<&str> = tables.iter().map(|t| TABLE_NAMES[*t]).collect();
        let mut preds = Vec::new();
        // Join predicates along the FK chain (informal but parseable SQL).
        for w in tables.windows(2) {
            preds.push(format!(
                "{}.id = {}.ref_id",
                TABLE_NAMES[w[0]], TABLE_NAMES[w[1]]
            ));
        }
        for (t, s) in tables.iter().zip(selectivities.iter()) {
            if *s < 1.0 {
                preds.push(format!(
                    "{}.score > {}",
                    TABLE_NAMES[*t],
                    (100.0 * (1.0 - s)) as i64
                ));
            }
        }
        let sql = format!(
            "SELECT COUNT(*) FROM {} WHERE {}",
            names.join(", "),
            preds.join(" AND ")
        );
        StatsQuery {
            id,
            tables,
            selectivities,
            sql,
        }
    };
    vec![
        q(1, vec![USERS, POSTS], vec![0.5, 0.8]),
        q(2, vec![USERS, POSTS, COMMENTS], vec![1.0, 0.4, 0.6]),
        q(3, vec![POSTS, VOTES], vec![0.3, 1.0]),
        q(4, vec![USERS, BADGES, COMMENTS], vec![0.7, 1.0, 0.2]),
        q(
            5,
            vec![POSTS, COMMENTS, VOTES, POST_HISTORY],
            vec![0.5, 0.5, 0.9, 0.3],
        ),
        q(6, vec![USERS, POSTS, POST_LINKS], vec![0.9, 0.6, 1.0]),
        q(7, vec![POSTS, TAGS, VOTES], vec![0.4, 0.8, 0.5]),
        q(
            8,
            vec![USERS, POSTS, COMMENTS, VOTES, POST_HISTORY],
            vec![0.8, 0.7, 0.4, 0.6, 0.5],
        ),
    ]
}

/// Materialize the join graph of a query at a drift level. Drift is
/// seeded deterministically per (query, level) so every optimizer sees the
/// same drifted world — estimates stay stale, as in the paper's protocol
/// of random inserts/updates/deletes.
pub fn query_graph(query: &StatsQuery, level: DriftLevel, seed: u64) -> JoinGraph {
    let edges = fk_edges();
    let tables: Vec<TableInfo> = query
        .tables
        .iter()
        .zip(query.selectivities.iter())
        .map(|(&t, &sel)| TableInfo {
            name: TABLE_NAMES[t].to_string(),
            est_rows: TABLE_ROWS[t] * sel,
            true_rows: TABLE_ROWS[t] * sel,
            est_selectivity: sel,
        })
        .collect();
    // Remap global edges onto the query's local table indexes.
    let mut joins = Vec::new();
    for (a, b, sel) in edges {
        let la = query.tables.iter().position(|t| *t == a);
        let lb = query.tables.iter().position(|t| *t == b);
        if let (Some(la), Some(lb)) = (la, lb) {
            joins.push(JoinEdge {
                a: la,
                b: lb,
                est_sel: sel,
                true_sel: sel,
            });
        }
    }
    let g = JoinGraph {
        tables,
        joins,
        system: Default::default(),
    };
    if level == DriftLevel::Original {
        g
    } else {
        let mut rng = StdRng::seed_from_u64(seed ^ (query.id as u64) << 8);
        g.drift(level.severity(), &mut rng)
    }
}

/// Random data-modification statements simulating the ALECE-style drift
/// driver ("we execute inserts/updates/deletes with randomly generated
/// data values"). Returned as SQL strings runnable against a NeurDB-RS
/// session holding the STATS schema.
pub fn drift_statements(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = TABLE_NAMES[rng.gen_range(0..TABLE_NAMES.len())];
        match rng.gen_range(0..3) {
            0 => out.push(format!(
                "INSERT INTO {t} (id, ref_id, score) VALUES ({}, {}, {})",
                1_000_000 + i,
                rng.gen_range(0..100_000),
                rng.gen_range(0..100)
            )),
            1 => out.push(format!(
                "UPDATE {t} SET score = {} WHERE id = {}",
                rng.gen_range(0..100),
                rng.gen_range(0..100_000)
            )),
            _ => out.push(format!(
                "DELETE FROM {t} WHERE id = {}",
                rng.gen_range(0..100_000)
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_sql::parse;

    #[test]
    fn eight_queries_over_eight_tables() {
        let qs = stats_queries();
        assert_eq!(qs.len(), 8);
        let mut used: Vec<usize> = qs.iter().flat_map(|q| q.tables.clone()).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 8, "all 8 tables appear somewhere");
    }

    #[test]
    fn query_sql_is_parseable() {
        for q in stats_queries() {
            parse(&q.sql).unwrap_or_else(|e| panic!("q{} unparseable: {e}\n{}", q.id, q.sql));
        }
    }

    #[test]
    fn graphs_are_connected_spj() {
        for q in stats_queries() {
            let g = query_graph(&q, DriftLevel::Original, 1);
            assert_eq!(g.num_tables(), q.tables.len());
            assert!(!g.joins.is_empty());
            // Every table participates in at least one join.
            for i in 0..g.num_tables() {
                assert!(
                    g.joins.iter().any(|e| e.a == i || e.b == i),
                    "q{} table {i} dangling",
                    q.id
                );
            }
        }
    }

    #[test]
    fn drift_levels_scale_divergence() {
        let qs = stats_queries();
        let q = &qs[7]; // the 5-way join
        let orig = query_graph(q, DriftLevel::Original, 42);
        let mild = query_graph(q, DriftLevel::Mild, 42);
        let severe = query_graph(q, DriftLevel::Severe, 42);
        let gap = |g: &JoinGraph| -> f64 {
            g.tables
                .iter()
                .map(|t| (t.true_rows / t.est_rows).ln().abs())
                .sum()
        };
        assert_eq!(gap(&orig), 0.0);
        assert!(
            gap(&severe) > gap(&mild),
            "{} !> {}",
            gap(&severe),
            gap(&mild)
        );
    }

    #[test]
    fn drift_is_deterministic_per_seed() {
        let qs = stats_queries();
        let a = query_graph(&qs[0], DriftLevel::Severe, 7);
        let b = query_graph(&qs[0], DriftLevel::Severe, 7);
        for (x, y) in a.tables.iter().zip(b.tables.iter()) {
            assert_eq!(x.true_rows, y.true_rows);
        }
    }

    #[test]
    fn drift_statements_are_parseable() {
        for s in drift_statements(50, 3) {
            parse(&s).unwrap_or_else(|e| panic!("{e}: {s}"));
        }
    }
}

//! Synthetic Diabetes: the Healthcare (H) workload — disease progression
//! prediction, 43 attributes after scaling (paper Section 5.1.1).
//!
//! The UCI dataset scaled to ~5.2M rows is substituted by a generator
//! whose first eight attributes mirror the classic Pima features
//! (pregnancies, glucose, blood pressure, skin thickness, insulin, BMI,
//! pedigree, age) and whose label follows a logistic rule over glucose,
//! BMI and age — so `PREDICT CLASS OF outcome` has real signal to learn.
//! Values are emitted pre-discretized into categorical buckets, which is
//! how the ArmNet analytics model consumes structured data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of attributes, matching the paper's scaled dataset.
pub const DIABETES_FIELDS: usize = 43;

/// One patient record: 43 bucketized attributes + outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DiabetesRow {
    pub fields: Vec<u64>,
    pub outcome: bool,
}

/// The generator.
pub struct DiabetesGen {
    /// Weights of the hidden logistic label rule.
    w_glucose: f64,
    w_bmi: f64,
    w_age: f64,
    bias: f64,
}

impl DiabetesGen {
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        DiabetesGen {
            w_glucose: 3.0 + rng.gen_range(-0.5..0.5),
            w_bmi: 2.0 + rng.gen_range(-0.5..0.5),
            w_age: 1.0 + rng.gen_range(-0.3..0.3),
            bias: -3.2,
        }
    }

    pub fn row(&self, rng: &mut impl Rng) -> DiabetesRow {
        // Core clinical features in natural units.
        let pregnancies = rng.gen_range(0..15u64);
        let glucose = 70.0 + rng.gen_range(0.0..130.0);
        let blood_pressure = 50.0 + rng.gen_range(0.0..70.0);
        let skin = rng.gen_range(0.0..60.0);
        let insulin = rng.gen_range(0.0..400.0);
        let bmi = 18.0 + rng.gen_range(0.0..30.0);
        let pedigree = rng.gen_range(0.0..2.0);
        let age = 20.0 + rng.gen_range(0.0..60.0);
        // Hidden label rule.
        let z = self.w_glucose * ((glucose - 70.0) / 130.0)
            + self.w_bmi * ((bmi - 18.0) / 30.0)
            + self.w_age * ((age - 20.0) / 60.0)
            + self.bias;
        let p = 1.0 / (1.0 + (-z).exp());
        let outcome = rng.gen_bool(p.clamp(0.01, 0.99));
        // Bucketize into categorical ids; the remaining 35 attributes are
        // derived lab panels + noise channels (the "scaling" of the paper's
        // dataset).
        let mut fields = Vec::with_capacity(DIABETES_FIELDS);
        fields.push(pregnancies);
        fields.push((glucose / 5.0) as u64);
        fields.push((blood_pressure / 5.0) as u64);
        fields.push((skin / 3.0) as u64);
        fields.push((insulin / 20.0) as u64);
        fields.push((bmi / 2.0) as u64);
        fields.push((pedigree * 10.0) as u64);
        fields.push((age / 5.0) as u64);
        for i in 8..DIABETES_FIELDS {
            if i % 3 == 0 {
                // Correlated channel (derived from glucose).
                fields.push(((glucose + i as f64) / 7.0) as u64);
            } else {
                fields.push(rng.gen_range(0..50u64));
            }
        }
        DiabetesRow { fields, outcome }
    }

    pub fn batch(&self, n: usize, rng: &mut impl Rng) -> Vec<DiabetesRow> {
        (0..n).map(|_| self.row(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_43_fields() {
        let g = DiabetesGen::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(g.row(&mut rng).fields.len(), DIABETES_FIELDS);
    }

    #[test]
    fn outcome_correlates_with_glucose() {
        let g = DiabetesGen::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let rows = g.batch(5000, &mut rng);
        let avg = |pred: bool| -> f64 {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.outcome == pred)
                .map(|r| r.fields[1] as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            avg(true) > avg(false) + 1.0,
            "diabetic glucose {} should exceed healthy {}",
            avg(true),
            avg(false)
        );
    }

    #[test]
    fn base_rate_sensible() {
        let g = DiabetesGen::new(5);
        let mut rng = StdRng::seed_from_u64(6);
        let rows = g.batch(3000, &mut rng);
        let rate = rows.iter().filter(|r| r.outcome).count() as f64 / 3000.0;
        assert!((0.05..0.7).contains(&rate), "rate {rate}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let g = DiabetesGen::new(7);
        let mut r1 = StdRng::seed_from_u64(8);
        let mut r2 = StdRng::seed_from_u64(8);
        assert_eq!(g.row(&mut r1), g.row(&mut r2));
    }
}

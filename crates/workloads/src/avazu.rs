//! Synthetic Avazu: the E-commerce (E) workload — click-through-rate
//! prediction over 22 categorical attributes (paper Section 5.1.1).
//!
//! The real Avazu dataset (40.4M ad impressions) is not redistributable
//! here; this generator produces a structurally equivalent stream: 22
//! categorical fields drawn from a mixture of latent user-segment
//! distributions, with a click probability that depends on segment-specific
//! feature interactions. As in the paper, k-means over the generated rows
//! yields five clusters C1..C5; switching the training stream from Ci to
//! Ci+1 simulates data-distribution drift (the Fig. 6(c) protocol).

use crate::kmeans::kmeans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of attributes, matching Avazu.
pub const AVAZU_FIELDS: usize = 22;
/// Number of drift clusters (C1..C5).
pub const AVAZU_CLUSTERS: usize = 5;

/// One impression: 22 categorical values and a click label.
#[derive(Debug, Clone, PartialEq)]
pub struct AvazuRow {
    pub fields: Vec<u64>,
    pub click: bool,
}

/// The generator: per-segment categorical distributions + label rules.
pub struct AvazuGen {
    /// Per segment, per field: the modal value and spread.
    modes: Vec<Vec<u64>>,
    /// Per segment: which two fields interact to drive clicks.
    interact: Vec<(usize, usize)>,
    vocab: u64,
}

impl AvazuGen {
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab = 1000;
        let modes = (0..AVAZU_CLUSTERS)
            .map(|_| (0..AVAZU_FIELDS).map(|_| rng.gen_range(0..vocab)).collect())
            .collect();
        let interact = (0..AVAZU_CLUSTERS)
            .map(|_| {
                let a = rng.gen_range(0..AVAZU_FIELDS);
                let mut b = rng.gen_range(0..AVAZU_FIELDS);
                while b == a {
                    b = rng.gen_range(0..AVAZU_FIELDS);
                }
                (a, b)
            })
            .collect();
        AvazuGen {
            modes,
            interact,
            vocab,
        }
    }

    /// Sample one row from segment `cluster`.
    pub fn row(&self, cluster: usize, rng: &mut impl Rng) -> AvazuRow {
        let cluster = cluster % AVAZU_CLUSTERS;
        let modes = &self.modes[cluster];
        let fields: Vec<u64> = (0..AVAZU_FIELDS)
            .map(|f| {
                // Heavily concentrated around the segment mode (categorical
                // ad features are extremely skewed) with a 10% long tail.
                if rng.gen_bool(0.9) {
                    (modes[f] + rng.gen_range(0..8)) % self.vocab
                } else {
                    rng.gen_range(0..self.vocab)
                }
            })
            .collect();
        // Segment-specific click rule: a near-deterministic interaction of
        // two fields, so the label function itself drifts across clusters
        // (a model fit on Ci mispredicts Ci+1 sharply — the loss spike of
        // Fig. 6(c)).
        let (a, b) = self.interact[cluster];
        let score = (fields[a] % 7) as f64 / 7.0 + (fields[b] % 5) as f64 / 5.0;
        let p_click = if score > 0.9 { 0.93 } else { 0.05 };
        AvazuRow {
            fields,
            click: rng.gen_bool(p_click),
        }
    }

    /// Sample a batch from one segment.
    pub fn batch(&self, cluster: usize, n: usize, rng: &mut impl Rng) -> Vec<AvazuRow> {
        (0..n).map(|_| self.row(cluster, rng)).collect()
    }
}

/// Reproduce the paper's protocol: generate a corpus, run **k-means** over
/// a numeric projection of the rows, and return per-cluster row pools
/// C1..C5 ordered by cluster size (descending).
pub fn clustered_corpus(gen: &AvazuGen, rows_per_segment: usize, seed: u64) -> Vec<Vec<AvazuRow>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Vec::with_capacity(rows_per_segment * AVAZU_CLUSTERS);
    for c in 0..AVAZU_CLUSTERS {
        corpus.extend(gen.batch(c, rows_per_segment, &mut rng));
    }
    // Numeric projection for k-means: normalized field values.
    let points: Vec<Vec<f64>> = corpus
        .iter()
        .map(|r| r.fields.iter().map(|v| *v as f64 / 1000.0).collect())
        .collect();
    let km = kmeans(&points, AVAZU_CLUSTERS, 30, &mut rng);
    let mut pools: Vec<Vec<AvazuRow>> = vec![Vec::new(); AVAZU_CLUSTERS];
    for (row, &a) in corpus.into_iter().zip(km.assignments.iter()) {
        pools[a].push(row);
    }
    pools.sort_by_key(|p| std::cmp::Reverse(p.len()));
    pools
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_22_fields() {
        let g = AvazuGen::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        let r = g.row(0, &mut rng);
        assert_eq!(r.fields.len(), AVAZU_FIELDS);
    }

    #[test]
    fn segments_have_distinct_distributions() {
        let g = AvazuGen::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        // Modal value of field 0 differs between segments (w.h.p.).
        let mode_of = |cluster: usize, rng: &mut StdRng| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..300 {
                let r = g.row(cluster, rng);
                *counts.entry(r.fields[0] / 8).or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
        };
        let m0 = mode_of(0, &mut rng);
        let m1 = mode_of(1, &mut rng);
        let m2 = mode_of(2, &mut rng);
        assert!(m0 != m1 || m1 != m2, "segments should differ");
    }

    #[test]
    fn click_rate_is_plausible() {
        let g = AvazuGen::new(5);
        let mut rng = StdRng::seed_from_u64(6);
        let batch = g.batch(0, 2000, &mut rng);
        let rate = batch.iter().filter(|r| r.click).count() as f64 / 2000.0;
        assert!((0.05..0.9).contains(&rate), "rate {rate}");
    }

    #[test]
    fn label_rule_drifts_across_clusters() {
        // The same feature vector should have different click propensity
        // under different segments' rules — measured via rule indices.
        let g = AvazuGen::new(7);
        let mut distinct = std::collections::HashSet::new();
        for c in 0..AVAZU_CLUSTERS {
            distinct.insert(g.interact[c]);
        }
        assert!(distinct.len() >= 3, "interaction rules should vary");
    }

    #[test]
    fn kmeans_clusters_nonempty() {
        let g = AvazuGen::new(8);
        let pools = clustered_corpus(&g, 100, 9);
        assert_eq!(pools.len(), AVAZU_CLUSTERS);
        let nonempty = pools.iter().filter(|p| !p.is_empty()).count();
        assert!(nonempty >= 3, "k-means should find several clusters");
        // Ordered by size descending.
        assert!(pools.windows(2).all(|w| w[0].len() >= w[1].len()));
    }
}

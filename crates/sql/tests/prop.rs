//! Property-based tests for the SQL front-end.

use neurdb_sql::{lex, parse, Literal, Statement, Token};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}".prop_filter("not a keyword", |s| {
        // A lexed identifier must stay an identifier.
        matches!(lex(s).as_deref(), Ok([Token::Ident(_)]))
    })
}

proptest! {
    /// Literals survive display -> re-parse through a VALUES clause.
    /// `i64::MIN` is excluded: its display text lexes as unary minus on a
    /// magnitude one past `i64::MAX`, which integer lexers (C, most SQLs)
    /// reject — the known two's-complement asymmetry, not a codec bug.
    #[test]
    fn literal_display_reparses(
        i in any::<i64>().prop_filter("i64::MIN does not re-lex", |i| *i != i64::MIN),
        s in "[a-zA-Z0-9 ']{0,16}",
    ) {
        let lit = Literal::Str(s.clone());
        let sql = format!("INSERT INTO t VALUES ({i}, {lit})");
        let stmt = parse(&sql).unwrap();
        let Statement::Insert { rows, .. } = stmt else { panic!() };
        prop_assert_eq!(rows[0].len(), 2);
    }

    /// Any generated identifier works as table and column names across
    /// the whole statement surface.
    #[test]
    fn identifiers_parse_everywhere(t in arb_ident(), c in arb_ident()) {
        parse(&format!("CREATE TABLE {t} ({c} INT)")).unwrap();
        parse(&format!("SELECT {c} FROM {t} WHERE {c} > 0")).unwrap();
        parse(&format!("INSERT INTO {t} ({c}) VALUES (1)")).unwrap();
        parse(&format!("UPDATE {t} SET {c} = {c} + 1")).unwrap();
        parse(&format!("DELETE FROM {t} WHERE {c} = 1")).unwrap();
        parse(&format!("PREDICT VALUE OF {c} FROM {t} TRAIN ON *")).unwrap();
    }

    /// The lexer never panics on arbitrary input (errors are Results).
    #[test]
    fn lexer_total(input in "\\PC{0,64}") {
        let _ = lex(&input);
    }

    /// The parser never panics on arbitrary token-ish text.
    #[test]
    fn parser_total(input in "[a-zA-Z0-9 ,.*()<>=!'_-]{0,80}") {
        let _ = parse(&input);
    }

    /// Numeric literals round-trip through the lexer.
    #[test]
    fn numbers_lex_exactly(n in any::<u32>()) {
        let toks = lex(&n.to_string()).unwrap();
        prop_assert_eq!(toks, vec![Token::Int(n as i64)]);
    }

    /// Parenthesization is respected: `a OP (b OP c)` differs from
    /// `(a OP b) OP c` in the AST.
    #[test]
    fn parens_shape_ast(a in 1i64..100, b in 1i64..100, c in 1i64..100) {
        let left = parse(&format!("SELECT ({a} - {b}) - {c} FROM t")).unwrap();
        let right = parse(&format!("SELECT {a} - ({b} - {c}) FROM t")).unwrap();
        prop_assert_ne!(&left, &right);
        // Default associativity is left.
        let flat = parse(&format!("SELECT {a} - {b} - {c} FROM t")).unwrap();
        prop_assert_eq!(&flat, &left);
    }
}

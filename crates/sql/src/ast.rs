//! Abstract syntax tree for NeurDB SQL, including the `PREDICT` extension.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Literal values in SQL text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Lte => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Gte => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Unqualified column reference.
    Column(String),
    /// `table.column`.
    Qualified(String, String),
    Literal(Literal),
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// Aggregate call; `arg = None` means `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    pub fn lit(l: Literal) -> Expr {
        Expr::Literal(l)
    }

    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// All column names referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Qualified(t, c) => out.push(format!("{t}.{c}")),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
        }
    }
}

/// Column data types in DDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeName {
    Int,
    Float,
    Text,
    Bool,
}

/// Column spec in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSpec {
    pub name: String,
    pub ty: TypeName,
    pub not_null: bool,
    pub unique: bool,
    pub primary_key: bool,
}

/// A projected item in `SELECT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    Wildcard,
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in `FROM`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the table binds to in this query (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// `SELECT` statement (SPJ + aggregates + ORDER/LIMIT).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub predicate: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<(Expr, SortOrder)>,
    pub limit: Option<u64>,
}

/// `TRAIN ON` clause of a PREDICT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainOn {
    /// `TRAIN ON *` — all columns except unique-constrained ones and the
    /// prediction target (paper Section 2.3).
    Star,
    /// Explicit feature columns.
    Columns(Vec<String>),
}

/// The AI task requested by a PREDICT statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictTask {
    /// `PREDICT VALUE OF` — regression.
    Regression,
    /// `PREDICT CLASS OF` — classification.
    Classification,
}

/// The NeurDB `PREDICT` statement:
///
/// ```sql
/// PREDICT VALUE OF score FROM review WHERE brand_name = 'x'
///   TRAIN ON * WITH brand_name <> 'x'
/// PREDICT CLASS OF outcome FROM diabetes
///   TRAIN ON pregnancies, glucose VALUES (6, 148), (1, 85)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictStmt {
    pub task: PredictTask,
    /// The target column to predict.
    pub target: String,
    pub table: String,
    /// `WHERE`: selects rows whose target to predict (inference set).
    pub predicate: Option<Expr>,
    pub train_on: TrainOn,
    /// `WITH`: filters the training rows.
    pub with: Option<Expr>,
    /// `VALUES`: inline feature rows to run inference on.
    pub values: Option<Vec<Vec<Literal>>>,
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnSpec>,
    },
    DropTable {
        name: String,
    },
    CreateIndex {
        table: String,
        column: String,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    Select(SelectStmt),
    Predict(PredictStmt),
    /// `EXPLAIN [ANALYZE] SELECT ...`: show the physical plan; with
    /// ANALYZE, execute it and report per-operator row/time counters.
    Explain {
        analyze: bool,
        stmt: Box<Statement>,
    },
    /// `SET name = literal`: session configuration (e.g.
    /// `SET parallelism = 4` caps the planner's per-scan degree of
    /// parallelism).
    Set {
        name: String,
        value: Literal,
    },
    /// `SHOW name [LIKE 'pattern'] [<id>] [FORMAT fmt]`: introspection.
    /// The core facade answers catalog and session items (`SHOW TABLES`,
    /// `SHOW parallelism`, `SHOW METRICS LIKE 'wal.%'`, `SHOW TRACE
    /// <id> FORMAT json`); the server layer answers server-scoped items
    /// (`SHOW SESSIONS`). `arg` carries the LIKE pattern or trace id;
    /// `format` carries the FORMAT word, lowercased.
    Show {
        name: String,
        arg: Option<String>,
        format: Option<String>,
    },
    /// `BEGIN [TRANSACTION | WORK]`: open a multi-statement transaction
    /// on the session.
    Begin,
    /// `COMMIT [TRANSACTION | WORK]`: make the open transaction's writes
    /// visible and durable.
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]`: discard the open transaction's
    /// writes.
    Rollback,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_columns_walks_tree() {
        let e = Expr::binary(
            BinaryOp::And,
            Expr::binary(BinaryOp::Eq, Expr::col("a"), Expr::lit(Literal::Int(1))),
            Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(Expr::Qualified("t".into(), "b".into())),
            },
        );
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "t.b".to_string()]
        );
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            name: "posts".into(),
            alias: Some("p".into()),
        };
        assert_eq!(t.binding(), "p");
        let t2 = TableRef {
            name: "posts".into(),
            alias: None,
        };
        assert_eq!(t2.binding(), "posts");
    }

    #[test]
    fn literal_display_escapes() {
        assert_eq!(Literal::Str("it's".into()).to_string(), "'it''s'");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }
}

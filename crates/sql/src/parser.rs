//! Recursive-descent parser for NeurDB SQL.
//!
//! Grammar (informal):
//!
//! ```text
//! stmt     := create_table | drop_table | create_index | insert | update
//!           | delete | select | predict | txn_control
//! txn_control := (BEGIN | COMMIT | ROLLBACK) [TRANSACTION | WORK]
//! predict  := PREDICT (VALUE | CLASS) OF ident FROM ident [WHERE expr]
//!             TRAIN ON (* | ident_list) [WITH expr] [VALUES row_list]
//! select   := SELECT items FROM table_refs [WHERE expr] [GROUP BY exprs]
//!             [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//! expr     := or_expr  (precedence: OR < AND < NOT < cmp < add < mul < unary)
//! ```

use crate::ast::*;
use crate::token::{lex, Keyword, LexError, Token};
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse(input: &str) -> PResult<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept(&Token::Semicolon);
    if !p.at_end() {
        return Err(p.err(&format!("unexpected trailing token {}", p.peek_str())));
    }
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_script(input: &str) -> PResult<Vec<Statement>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
        while p.accept(&Token::Semicolon) {}
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_str(&self) -> String {
        self.peek().map_or("<eof>".to_string(), |t| t.to_string())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: format!("{message} (at token {})", self.pos),
        }
    }

    fn accept(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_kw(&mut self, k: Keyword) -> bool {
        self.accept(&Token::Keyword(k))
    }

    fn expect(&mut self, t: &Token) -> PResult<()> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {t}, found {}", self.peek_str())))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> PResult<()> {
        self.expect(&Token::Keyword(k))
    }

    /// Identifiers; also tolerates keyword-like names usable as identifiers
    /// (e.g. a column named `value` or `class`).
    fn ident(&mut self) -> PResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::Keyword(Keyword::Value)) => Ok("value".to_string()),
            Some(Token::Keyword(Keyword::Class)) => Ok("class".to_string()),
            Some(Token::Keyword(Keyword::Key)) => Ok("key".to_string()),
            Some(Token::Keyword(Keyword::Explain)) => Ok("explain".to_string()),
            Some(Token::Keyword(Keyword::Analyze)) => Ok("analyze".to_string()),
            Some(Token::Keyword(Keyword::Show)) => Ok("show".to_string()),
            other => Err(self.err(&format!(
                "expected identifier, found {}",
                other.map_or("<eof>".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn statement(&mut self) -> PResult<Statement> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Create)) => self.create(),
            Some(Token::Keyword(Keyword::Drop)) => self.drop_table(),
            Some(Token::Keyword(Keyword::Insert)) => self.insert(),
            Some(Token::Keyword(Keyword::Update)) => self.update(),
            Some(Token::Keyword(Keyword::Delete)) => self.delete(),
            Some(Token::Keyword(Keyword::Select)) => Ok(Statement::Select(self.select()?)),
            Some(Token::Keyword(Keyword::Predict)) => self.predict(),
            Some(Token::Keyword(Keyword::Explain)) => self.explain(),
            Some(Token::Keyword(Keyword::Set)) => self.set_stmt(),
            Some(Token::Keyword(Keyword::Show)) => self.show_stmt(),
            Some(Token::Keyword(Keyword::Begin)) => self.txn_control(Statement::Begin),
            Some(Token::Keyword(Keyword::Commit)) => self.txn_control(Statement::Commit),
            Some(Token::Keyword(Keyword::Rollback)) => self.txn_control(Statement::Rollback),
            _ => Err(self.err(&format!("expected statement, found {}", self.peek_str()))),
        }
    }

    /// `BEGIN | COMMIT | ROLLBACK`, each with an optional noise word.
    /// TRANSACTION and WORK are not lexer keywords (they stay usable as
    /// identifiers elsewhere), so they are matched by text here.
    fn txn_control(&mut self, stmt: Statement) -> PResult<Statement> {
        self.pos += 1; // the BEGIN/COMMIT/ROLLBACK keyword itself
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case("transaction") || w.eq_ignore_ascii_case("work") {
                self.pos += 1;
            }
        }
        Ok(stmt)
    }

    /// `SHOW name [LIKE 'pattern'] [<trace-id>] [FORMAT fmt]` — catalog /
    /// session / server introspection. LIKE and FORMAT are not lexer
    /// keywords (they stay usable as identifiers elsewhere), so they are
    /// matched by text, like TRANSACTION/WORK in txn_control.
    fn show_stmt(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Show)?;
        let name = self.ident()?;
        let mut arg = None;
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case("like") {
                self.pos += 1;
                arg = Some(match self.next() {
                    Some(Token::Str(s)) => s,
                    other => {
                        return Err(self.err(&format!(
                            "expected string pattern after LIKE, found {}",
                            other.map_or("<eof>".to_string(), |t| t.to_string())
                        )))
                    }
                });
            }
        }
        // `SHOW TRACE <session>-<seq>`: the id lexes as Int Minus Int,
        // or may be quoted as a single string.
        if arg.is_none() && name.eq_ignore_ascii_case("trace") {
            arg = Some(self.trace_id()?);
        }
        let mut format = None;
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case("format") {
                self.pos += 1;
                format = Some(self.ident()?.to_ascii_lowercase());
            }
        }
        Ok(Statement::Show { name, arg, format })
    }

    /// A `<session>-<seq>` trace id: `5-3` (Int Minus Int) or `'5-3'`.
    fn trace_id(&mut self) -> PResult<String> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            Some(Token::Int(session)) => {
                self.expect(&Token::Minus)?;
                match self.next() {
                    Some(Token::Int(seq)) => Ok(format!("{session}-{seq}")),
                    other => Err(self.err(&format!(
                        "expected statement sequence in trace id, found {}",
                        other.map_or("<eof>".to_string(), |t| t.to_string())
                    ))),
                }
            }
            other => Err(self.err(&format!(
                "expected trace id (<session>-<seq>), found {}",
                other.map_or("<eof>".to_string(), |t| t.to_string())
            ))),
        }
    }

    /// `SET name = literal` — session configuration. `on`/`off` are
    /// accepted as string values (`SET trace = on`): ON is a keyword
    /// (CREATE INDEX ON) and OFF a plain identifier, so neither is a
    /// literal on its own.
    fn set_stmt(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Set)?;
        let name = self.ident()?;
        self.expect(&Token::Eq)?;
        let value = match self.peek() {
            Some(Token::Keyword(Keyword::On)) => {
                self.pos += 1;
                Literal::Str("on".to_string())
            }
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("off") => {
                self.pos += 1;
                Literal::Str("off".to_string())
            }
            _ => self.literal()?,
        };
        Ok(Statement::Set { name, value })
    }

    fn explain(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Explain)?;
        let analyze = self.accept_kw(Keyword::Analyze);
        let inner = self.statement()?;
        if matches!(inner, Statement::Explain { .. }) {
            return Err(self.err("EXPLAIN cannot be nested"));
        }
        Ok(Statement::Explain {
            analyze,
            stmt: Box::new(inner),
        })
    }

    fn create(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Create)?;
        if self.accept_kw(Keyword::Index) {
            self.expect_kw(Keyword::On)?;
            let table = self.ident()?;
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateIndex { table, column });
        }
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let cname = self.ident()?;
            let ty = match self.next() {
                Some(Token::Keyword(Keyword::Int)) => TypeName::Int,
                Some(Token::Keyword(Keyword::Float)) => TypeName::Float,
                Some(Token::Keyword(Keyword::Text)) => TypeName::Text,
                Some(Token::Keyword(Keyword::Bool)) => TypeName::Bool,
                other => {
                    return Err(self.err(&format!(
                        "expected type, found {}",
                        other.map_or("<eof>".to_string(), |t| t.to_string())
                    )))
                }
            };
            let mut spec = ColumnSpec {
                name: cname,
                ty,
                not_null: false,
                unique: false,
                primary_key: false,
            };
            loop {
                if self.accept_kw(Keyword::Not) {
                    self.expect_kw(Keyword::Null)?;
                    spec.not_null = true;
                } else if self.accept_kw(Keyword::Unique) {
                    spec.unique = true;
                } else if self.accept_kw(Keyword::Primary) {
                    self.expect_kw(Keyword::Key)?;
                    spec.primary_key = true;
                    spec.unique = true;
                    spec.not_null = true;
                } else {
                    break;
                }
            }
            columns.push(spec);
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn drop_table(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Drop)?;
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        Ok(Statement::DropTable { name })
    }

    fn insert(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.accept(&Token::LParen) {
            let mut cols = vec![self.ident()?];
            while self.accept(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.expr()?];
            while self.accept(&Token::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let e = self.expr()?;
            assignments.push((col, e));
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        let predicate = if self.accept_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn delete(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let predicate = if self.accept_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn select(&mut self) -> PResult<SelectStmt> {
        self.expect_kw(Keyword::Select)?;
        let mut items = Vec::new();
        loop {
            if self.accept(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.accept_kw(Keyword::As) {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        self.expect_kw(Keyword::From)?;
        let mut from = Vec::new();
        loop {
            let name = self.ident()?;
            let alias = match self.peek() {
                Some(Token::Keyword(Keyword::As)) => {
                    self.pos += 1;
                    Some(self.ident()?)
                }
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            };
            from.push(TableRef { name, alias });
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        let predicate = if self.accept_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.accept(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.accept_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let e = self.expr()?;
                let ord = if self.accept_kw(Keyword::Desc) {
                    SortOrder::Desc
                } else {
                    self.accept_kw(Keyword::Asc);
                    SortOrder::Asc
                };
                order_by.push((e, ord));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw(Keyword::Limit) {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(self.err(&format!(
                        "expected LIMIT count, found {}",
                        other.map_or("<eof>".to_string(), |t| t.to_string())
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    /// The NeurDB PREDICT statement (paper Listings 1 and 2).
    fn predict(&mut self) -> PResult<Statement> {
        self.expect_kw(Keyword::Predict)?;
        let task = if self.accept_kw(Keyword::Value) {
            PredictTask::Regression
        } else if self.accept_kw(Keyword::Class) {
            PredictTask::Classification
        } else {
            return Err(self.err("expected VALUE or CLASS after PREDICT"));
        };
        self.expect_kw(Keyword::Of)?;
        let target = self.ident()?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let predicate = if self.accept_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_kw(Keyword::Train)?;
        self.expect_kw(Keyword::On)?;
        let train_on = if self.accept(&Token::Star) {
            TrainOn::Star
        } else {
            let mut cols = vec![self.ident()?];
            while self.accept(&Token::Comma) {
                cols.push(self.ident()?);
            }
            TrainOn::Columns(cols)
        };
        let with = if self.accept_kw(Keyword::With) {
            Some(self.expr()?)
        } else {
            None
        };
        let values = if self.accept_kw(Keyword::Values) {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = vec![self.literal()?];
                while self.accept(&Token::Comma) {
                    row.push(self.literal()?);
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            Some(rows)
        } else {
            None
        };
        Ok(Statement::Predict(PredictStmt {
            task,
            target,
            table,
            predicate,
            train_on,
            with,
            values,
        }))
    }

    fn literal(&mut self) -> PResult<Literal> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Literal::Int(i)),
            Some(Token::Float(f)) => Ok(Literal::Float(f)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Keyword(Keyword::True)) => Ok(Literal::Bool(true)),
            Some(Token::Keyword(Keyword::False)) => Ok(Literal::Bool(false)),
            Some(Token::Keyword(Keyword::Null)) => Ok(Literal::Null),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(i)) => Ok(Literal::Int(-i)),
                Some(Token::Float(f)) => Ok(Literal::Float(-f)),
                other => Err(self.err(&format!(
                    "expected number after '-', found {}",
                    other.map_or("<eof>".to_string(), |t| t.to_string())
                ))),
            },
            other => Err(self.err(&format!(
                "expected literal, found {}",
                other.map_or("<eof>".to_string(), |t| t.to_string())
            ))),
        }
    }

    // --- expression precedence climbing ---

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> PResult<Expr> {
        if self.accept_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::Neq) => Some(BinaryOp::Neq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Lte) => Some(BinaryOp::Lte),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Gte) => Some(BinaryOp::Gte),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::binary(op, left, right))
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.accept(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::Keyword(Keyword::True)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Some(Token::Keyword(Keyword::False)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Some(Token::Keyword(Keyword::Null)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Null))
            }
            Some(Token::Keyword(k))
                if matches!(
                    k,
                    Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                self.pos += 1;
                let func = match k {
                    Keyword::Count => AggFunc::Count,
                    Keyword::Sum => AggFunc::Sum,
                    Keyword::Avg => AggFunc::Avg,
                    Keyword::Min => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                self.expect(&Token::LParen)?;
                let arg = if self.accept(&Token::Star) {
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect(&Token::RParen)?;
                Ok(Expr::Agg { func, arg })
            }
            Some(Token::Ident(_))
            | Some(Token::Keyword(Keyword::Value))
            | Some(Token::Keyword(Keyword::Class))
            | Some(Token::Keyword(Keyword::Key))
            | Some(Token::Keyword(Keyword::Explain))
            | Some(Token::Keyword(Keyword::Analyze))
            | Some(Token::Keyword(Keyword::Show)) => {
                let first = self.ident()?;
                if self.accept(&Token::Dot) {
                    let second = self.ident()?;
                    Ok(Expr::Qualified(first, second))
                } else {
                    Ok(Expr::Column(first))
                }
            }
            other => Err(self.err(&format!(
                "expected expression, found {}",
                other.map_or("<eof>".to_string(), |t| t.to_string())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_listing_1_regression() {
        let sql = "PREDICT VALUE OF score \
                   FROM review \
                   WHERE brand_name = 'Special Goods' \
                   TRAIN ON * \
                   WITH brand_name <> 'Special Goods'";
        let stmt = parse(sql).unwrap();
        match stmt {
            Statement::Predict(p) => {
                assert_eq!(p.task, PredictTask::Regression);
                assert_eq!(p.target, "score");
                assert_eq!(p.table, "review");
                assert!(p.predicate.is_some());
                assert_eq!(p.train_on, TrainOn::Star);
                assert!(p.with.is_some());
                assert!(p.values.is_none());
            }
            other => panic!("expected PREDICT, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_listing_2_classification() {
        let sql = "PREDICT CLASS OF outcome \
                   FROM diabetes \
                   TRAIN ON pregnancies, glucose, blood_pressure \
                   VALUES (6, 148, 72), (1, 85, 66)";
        let stmt = parse(sql).unwrap();
        match stmt {
            Statement::Predict(p) => {
                assert_eq!(p.task, PredictTask::Classification);
                assert_eq!(
                    p.train_on,
                    TrainOn::Columns(vec![
                        "pregnancies".into(),
                        "glucose".into(),
                        "blood_pressure".into()
                    ])
                );
                let values = p.values.unwrap();
                assert_eq!(values.len(), 2);
                assert_eq!(
                    values[0],
                    vec![Literal::Int(6), Literal::Int(148), Literal::Int(72)]
                );
            }
            other => panic!("expected PREDICT, got {other:?}"),
        }
    }

    #[test]
    fn parses_table_1_workload_queries() {
        // Exactly the two statements of the paper's Table 1.
        let e = parse("PREDICT VALUE OF click_rate FROM avazu TRAIN ON *").unwrap();
        assert!(matches!(e, Statement::Predict(_)));
        let h = parse("PREDICT CLASS OF outcome FROM diabetes TRAIN ON *").unwrap();
        assert!(matches!(h, Statement::Predict(_)));
    }

    #[test]
    fn create_table_with_constraints() {
        let stmt = parse(
            "CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL, age INT, vip BOOL UNIQUE)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "users");
                assert_eq!(columns.len(), 4);
                assert!(columns[0].primary_key && columns[0].unique && columns[0].not_null);
                assert!(columns[1].not_null && !columns[1].unique);
                assert!(columns[3].unique);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_with_joins_order_limit() {
        let stmt = parse(
            "SELECT u.name, COUNT(*) FROM users u, posts p \
             WHERE u.id = p.owner AND p.score > 10 \
             GROUP BY u.name ORDER BY u.name DESC LIMIT 5",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 2);
                assert_eq!(s.from.len(), 2);
                assert_eq!(s.from[1].binding(), "p");
                assert_eq!(s.group_by.len(), 1);
                assert_eq!(s.order_by.len(), 1);
                assert_eq!(s.order_by[0].1, SortOrder::Desc);
                assert_eq!(s.limit, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_update_delete() {
        let i = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match i {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
        let u = parse("UPDATE t SET a = a + 1 WHERE b = 'x'").unwrap();
        assert!(matches!(u, Statement::Update { .. }));
        let d = parse("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(d, Statement::Delete { .. }));
    }

    #[test]
    fn operator_precedence() {
        let stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        // OR is the root: (a=1) OR ((b=2) AND (c=3)).
        match s.predicate.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let stmt = parse("SELECT a + b * c FROM t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        match expr {
            Expr::Binary {
                op: BinaryOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_numbers_and_not() {
        let stmt = parse("SELECT * FROM t WHERE NOT a > -5").unwrap();
        assert!(matches!(stmt, Statement::Select(_)));
    }

    #[test]
    fn create_index() {
        let stmt = parse("CREATE INDEX ON users (id)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateIndex {
                table: "users".into(),
                column: "id".into()
            }
        );
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse("PREDICT").is_err());
        assert!(parse("PREDICT SOMETHING OF x FROM t TRAIN ON *").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage ,").is_err());
        // PREDICT requires TRAIN ON.
        assert!(parse("PREDICT VALUE OF y FROM t").is_err());
    }

    #[test]
    fn explain_variants() {
        let e = parse("EXPLAIN SELECT * FROM t").unwrap();
        match e {
            Statement::Explain { analyze, stmt } => {
                assert!(!analyze);
                assert!(matches!(*stmt, Statement::Select(_)));
            }
            other => panic!("{other:?}"),
        }
        let e = parse("EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1 ORDER BY a LIMIT 3").unwrap();
        assert!(matches!(e, Statement::Explain { analyze: true, .. }));
        // Nested EXPLAIN is rejected; bare EXPLAIN needs a statement.
        assert!(parse("EXPLAIN EXPLAIN SELECT * FROM t").is_err());
        assert!(parse("EXPLAIN").is_err());
    }

    #[test]
    fn set_statement() {
        assert_eq!(
            parse("SET parallelism = 4").unwrap(),
            Statement::Set {
                name: "parallelism".to_string(),
                value: Literal::Int(4),
            }
        );
        assert_eq!(
            parse("SET mode = 'fast'").unwrap(),
            Statement::Set {
                name: "mode".to_string(),
                value: Literal::Str("fast".to_string()),
            }
        );
        assert!(parse("SET parallelism").is_err());
        assert!(parse("SET = 4").is_err());
    }

    #[test]
    fn show_statement() {
        assert_eq!(
            parse("SHOW sessions").unwrap(),
            Statement::Show {
                name: "sessions".to_string(),
                arg: None,
                format: None,
            }
        );
        // Identifier case is preserved (the executor matches
        // case-insensitively, like SET).
        assert_eq!(
            parse("SHOW TABLES;").unwrap(),
            Statement::Show {
                name: "TABLES".to_string(),
                arg: None,
                format: None,
            }
        );
        assert_eq!(
            parse("show Parallelism").unwrap(),
            Statement::Show {
                name: "Parallelism".to_string(),
                arg: None,
                format: None,
            }
        );
        // SHOW needs an item; SHOW stays usable as a column name.
        assert!(parse("SHOW").is_err());
        assert!(parse("SELECT show FROM t WHERE show > 1").is_ok());
    }

    #[test]
    fn observability_statements_parse_generically() {
        // The observability surface rides the generic SHOW/SET grammar:
        // no dedicated keywords, so the parser needs no changes when the
        // executor grows new introspection items.
        assert_eq!(
            parse("SHOW METRICS").unwrap(),
            Statement::Show {
                name: "METRICS".to_string(),
                arg: None,
                format: None,
            }
        );
        assert_eq!(
            parse("SHOW slow_queries").unwrap(),
            Statement::Show {
                name: "slow_queries".to_string(),
                arg: None,
                format: None,
            }
        );
        assert_eq!(
            parse("SET slow_query_ms = 250").unwrap(),
            Statement::Set {
                name: "slow_query_ms".to_string(),
                value: Literal::Int(250),
            }
        );
    }

    #[test]
    fn show_like_trace_and_format_clauses() {
        assert_eq!(
            parse("SHOW METRICS LIKE 'wal.%'").unwrap(),
            Statement::Show {
                name: "METRICS".to_string(),
                arg: Some("wal.%".to_string()),
                format: None,
            }
        );
        assert_eq!(
            parse("SHOW TRACES").unwrap(),
            Statement::Show {
                name: "TRACES".to_string(),
                arg: None,
                format: None,
            }
        );
        // A trace id lexes as Int Minus Int; quoting also works.
        assert_eq!(
            parse("SHOW TRACE 5-3").unwrap(),
            Statement::Show {
                name: "TRACE".to_string(),
                arg: Some("5-3".to_string()),
                format: None,
            }
        );
        assert_eq!(
            parse("SHOW TRACE '12-7' FORMAT json").unwrap(),
            Statement::Show {
                name: "TRACE".to_string(),
                arg: Some("12-7".to_string()),
                format: Some("json".to_string()),
            }
        );
        assert_eq!(
            parse("show trace 1-1 format JSON;").unwrap(),
            Statement::Show {
                name: "trace".to_string(),
                arg: Some("1-1".to_string()),
                format: Some("json".to_string()),
            }
        );
        // LIKE wants a string; TRACE wants an id; and like/format stay
        // usable as ordinary identifiers elsewhere.
        assert!(parse("SHOW METRICS LIKE wal").is_err());
        assert!(parse("SHOW TRACE").is_err());
        assert!(parse("SHOW TRACE 5").is_err());
        assert!(parse("SELECT like FROM t WHERE format > 1").is_ok());
    }

    #[test]
    fn set_accepts_on_off_toggles() {
        assert_eq!(
            parse("SET trace = on").unwrap(),
            Statement::Set {
                name: "trace".to_string(),
                value: Literal::Str("on".to_string()),
            }
        );
        assert_eq!(
            parse("SET trace = OFF;").unwrap(),
            Statement::Set {
                name: "trace".to_string(),
                value: Literal::Str("off".to_string()),
            }
        );
        assert_eq!(
            parse("SET trace_sample = 100").unwrap(),
            Statement::Set {
                name: "trace_sample".to_string(),
                value: Literal::Int(100),
            }
        );
    }

    #[test]
    fn txn_control_statements() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("begin transaction;").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN WORK").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("COMMIT WORK;").unwrap(), Statement::Commit);
        assert_eq!(parse("rollback").unwrap(), Statement::Rollback);
        assert_eq!(parse("ROLLBACK TRANSACTION").unwrap(), Statement::Rollback);
        // Noise words are optional, and junk after them is rejected.
        assert!(parse("BEGIN TRANSACTION extra").is_err());
        assert!(parse("COMMIT 5").is_err());
        // TRANSACTION/WORK stay usable as identifiers.
        assert!(parse("SELECT transaction, work FROM t").is_ok());
        let stmts = parse_script("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(stmts[0], Statement::Begin);
        assert_eq!(stmts[2], Statement::Commit);
    }

    #[test]
    fn keywordish_identifiers() {
        let stmt = parse("SELECT value, class FROM t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 2);
        // EXPLAIN/ANALYZE stay usable as column/table names.
        let stmt = parse("SELECT analyze, explain FROM t WHERE analyze > 1").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert!(parse("EXPLAIN SELECT analyze FROM t").is_ok());
    }
}

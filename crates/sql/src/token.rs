//! SQL tokens and the lexer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Keywords recognized by the lexer (case-insensitive in source text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Keyword {
    Select,
    From,
    Where,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Create,
    Drop,
    Table,
    Index,
    On,
    Primary,
    Key,
    Unique,
    Not,
    Null,
    And,
    Or,
    As,
    Group,
    Order,
    By,
    Limit,
    Asc,
    Desc,
    Int,
    Float,
    Text,
    Bool,
    True,
    False,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    // NeurDB PREDICT extension (paper Section 2.3).
    Predict,
    Value,
    Class,
    Of,
    Train,
    With,
    // Plan inspection.
    Explain,
    Analyze,
    // Session / catalog introspection.
    Show,
    // Transaction control.
    Begin,
    Commit,
    Rollback,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "UPDATE" => Keyword::Update,
            "SET" => Keyword::Set,
            "DELETE" => Keyword::Delete,
            "CREATE" => Keyword::Create,
            "DROP" => Keyword::Drop,
            "TABLE" => Keyword::Table,
            "INDEX" => Keyword::Index,
            "ON" => Keyword::On,
            "PRIMARY" => Keyword::Primary,
            "KEY" => Keyword::Key,
            "UNIQUE" => Keyword::Unique,
            "NOT" => Keyword::Not,
            "NULL" => Keyword::Null,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "AS" => Keyword::As,
            "GROUP" => Keyword::Group,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "LIMIT" => Keyword::Limit,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "INT" | "INTEGER" | "BIGINT" => Keyword::Int,
            "FLOAT" | "REAL" | "DOUBLE" => Keyword::Float,
            "TEXT" | "VARCHAR" | "STRING" => Keyword::Text,
            "BOOL" | "BOOLEAN" => Keyword::Bool,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "PREDICT" => Keyword::Predict,
            "VALUE" => Keyword::Value,
            "CLASS" => Keyword::Class,
            "OF" => Keyword::Of,
            "TRAIN" => Keyword::Train,
            "WITH" => Keyword::With,
            "EXPLAIN" => Keyword::Explain,
            // No ANALYSE alias: the parser re-materializes this keyword
            // as the identifier "analyze" in name position, so an alias
            // spelling would silently rename user columns.
            "ANALYZE" => Keyword::Analyze,
            "SHOW" => Keyword::Show,
            "BEGIN" => Keyword::Begin,
            "COMMIT" => Keyword::Commit,
            "ROLLBACK" => Keyword::Rollback,
            // TRANSACTION / WORK stay plain identifiers so they remain
            // usable as column names; the parser matches them by text
            // after BEGIN.
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    Keyword(Keyword),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Eq,  // =
    Neq, // <> or !=
    Lt,  // <
    Lte, // <=
    Gt,  // >
    Gte, // >=
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Lte => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Gte => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Semicolon => f.write_str(";"),
        }
    }
}

/// Lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input` into a vector of tokens.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Lte);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Gte);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Handle multi-byte UTF-8 transparently.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        pos: start,
                        message: format!("bad float '{text}': {e}"),
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        pos: start,
                        message: format!("bad int '{text}': {e}"),
                    })?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::from_str(word) {
                    Some(k) => out.push(Token::Keyword(k)),
                    None => out.push(Token::Ident(word.to_string())),
                }
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >> 5 == 0b110 {
        2
    } else if first >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let t = lex("select SeLeCt SELECT").unwrap();
        assert!(t.iter().all(|t| *t == Token::Keyword(Keyword::Select)));
    }

    #[test]
    fn predict_keywords() {
        let t = lex("PREDICT VALUE OF score TRAIN ON *").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Predict),
                Token::Keyword(Keyword::Value),
                Token::Keyword(Keyword::Of),
                Token::Ident("score".into()),
                Token::Keyword(Keyword::Train),
                Token::Keyword(Keyword::On),
                Token::Star,
            ]
        );
    }

    #[test]
    fn numbers() {
        let t = lex("1 2.5 3e2 4.5E-1").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(300.0),
                Token::Float(0.45),
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        let t = lex("'it''s' '数据库'").unwrap();
        assert_eq!(
            t,
            vec![Token::Str("it's".into()), Token::Str("数据库".into())]
        );
    }

    #[test]
    fn operators() {
        let t = lex("= <> != < <= > >= + - * /").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::Lte,
                Token::Gt,
                Token::Gte,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = lex("SELECT -- everything\n1").unwrap();
        assert_eq!(t, vec![Token::Keyword(Keyword::Select), Token::Int(1)]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn bad_char_errors() {
        assert!(lex("SELECT #").is_err());
    }
}

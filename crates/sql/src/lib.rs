//! # neurdb-sql
//!
//! SQL front-end for NeurDB-RS: lexer, AST, and recursive-descent parser
//! supporting standard DML/DDL plus the paper's `PREDICT` extension
//! (Section 2.3):
//!
//! ```
//! use neurdb_sql::{parse, Statement, PredictTask};
//!
//! let stmt = parse(
//!     "PREDICT VALUE OF score FROM review \
//!      WHERE brand_name = 'Special Goods' \
//!      TRAIN ON * WITH brand_name <> 'Special Goods'",
//! ).unwrap();
//! let Statement::Predict(p) = stmt else { unreachable!() };
//! assert_eq!(p.task, PredictTask::Regression);
//! assert_eq!(p.target, "score");
//! ```

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    AggFunc, BinaryOp, ColumnSpec, Expr, Literal, PredictStmt, PredictTask, SelectItem, SelectStmt,
    SortOrder, Statement, TableRef, TrainOn, TypeName, UnaryOp,
};
pub use parser::{parse, parse_script, ParseError};
pub use token::{lex, Keyword, LexError, Token};

//! `neurdb-obs`: the dependency-free observability core.
//!
//! Every layer of the system (WAL, buffer pool, executor, server) records
//! into the primitives here; `SHOW METRICS` renders a [`Snapshot`] of the
//! whole [`MetricsRegistry`] and the learned optimizer reads fresh buffer
//! statistics out of it for its system-condition vector. The design
//! constraints, in order:
//!
//! 1. **Cheap on the hot path.** [`Counter::add`] and [`Histogram::record`]
//!    are a handful of relaxed atomic RMWs — no locks, no allocation, no
//!    syscalls. A WAL fsync or a per-batch executor tick can afford them.
//! 2. **Mergeable.** Histograms from worker threads fold into a parent with
//!    [`Histogram::merge_from`]; snapshots subtract ([`Snapshot::delta`])
//!    so callers can meter an interval, not just a lifetime.
//! 3. **No dependencies.** `std` atomics and locks only, so every crate in
//!    the workspace can depend on it without cycles or feature creep.
//!
//! # Metric naming
//!
//! Names are dotted, lowercase, unit-suffixed paths:
//! `<layer>.<subject>[.<detail>]`, with `_ns` / `_bytes` suffixes on the
//! leaf when the unit is not a plain count — e.g. `wal.fsync_ns`,
//! `buffer.hits`, `exec.rows.scan`, `srv.stmt_ns.select`. Registration is
//! idempotent: asking the registry for an existing name returns the same
//! underlying metric, so instrumented code never coordinates "who creates
//! what".

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod trace;

// ------------------------------ counter ------------------------------

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter (relaxed; counters are statistical).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ------------------------------- gauge -------------------------------

/// A last-writer-wins `f64` gauge (stored as bits in an `AtomicU64`).
///
/// Gauges carry point-in-time readings — active connections, buffer
/// occupancy, a recovery-replay duration — where only the latest value is
/// meaningful. [`Gauge::set_max`] keeps a high-water mark (peak
/// connections) without a lock.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative). Compare-and-swap loop; gauges are
    /// updated at connection granularity, so contention is negligible.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Raise the gauge to `v` if `v` exceeds the current value
    /// (high-water mark).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// ----------------------------- histogram -----------------------------

/// Sub-buckets per power-of-two octave: 8, so any recorded value lands in
/// a bucket whose width is ≤ 1/8 of its magnitude (≲ 6% worst-case error
/// when quoting the bucket midpoint as a percentile).
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;

/// Bucket count covering the full `u64` range: values below [`SUBS`] get
/// exact unit buckets, then 8 buckets per octave for octaves 3..=63.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + (1 << SUB_BITS);

/// Map a value to its bucket index. Small values (< 8) are exact; larger
/// values index by (octave, sub-bucket), contiguously after the unit
/// buckets.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) & (SUBS - 1);
    (((octave - SUB_BITS) as usize) << SUB_BITS) + sub as usize + SUBS as usize
}

/// Inclusive `[lo, hi]` value range of bucket `idx` (inverse of
/// [`bucket_index`]).
fn bucket_range(idx: usize) -> (u64, u64) {
    if idx < SUBS as usize {
        return (idx as u64, idx as u64);
    }
    let rel = idx - SUBS as usize;
    let octave = (rel >> SUB_BITS as usize) as u32 + SUB_BITS;
    let sub = (rel & (SUBS as usize - 1)) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo + width - 1)
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, batch sizes, frame lengths — anything positive).
///
/// Recording is a relaxed `fetch_add` on one bucket plus running
/// count/sum; quantiles are answered from a [`HistogramSnapshot`] by
/// walking the cumulative distribution and interpolating inside the
/// target bucket.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        // `AtomicU64` is not Copy; build the array from zeroed u64s.
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is fixed");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram's buckets into this one (used to merge
    /// per-worker histograms into a shared parent).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state, cheap to diff and query.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state: answers quantiles, diffs against an earlier
/// snapshot, and merges with siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    /// Exact running sum of all recorded samples (not bucket-derived),
    /// so [`HistogramSnapshot::mean`] and merged/diffed sums are exact.
    pub sum: u64,
    /// Largest sample ever recorded (exact, not bucket-rounded).
    pub max: u64,
    buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) estimated by linear interpolation
    /// within the target bucket; `None` when the histogram is empty.
    /// Small values (< 8) are exact; larger ones are within the bucket's
    /// ≤ 1/8-relative width.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_range(idx);
                // Interpolate the rank's position inside the bucket.
                let into = (rank - seen - 1) as f64 / n as f64;
                return Some(lo + ((hi - lo) as f64 * into) as u64);
            }
            seen += n;
        }
        // Rounding pushed the rank past the last occupied bucket.
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|idx| bucket_range(idx).1)
    }

    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merge two snapshots (bucket-wise sum). Associative and
    /// commutative, so worker snapshots can fold in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(other.buckets.iter())
            .map(|(a, b)| a + b)
            .collect();
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// This snapshot minus an `earlier` one of the same histogram —
    /// the distribution of samples recorded in between. Saturating, so a
    /// mismatched pair degrades to zeros rather than wrapping.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // The max over an interval is not recoverable from two
            // lifetime maxima; keep the later lifetime max as the bound.
            max: self.max,
            buckets,
        }
    }
}

// ------------------------------ registry ------------------------------

/// A named registry of counters, gauges, and histograms.
///
/// Lookup takes a `Mutex` over a `BTreeMap` (sorted, so snapshots render
/// deterministically) and returns an `Arc` handle; instrumented code
/// resolves its metrics once at construction and records lock-free from
/// then on. There is deliberately no global registry — each `Database`
/// owns one, keeping tests and embedded instances isolated.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs registry poisoned");
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs registry poisoned");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen view of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// This snapshot minus an `earlier` one: counter and histogram values
    /// become the interval's activity; gauges keep their latest reading
    /// (a gauge delta is meaningless). Metrics absent from `earlier` pass
    /// through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| match earlier.histograms.get(k) {
                Some(prev) => (k.clone(), v.delta(prev)),
                None => (k.clone(), v.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

// ------------------------------- tests -------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — the crate is dependency-free, so the
    /// tests bring their own RNG.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut vals: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        let mut prev = 0usize;
        for v in vals {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "bucket index regressed at v={v}");
            let (lo, hi) = bucket_range(idx);
            assert!(lo <= v && v <= hi, "v={v} outside [{lo}, {hi}]");
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(3.5);
        g.add(-1.0);
        assert!((g.get() - 2.5).abs() < 1e-12);
        g.set_max(10.0);
        g.set_max(4.0); // lower: no effect
        assert!((g.get() - 10.0).abs() < 1e-12);
    }

    /// Percentile accuracy against a sorted-vector reference on random
    /// samples: with 8 sub-buckets per octave the midpoint-interpolated
    /// quantile must land within ~1/8 of the exact order statistic.
    #[test]
    fn quantiles_track_sorted_reference() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        for scale_shift in [10u32, 20, 30] {
            let h = Histogram::new();
            let mut samples: Vec<u64> = (0..4096)
                .map(|_| rng.next() >> (64 - scale_shift))
                .collect();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, samples.len() as u64);
            assert_eq!(snap.sum, samples.iter().sum::<u64>());
            assert_eq!(snap.max, *samples.last().expect("non-empty"));
            for q in [0.5, 0.95, 0.99] {
                let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
                let exact = samples[rank];
                let est = snap.quantile(q).expect("non-empty");
                let tol = (exact as f64 / 8.0).max(2.0);
                assert!(
                    (est as f64 - exact as f64).abs() <= tol,
                    "q={q} exact={exact} est={est} (shift {scale_shift})"
                );
            }
        }
    }

    /// Merging snapshots is associative (and commutative): any fold order
    /// over worker histograms yields the same distribution.
    #[test]
    fn merge_is_associative() {
        let mut rng = Rng(42);
        let parts: Vec<HistogramSnapshot> = (0..3)
            .map(|_| {
                let h = Histogram::new();
                for _ in 0..512 {
                    h.record(rng.next() >> 40);
                }
                h.snapshot()
            })
            .collect();
        let left = parts[0].merge(&parts[1]).merge(&parts[2]);
        let right = parts[0].merge(&parts[1].merge(&parts[2]));
        assert_eq!(left, right);
        assert_eq!(left, parts[2].merge(&parts[1]).merge(&parts[0]));
        assert_eq!(left.count, 3 * 512);
    }

    /// Concurrent recording from 8 threads loses no counts.
    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    let mut rng = Rng(t + 1);
                    for _ in 0..PER_THREAD {
                        h.record(rng.next() >> 44);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(
            snap.buckets.iter().sum::<u64>(),
            THREADS * PER_THREAD,
            "bucket totals must equal the recorded count"
        );
    }

    #[test]
    fn histogram_merge_from_folds_workers() {
        let parent = Histogram::new();
        let worker = Histogram::new();
        for v in [1u64, 100, 10_000] {
            worker.record(v);
        }
        parent.record(7);
        parent.merge_from(&worker);
        let snap = parent.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1 + 100 + 10_000 + 7);
        assert_eq!(snap.max, 10_000, "merge_from keeps the larger max");
    }

    #[test]
    fn histogram_max_is_exact_through_merge_and_delta() {
        let h = Histogram::new();
        h.record(5);
        let early = h.snapshot();
        h.record(9_999);
        h.record(12);
        let late = h.snapshot();
        assert_eq!(early.max, 5);
        assert_eq!(late.max, 9_999, "max is exact, not bucket-rounded");
        assert_eq!(early.merge(&late).max, 9_999);
        assert_eq!(late.delta(&early).max, 9_999, "delta keeps later max");
    }

    #[test]
    fn registry_is_idempotent_and_snapshots_sorted() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("wal.fsync");
        let b = reg.counter("wal.fsync");
        a.inc();
        assert_eq!(b.get(), 1, "same name must alias the same counter");
        reg.gauge("buffer.hit_ratio").set(0.75);
        reg.histogram("srv.stmt_ns.select").record(1_000);

        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("wal.fsync"), Some(&1));
        assert_eq!(snap.gauges.get("buffer.hit_ratio"), Some(&0.75));
        assert_eq!(snap.histograms["srv.stmt_ns.select"].count, 1);
    }

    #[test]
    fn snapshot_delta_isolates_interval() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("srv.frames.in");
        let h = reg.histogram("srv.stmt_ns.select");
        c.add(5);
        h.record(10);
        let before = reg.snapshot();
        c.add(3);
        h.record(20);
        h.record(30);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters["srv.frames.in"], 3);
        assert_eq!(d.histograms["srv.stmt_ns.select"].count, 2);
        assert_eq!(d.histograms["srv.stmt_ns.select"].sum, 50);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), None);
        assert_eq!(h.snapshot().mean(), None);
    }
}

//! Per-statement structured tracing: span trees from wire frame to fsync.
//!
//! The model is deliberately small and dependency-free:
//!
//! * A [`Tracer`] (one per database) decides per statement whether to
//!   trace — forced via `SET trace = on` or sampled 1-in-N via
//!   `SET trace_sample = N` — and keeps a bounded ring of recent
//!   [`FinishedTrace`]s keyed by the `<session>-<seq>` statement ids the
//!   slow-query log already uses.
//! * While a statement is traced, a thread-local *current span* carries
//!   the context implicitly: [`span`] opens a child of whatever span is
//!   current on this thread and closes it when the guard drops, so deep
//!   layers (buffer pool, WAL, CC) never thread tracing arguments
//!   through their APIs.
//! * Crossing threads is explicit and cheap: [`current_handle`] captures
//!   the current span as a `Send + Clone` [`SpanHandle`]; a worker calls
//!   [`SpanHandle::enter`] and everything it does nests under the
//!   originating span on its own track (`tid`).
//! * Work measured elsewhere (the group-commit flusher's fsync runs on a
//!   background thread with no statement context) is attributed after
//!   the fact with [`span_interval`].
//!
//! The disabled path is near-free: when a statement is not traced the
//! thread-local is `None`, so [`span`] is one branch returning an inert
//! guard — no allocation, no clock read.
//!
//! Finished traces render as an indented tree (`SHOW TRACE <id>`) or as
//! Chrome trace-event JSON (`SHOW TRACE <id> FORMAT json`), which
//! `scripts/trace_to_perfetto.py` wraps for Perfetto.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ------------------------------ collection ------------------------------

/// One closed span as collected on whatever thread ran it. Tree assembly
/// happens once, at trace finish.
struct SpanRecord {
    id: u32,
    parent: u32,
    tid: u32,
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

/// State shared by every thread participating in one traced statement.
struct TraceShared {
    /// Timebase: all span offsets are relative to this instant.
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU32,
    next_tid: AtomicU32,
}

impl TraceShared {
    fn new() -> Self {
        TraceShared {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            next_id: AtomicU32::new(2),  // 1 is the root
            next_tid: AtomicU32::new(1), // 0 is the statement thread
        }
    }

    fn alloc_id(&self) -> u32 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn ns_since_epoch(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_nanos() as u64
    }

    fn push(&self, record: SpanRecord) {
        self.spans.lock().expect("trace span lock").push(record);
    }
}

#[derive(Clone)]
struct ActiveCtx {
    shared: Arc<TraceShared>,
    span: u32,
    tid: u32,
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveCtx>> = const { RefCell::new(None) };
}

/// Open a span named `name` under the current span of this thread.
///
/// If the thread is not inside a traced statement this is one branch and
/// returns an inert guard. The span closes (duration taken, record
/// filed) when the guard drops; guards must nest like scopes, which the
/// borrow rules of `let _g = span(..)` give you for free.
pub fn span(name: &'static str) -> SpanGuard {
    CURRENT.with(|cur| {
        let mut cur = cur.borrow_mut();
        let Some(ctx) = cur.as_mut() else {
            return SpanGuard { inner: None };
        };
        let id = ctx.shared.alloc_id();
        let parent = ctx.span;
        ctx.span = id;
        SpanGuard {
            inner: Some(SpanInner {
                shared: Arc::clone(&ctx.shared),
                id,
                parent,
                tid: ctx.tid,
                name,
                start: Instant::now(),
                attrs: Vec::new(),
            }),
        }
    })
}

/// File an already-measured interval as a child of the current span.
///
/// Used when the work ran on a thread with no statement context (the
/// group-commit flusher's fsync): the waiter measures or learns the
/// real interval and attributes it to its own trace here.
pub fn span_interval(
    name: &'static str,
    start: Instant,
    dur: Duration,
    attrs: Vec<(&'static str, String)>,
) {
    CURRENT.with(|cur| {
        let cur = cur.borrow();
        let Some(ctx) = cur.as_ref() else { return };
        let record = SpanRecord {
            id: ctx.shared.alloc_id(),
            parent: ctx.span,
            tid: ctx.tid,
            name,
            start_ns: ctx.shared.ns_since_epoch(start),
            dur_ns: dur.as_nanos() as u64,
            attrs,
        };
        ctx.shared.push(record);
    });
}

/// Whether the calling thread is currently inside a traced statement.
pub fn enabled() -> bool {
    CURRENT.with(|cur| cur.borrow().is_some())
}

struct SpanInner {
    shared: Arc<TraceShared>,
    id: u32,
    parent: u32,
    tid: u32,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, String)>,
}

/// Guard for an open span; closes it on drop. Inert when the statement
/// is not traced.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attach a key/value attribute. No-op (and no formatting) when the
    /// span is inert.
    pub fn attr<T: ToString>(&mut self, key: &'static str, value: T) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, value.to_string()));
        }
    }

    /// Whether this guard is live (the statement is traced).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            tid: inner.tid,
            name: inner.name,
            start_ns: inner.shared.ns_since_epoch(inner.start),
            dur_ns: inner.start.elapsed().as_nanos() as u64,
            attrs: inner.attrs,
        };
        inner.shared.push(record);
        // Restore the parent as this thread's current span.
        CURRENT.with(|cur| {
            if let Some(ctx) = cur.borrow_mut().as_mut() {
                if ctx.span == inner.id {
                    ctx.span = inner.parent;
                }
            }
        });
    }
}

/// A `Send + Clone` capture of the current span, made to be moved into a
/// worker thread closure. [`SpanHandle::enter`] re-establishes tracing
/// context there; a handle captured outside a traced statement is inert.
#[derive(Clone)]
pub struct SpanHandle {
    inner: Option<(Arc<TraceShared>, u32)>,
}

impl SpanHandle {
    /// A handle that never produces spans.
    pub fn inert() -> Self {
        SpanHandle { inner: None }
    }

    /// Whether entering this handle will produce spans.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Make the captured span current on this thread (on a fresh track)
    /// until the returned guard drops.
    pub fn enter(&self) -> ScopeGuard {
        let Some((shared, span)) = self.inner.as_ref() else {
            return ScopeGuard {
                prev: None,
                installed: false,
            };
        };
        let tid = shared.next_tid.fetch_add(1, Ordering::Relaxed);
        let ctx = ActiveCtx {
            shared: Arc::clone(shared),
            span: *span,
            tid,
        };
        let prev = CURRENT.with(|cur| cur.borrow_mut().replace(ctx));
        ScopeGuard {
            prev,
            installed: true,
        }
    }
}

/// Capture the calling thread's current span as a cross-thread handle.
pub fn current_handle() -> SpanHandle {
    CURRENT.with(|cur| {
        let cur = cur.borrow();
        SpanHandle {
            inner: cur.as_ref().map(|ctx| (Arc::clone(&ctx.shared), ctx.span)),
        }
    })
}

/// Restores the thread's previous tracing context on drop.
pub struct ScopeGuard {
    prev: Option<ActiveCtx>,
    installed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.installed {
            CURRENT.with(|cur| {
                *cur.borrow_mut() = self.prev.take();
            });
        }
    }
}

// ------------------------------- finished -------------------------------

/// One node of an assembled trace tree.
#[derive(Debug, Clone)]
pub struct Span {
    pub name: &'static str,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub tid: u32,
    pub attrs: Vec<(&'static str, String)>,
    pub children: Vec<Span>,
}

impl Span {
    /// Duration not accounted for by direct children (clamped at zero:
    /// children on other threads may overlap the parent).
    pub fn self_ns(&self) -> u64 {
        let child: u64 = self.children.iter().map(|c| c.dur_ns).sum();
        self.dur_ns.saturating_sub(child)
    }

    /// Depth-first walk over this span and all descendants.
    pub fn walk(&self, f: &mut impl FnMut(&Span, usize)) {
        self.walk_at(0, f)
    }

    fn walk_at(&self, depth: usize, f: &mut impl FnMut(&Span, usize)) {
        f(self, depth);
        for child in &self.children {
            child.walk_at(depth + 1, f);
        }
    }

    /// Number of spans in this subtree (including self).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Span::count).sum::<usize>()
    }

    /// First descendant (or self) with the given name, depth-first.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All descendants (including self) with the given name.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a Span>) {
        if self.name == name {
            out.push(self);
        }
        for child in &self.children {
            child.find_all(name, out);
        }
    }
}

/// A completed, assembled statement trace.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// `<session>-<seq>` statement id (matches the slow-query log).
    pub id: String,
    /// The statement text.
    pub sql: String,
    /// Statement wall time.
    pub wall_ns: u64,
    pub root: Span,
}

impl FinishedTrace {
    pub fn span_count(&self) -> usize {
        self.root.count()
    }

    /// Render as an indented tree with total/self times and attrs — the
    /// `SHOW TRACE <id>` body.
    pub fn render_tree(&self) -> Vec<String> {
        let mut lines = vec![
            format!(
                "trace {}  wall={}  spans={}",
                self.id,
                fmt_ns(self.wall_ns),
                self.span_count()
            ),
            format!("sql: {}", self.sql),
        ];
        self.root.walk(&mut |span, depth| {
            let mut line = format!(
                "{}{}  total={} self={}",
                "  ".repeat(depth),
                span.name,
                fmt_ns(span.dur_ns),
                fmt_ns(span.self_ns()),
            );
            for (k, v) in &span.attrs {
                line.push_str(&format!(" {k}={v}"));
            }
            lines.push(line);
        });
        lines
    }

    /// Chrome trace-event JSON (`ph:"X"` complete events, µs timebase):
    /// loads directly in Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::new();
        let mut tids = Vec::new();
        self.root.walk(&mut |span, _| {
            if !tids.contains(&span.tid) {
                tids.push(span.tid);
            }
            let mut args = String::new();
            for (k, v) in &span.attrs {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":{},\"cat\":\"statement\",\"args\":{{{}}}}}",
                json_escape(span.name),
                span.start_ns as f64 / 1000.0,
                span.dur_ns as f64 / 1000.0,
                span.tid,
                args
            ));
        });
        for tid in tids {
            let name = if tid == 0 {
                "statement".to_string()
            } else {
                format!("track-{tid}")
            };
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\
                 \"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"trace_id\":\"{}\",\
             \"sql\":\"{}\"}},\"traceEvents\":[{}]}}",
            json_escape(&self.id),
            json_escape(&self.sql),
            events.join(",")
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human duration: ns under 1µs, then µs / ms / s with one decimal.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

// -------------------------------- tracer --------------------------------

/// An open statement trace: the root span is live from
/// [`Tracer::maybe_start`] until [`Tracer::finish`].
pub struct ActiveTrace {
    shared: Arc<TraceShared>,
}

impl ActiveTrace {
    /// Make the root span current on this thread (track 0) until the
    /// guard drops.
    pub fn enter(&self) -> ScopeGuard {
        let ctx = ActiveCtx {
            shared: Arc::clone(&self.shared),
            span: 1,
            tid: 0,
        };
        let prev = CURRENT.with(|cur| cur.borrow_mut().replace(ctx));
        ScopeGuard {
            prev,
            installed: true,
        }
    }
}

/// Per-database trace controller: sampling decision, per-statement trace
/// lifecycle, and the bounded ring of recent finished traces.
pub struct Tracer {
    /// 0 = sampling off; N = trace one statement in N.
    sample_every: AtomicU64,
    /// Statements seen while sampling was armed (sampling is
    /// deterministic: the 1st, N+1th, 2N+1th, ... armed statements
    /// trace).
    sampled: AtomicU64,
    ring: Mutex<VecDeque<Arc<FinishedTrace>>>,
    capacity: usize,
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        Tracer {
            sample_every: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Set the 1-in-N sampling rate (0 disables sampling) and reset the
    /// deterministic counter so the next armed statement traces.
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Ordering::Relaxed);
        self.sampled.store(0, Ordering::Relaxed);
    }

    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Decide whether to trace this statement. The untraced path is one
    /// atomic load and a branch — no allocation.
    pub fn maybe_start(&self, force: bool) -> Option<ActiveTrace> {
        if !force {
            let every = self.sample_every.load(Ordering::Relaxed);
            if every == 0 {
                return None;
            }
            let seen = self.sampled.fetch_add(1, Ordering::Relaxed);
            if !seen.is_multiple_of(every) {
                return None;
            }
        }
        Some(ActiveTrace {
            shared: Arc::new(TraceShared::new()),
        })
    }

    /// Close the trace: file the root span, assemble the tree, push it
    /// into the ring (evicting the oldest past capacity), return it.
    pub fn finish(&self, trace: ActiveTrace, id: String, sql: String) -> Arc<FinishedTrace> {
        let shared = trace.shared;
        let wall_ns = shared.epoch.elapsed().as_nanos() as u64;
        let records = {
            let mut spans = shared.spans.lock().expect("trace span lock");
            std::mem::take(&mut *spans)
        };
        let root = assemble(records, wall_ns);
        let finished = Arc::new(FinishedTrace {
            id,
            sql,
            wall_ns,
            root,
        });
        let mut ring = self.ring.lock().expect("trace ring lock");
        ring.push_back(Arc::clone(&finished));
        while ring.len() > self.capacity {
            ring.pop_front();
        }
        finished
    }

    /// Recent finished traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<FinishedTrace>> {
        self.ring
            .lock()
            .expect("trace ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Look up a trace by its `<session>-<seq>` id.
    pub fn get(&self, id: &str) -> Option<Arc<FinishedTrace>> {
        self.ring
            .lock()
            .expect("trace ring lock")
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(64)
    }
}

/// Build the tree from flat records. Parents always outlive children
/// (workers are joined before the statement finishes), so every record's
/// parent exists; any orphan (defensive) re-parents onto the root.
fn assemble(records: Vec<SpanRecord>, wall_ns: u64) -> Span {
    let ids: std::collections::HashSet<u32> = records.iter().map(|r| r.id).collect();
    let mut nodes: Vec<(u32, u32, Span)> = records
        .into_iter()
        .map(|r| {
            let parent = if r.parent != 0 && ids.contains(&r.parent) {
                r.parent
            } else {
                1
            };
            (
                r.id,
                parent,
                Span {
                    name: r.name,
                    start_ns: r.start_ns,
                    dur_ns: r.dur_ns,
                    tid: r.tid,
                    attrs: r.attrs,
                    children: Vec::new(),
                },
            )
        })
        .collect();
    // A child span is always created after its parent, so every
    // descendant has a strictly greater id. Folding in descending id
    // order therefore completes each subtree before its parent is
    // visited.
    let mut pending: std::collections::HashMap<u32, Vec<Span>> = std::collections::HashMap::new();
    let mut root_children = Vec::new();
    nodes.sort_by_key(|(id, _, _)| std::cmp::Reverse(*id));
    for (id, parent, mut span) in nodes {
        if let Some(mut kids) = pending.remove(&id) {
            kids.sort_by_key(|c| c.start_ns);
            span.children = kids;
        }
        if parent == 1 {
            root_children.push(span);
        } else {
            pending.entry(parent).or_default().push(span);
        }
    }
    // Any leftovers had a parent chain that never closed (should not
    // happen); hang them off the root rather than dropping them.
    for (_, kids) in pending.drain() {
        root_children.extend(kids);
    }
    root_children.sort_by_key(|c| c.start_ns);
    Span {
        name: "statement",
        start_ns: 0,
        dur_ns: wall_ns,
        tid: 0,
        attrs: Vec::new(),
        children: root_children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced<R>(f: impl FnOnce() -> R) -> (Arc<FinishedTrace>, R) {
        let tracer = Tracer::new(8);
        let trace = tracer.maybe_start(true).expect("forced");
        let scope = trace.enter();
        let out = f();
        drop(scope);
        let finished = tracer.finish(trace, "1-1".into(), "SELECT 1".into());
        (finished, out)
    }

    #[test]
    fn disabled_path_produces_no_spans() {
        assert!(!enabled());
        let mut g = span("never");
        assert!(!g.is_active());
        g.attr("k", 1);
        drop(g);
        assert!(!current_handle().is_active());
        span_interval("never", Instant::now(), Duration::from_millis(1), vec![]);
        // Nothing to observe: no trace shared state exists at all.
    }

    #[test]
    fn nested_spans_assemble_into_a_tree() {
        let (t, ()) = traced(|| {
            let mut a = span("plan");
            a.attr("joins", 2);
            drop(a);
            let _b = span("execute");
            let _c = span("scan");
        });
        assert_eq!(t.root.name, "statement");
        assert_eq!(t.span_count(), 4);
        let exec = t.root.find("execute").expect("execute span");
        assert_eq!(exec.children.len(), 1);
        assert_eq!(exec.children[0].name, "scan");
        let plan = t.root.find("plan").expect("plan span");
        assert_eq!(plan.attrs, vec![("joins", "2".to_string())]);
        // Children sorted by start time.
        assert!(t.root.children[0].start_ns <= t.root.children[1].start_ns);
    }

    #[test]
    fn handles_propagate_across_threads() {
        let (t, ()) = traced(|| {
            let exec = span("execute");
            let handle = current_handle();
            assert!(handle.is_active());
            let workers: Vec<_> = (0..3)
                .map(|w| {
                    let h = handle.clone();
                    std::thread::spawn(move || {
                        let _scope = h.enter();
                        let mut s = span("worker");
                        s.attr("worker", w);
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            drop(exec);
        });
        let exec = t.root.find("execute").expect("execute span");
        assert_eq!(exec.children.len(), 3, "worker spans parent under execute");
        let mut tids: Vec<u32> = exec.children.iter().map(|c| c.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each worker gets its own track");
        for child in &exec.children {
            assert_eq!(child.name, "worker");
        }
    }

    #[test]
    fn span_interval_attributes_foreign_work() {
        let (t, ()) = traced(|| {
            let start = Instant::now();
            std::thread::sleep(Duration::from_millis(2));
            span_interval(
                "wal.fsync",
                start,
                Duration::from_millis(2),
                vec![("ride", "false".into())],
            );
        });
        let fsync = t.root.find("wal.fsync").expect("fsync span");
        assert!(fsync.dur_ns >= 2_000_000);
        assert_eq!(fsync.attrs[0].0, "ride");
    }

    #[test]
    fn self_time_excludes_children() {
        let (t, ()) = traced(|| {
            let _e = span("execute");
            let inner = span("scan");
            std::thread::sleep(Duration::from_millis(2));
            drop(inner);
        });
        let exec = t.root.find("execute").expect("execute");
        assert!(exec.self_ns() < exec.dur_ns);
        assert!(exec.self_ns() <= exec.dur_ns - exec.children[0].dur_ns + 1);
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let tracer = Tracer::new(8);
        tracer.set_sample_every(3);
        let hits: Vec<bool> = (0..9)
            .map(|_| tracer.maybe_start(false).is_some())
            .collect();
        assert_eq!(
            hits,
            vec![true, false, false, true, false, false, true, false, false]
        );
        // Resetting the rate re-arms the counter deterministically.
        tracer.set_sample_every(2);
        assert!(tracer.maybe_start(false).is_some());
        assert!(tracer.maybe_start(false).is_none());
        assert!(tracer.maybe_start(false).is_some());
        // Off means off; force overrides.
        tracer.set_sample_every(0);
        assert!(tracer.maybe_start(false).is_none());
        assert!(tracer.maybe_start(true).is_some());
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let tracer = Tracer::new(3);
        for i in 0..5 {
            let t = tracer.maybe_start(true).unwrap();
            tracer.finish(t, format!("1-{i}"), "SELECT 1".into());
        }
        let recent = tracer.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].id, "1-2");
        assert_eq!(recent[2].id, "1-4");
        assert!(tracer.get("1-0").is_none(), "evicted");
        assert!(tracer.get("1-4").is_some());
    }

    #[test]
    fn chrome_json_is_wellformed_and_escaped() {
        let (t, ()) = traced(|| {
            let mut s = span("scan");
            s.attr("pred", "v = \"x\"\n");
        });
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"x\\\"\\n"));
        assert!(json.contains("thread_name"));
        // Balanced braces/brackets — a cheap well-formedness check.
        let braces = json.matches('{').count();
        assert_eq!(braces, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn render_tree_shows_indentation_and_attrs() {
        let (t, ()) = traced(|| {
            let _e = span("execute");
            let mut s = span("buffer.read");
            s.attr("page", 7);
        });
        let lines = t.render_tree();
        assert!(lines[0].starts_with("trace 1-1"));
        assert_eq!(lines[1], "sql: SELECT 1");
        assert!(lines[2].starts_with("statement"));
        assert!(lines[3].starts_with("  execute"));
        assert!(lines[4].starts_with("    buffer.read"));
        assert!(lines[4].contains("page=7"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.50s");
    }
}

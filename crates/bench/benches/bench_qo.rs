//! Fig. 8 as a Criterion bench plus ablation 4 (DESIGN.md §5): optimizer
//! planning time per STATS query, and the dual-module model with vs
//! without the system-condition input (conditions matter under drift).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurdb_qo::{
    candidate_plans, cost_plan, dp_best_plan, latency_of, BaoOptimizer, CostBasedOptimizer,
    DualQoModel, LeroOptimizer, NeurQo, Optimizer, PretrainConfig,
};
use neurdb_workloads::{query_graph, stats_queries, DriftLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_planning_time(c: &mut Criterion) {
    let training: Vec<_> = stats_queries()
        .iter()
        .map(|q| query_graph(q, DriftLevel::Original, 0))
        .collect();
    let mut bao = BaoOptimizer::train(&training, 10, 1);
    let mut lero = LeroOptimizer::train(&training, 5, 2);
    let (mut neur, _) = NeurQo::pretrained(
        PretrainConfig {
            iters: 60,
            tables: 5,
            candidates: 5,
        },
        3,
    );
    let mut pg = CostBasedOptimizer;
    // The 5-way join (query 8) is the heaviest planning problem.
    let g = query_graph(&stats_queries()[7], DriftLevel::Original, 1);
    let mut group = c.benchmark_group("plan_q8");
    for (name, opt) in [
        ("postgresql", &mut pg as &mut dyn Optimizer),
        ("bao", &mut bao),
        ("lero", &mut lero),
        ("neurdb", &mut neur),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| black_box(opt.choose_plan(g).num_joins()))
        });
    }
    group.finish();
}

fn bench_plan_enumeration(c: &mut Criterion) {
    let g = query_graph(&stats_queries()[7], DriftLevel::Original, 1);
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("dp_best_plan_5way", |b| {
        b.iter(|| black_box(dp_best_plan(&g).num_joins()))
    });
    c.bench_function("candidate_plans_6_of_5way", |b| {
        b.iter(|| black_box(candidate_plans(&g, 6, &mut rng).len()))
    });
    c.bench_function("cost_plan_5way", |b| {
        let p = dp_best_plan(&g);
        b.iter(|| black_box(cost_plan(&p, &g, true).cost))
    });
}

/// Ablation: how much do fresh system conditions matter under drift?
/// Compares the pretrained dual model's chosen-plan latency when the
/// condition tokens are live vs zeroed (by handing it the stale graph).
fn bench_condition_ablation(c: &mut Criterion) {
    let (mut neur, _) = NeurQo::pretrained(
        PretrainConfig {
            iters: 200,
            tables: 5,
            candidates: 6,
        },
        7,
    );
    let mut rng = StdRng::seed_from_u64(8);
    let mut live_total = 0.0;
    let mut blind_total = 0.0;
    let mut blind_model = DualQoModel::new(16, 8, 3e-3, &mut rng); // untrained = no condition knowledge
    for q in stats_queries() {
        let g = query_graph(&q, DriftLevel::Severe, 2024);
        let p_live = neur.choose_plan(&g);
        live_total += latency_of(&p_live, &g);
        let cands = candidate_plans(&g, 6, &mut rng);
        let p_blind = blind_model.choose(&cands, &g).clone();
        blind_total += latency_of(&p_blind, &g);
    }
    println!(
        "\n[ablation] severe-drift latency: pretrained-with-conditions {live_total:.0} vs \
         untrained {blind_total:.0} ({:.2}x)",
        blind_total / live_total
    );
    c.bench_function("neurqo_predict_scores", |b| {
        let g = query_graph(&stats_queries()[7], DriftLevel::Severe, 9);
        let cands = candidate_plans(&g, 6, &mut rng);
        b.iter(|| black_box(neur.model.predict(&cands, &g)[0]))
    });
}

criterion_group!(
    benches,
    bench_planning_time,
    bench_plan_enumeration,
    bench_condition_ablation
);
criterion_main!(benches);

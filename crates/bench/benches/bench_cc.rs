//! Fig. 7(a) as a Criterion bench plus ablation 3 (DESIGN.md §5): the
//! contention-state encoding. Measures per-policy YCSB throughput and the
//! learned CC's decision latency (which must stay off the critical path —
//! the reason the paper compresses the model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use neurdb_cc::{encode, LearnedCc, PolyjuiceCc};
use neurdb_txn::{
    run_workload, CcPolicy, EngineConfig, KeyContention, OpCtx, Ssi, TwoPhaseLocking, TxnEngine,
};
use neurdb_workloads::{Ycsb, YcsbConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_policy_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("ycsb_policy");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    let policies: Vec<(&str, Arc<dyn CcPolicy>)> = vec![
        ("ssi", Arc::new(Ssi)),
        ("2pl", Arc::new(TwoPhaseLocking)),
        ("neurdb_cc", Arc::new(LearnedCc::seeded())),
        ("polyjuice", Arc::new(PolyjuiceCc::default_policy())),
    ];
    for (name, policy) in policies {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            b.iter_custom(|iters| {
                // One timed workload slice per sample set; report the time
                // a fixed slice takes (commits vary with the policy).
                let ycsb = Arc::new(Ycsb::new(YcsbConfig {
                    records: 100_000,
                    ..Default::default()
                }));
                let engine = Arc::new(TxnEngine::new(policy.clone(), EngineConfig::default()));
                ycsb.load(&engine);
                let y = ycsb.clone();
                let start = std::time::Instant::now();
                for _ in 0..iters.min(3) {
                    let y2 = y.clone();
                    let stats =
                        run_workload(&engine, 4, Duration::from_millis(100), move |tid, seq| {
                            y2.transaction_for(tid, seq)
                        });
                    black_box(stats.commits);
                }
                start.elapsed()
            })
        });
    }
    g.finish();
}

fn bench_decision_latency(c: &mut Criterion) {
    // The decision model runs on every operation; the paper compresses it
    // so it does not bottleneck millisecond transactions.
    let ctx = OpCtx {
        key: 42,
        ops_done: 3,
        txn_len_hint: 10,
        txn_type: 1,
        contention: KeyContention {
            recent_reads: 17.0,
            recent_writes: 5.0,
            recent_aborts: 1.0,
            write_locked: false,
        },
    };
    let mut g = c.benchmark_group("cc_decision");
    g.throughput(Throughput::Elements(1));
    let learned = LearnedCc::seeded();
    g.bench_function("encoding_only", |b| b.iter(|| black_box(encode(&ctx))));
    g.bench_function("learned_read_decision", |b| {
        b.iter(|| black_box(learned.read_decision(&ctx)))
    });
    g.bench_function("learned_write_decision", |b| {
        b.iter(|| black_box(learned.write_decision(&ctx)))
    });
    let pj = PolyjuiceCc::default_policy();
    g.bench_function("polyjuice_read_decision", |b| {
        b.iter(|| black_box(pj.read_decision(&ctx)))
    });
    g.finish();
}

criterion_group!(benches, bench_policy_throughput, bench_decision_latency);
criterion_main!(benches);

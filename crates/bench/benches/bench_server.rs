//! Serving-path micro-benchmarks: wire-protocol round-trip latency and
//! multi-connection throughput through `neurdb-server`, so the perf
//! trajectory covers the network front end and not just in-process
//! execution. CI runs this as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use neurdb_core::Database;
use neurdb_server::{Client, Server, ServerConfig, ServerHandle};
use std::hint::black_box;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const ROWS: usize = 2_000;

fn start_server() -> (ServerHandle, SocketAddr) {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE pts (id INT PRIMARY KEY, grp INT, v FLOAT)")
        .unwrap();
    db.execute("CREATE INDEX ON pts (id)").unwrap();
    let mut stmt = String::from("INSERT INTO pts VALUES ");
    for i in 0..ROWS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {}, {}.25)", i % 16, i % 50));
    }
    db.execute(&stmt).unwrap();
    let handle = Server::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    (handle, addr)
}

fn bench_server(c: &mut Criterion) {
    let (handle, addr) = start_server();
    let mut g = c.benchmark_group("server");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(300));

    // Round-trip latency over one connection: protocol overhead only
    // (SHOW touches no table) vs. an indexed point SELECT vs. a small
    // aggregate.
    let mut client = Client::connect(addr).unwrap();
    g.bench_function("roundtrip_show", |b| {
        b.iter(|| black_box(client.query("SHOW parallelism").unwrap()))
    });
    g.bench_function("roundtrip_point_select", |b| {
        b.iter(|| black_box(client.query("SELECT v FROM pts WHERE id = 1234").unwrap()))
    });
    g.bench_function("roundtrip_aggregate", |b| {
        b.iter(|| {
            black_box(
                client
                    .query("SELECT grp, COUNT(*) FROM pts WHERE v > 10 GROUP BY grp")
                    .unwrap(),
            )
        })
    });

    // Throughput: the same statement mix pushed from 1 vs 8 concurrent
    // connections, measured as total wall clock for `iters` statements
    // split across the clients.
    for nclients in [1usize, 8] {
        // Persistent connections: the measurement covers statements,
        // not TCP connects.
        let mut clients: Vec<Client> = (0..nclients)
            .map(|_| Client::connect(addr).unwrap())
            .collect();
        g.bench_function(format!("throughput_{nclients}_clients"), |b| {
            b.iter_custom(|iters| {
                let per = (iters as usize).div_ceil(nclients).max(1);
                let start = Instant::now();
                thread::scope(|s| {
                    for c in clients.iter_mut() {
                        s.spawn(move || {
                            for i in 0..per {
                                let id = (i * 37) % ROWS;
                                black_box(
                                    c.query(&format!("SELECT v FROM pts WHERE id = {id}"))
                                        .unwrap(),
                                );
                            }
                        });
                    }
                });
                start.elapsed()
            })
        });
        for c in clients {
            c.close().unwrap();
        }
    }
    g.finish();
    client.close().unwrap();
    handle.shutdown();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);

//! Fig. 6(a) as a Criterion bench: the two analytics execution paths on
//! identical (small-scale) workloads. The `figures` binary runs the
//! paper-scale version; this bench tracks regressions in the path costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurdb_core::{run_neurdb, run_pgp, AnalyticsWorkload, RowSource};
use neurdb_engine::AiEngine;
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6a_paths");
    g.sample_size(10);
    for workload in [AnalyticsWorkload::Ecommerce, AnalyticsWorkload::Healthcare] {
        let src = RowSource {
            workload,
            cluster: 0,
            n_batches: 8,
            batch_size: 256,
            seed: 5,
        };
        g.bench_with_input(
            BenchmarkId::new("neurdb_streaming", workload.label()),
            &src,
            |b, src| {
                b.iter(|| {
                    let engine = AiEngine::new();
                    black_box(run_neurdb(&engine, workload, src.clone(), 8, 5e-3).samples)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pgp_export", workload.label()),
            &src,
            |b, src| {
                b.iter(|| {
                    let engine = AiEngine::new();
                    black_box(run_pgp(&engine, workload, src.clone(), 5e-3).samples)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);

//! Ablation 1 (DESIGN.md §5): the streaming window. Sweeps the window
//! size of the data streaming protocol — window 1 degenerates to
//! ping-pong batching; large windows buy full overlap at bounded memory.
//! Also benches the raw wire codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurdb_core::{run_neurdb, AnalyticsWorkload, RowSource};
use neurdb_engine::streaming::DataBatch;
use neurdb_engine::AiEngine;
use neurdb_nn::Matrix;
use std::hint::black_box;

fn bench_window_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_window");
    g.sample_size(10);
    let src = RowSource {
        workload: AnalyticsWorkload::Ecommerce,
        cluster: 0,
        n_batches: 8,
        batch_size: 256,
        seed: 3,
    };
    for window in [1usize, 4, 16, 80] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let engine = AiEngine::new();
                black_box(
                    run_neurdb(&engine, AnalyticsWorkload::Ecommerce, src.clone(), w, 5e-3).samples,
                )
            })
        });
    }
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let batch = DataBatch {
        features: Matrix::from_vec(4096, 22, vec![1.0; 4096 * 22]),
        targets: Matrix::from_vec(4096, 1, vec![0.5; 4096]),
    };
    let enc = batch.encode();
    let mut g = c.benchmark_group("wire_codec_4096x22");
    g.bench_function("encode", |b| b.iter(|| black_box(batch.encode().len())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(DataBatch::decode(&enc).rows()))
    });
    g.finish();
}

criterion_group!(benches, bench_window_sweep, bench_wire_codec);
criterion_main!(benches);

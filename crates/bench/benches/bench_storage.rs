//! Micro-benchmarks of the storage substrate: slotted-page ops, tuple
//! codec, B-tree, buffer pool.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use neurdb_storage::{BTreeIndex, BufferPool, DiskManager, Page, RecordId, Tuple, Value};
use std::hint::black_box;
use std::sync::Arc;

fn bench_page(c: &mut Criterion) {
    let mut g = c.benchmark_group("page");
    g.bench_function("insert_100b", |b| {
        let payload = vec![7u8; 100];
        b.iter_batched(
            Page::new,
            |mut p| {
                while p.insert(black_box(&payload)).is_ok() {}
                p
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("get", |b| {
        let mut p = Page::new();
        let slot = p.insert(&[7u8; 100]).unwrap();
        b.iter(|| black_box(p.get(black_box(slot)).unwrap().len()))
    });
    g.finish();
}

fn bench_tuple(c: &mut Criterion) {
    use neurdb_storage::DataType;
    let types = vec![
        DataType::Int,
        DataType::Float,
        DataType::Text,
        DataType::Bool,
    ];
    let t = Tuple::new(vec![
        Value::Int(42),
        Value::Float(0.5),
        Value::Text("benchmark tuple".into()),
        Value::Bool(true),
    ]);
    let enc = t.encode(&types).unwrap();
    let mut g = c.benchmark_group("tuple");
    g.bench_function("encode", |b| {
        b.iter(|| black_box(t.encode(&types).unwrap()))
    });
    g.bench_function("decode", |b| {
        b.iter(|| black_box(Tuple::decode(&enc, &types).unwrap()))
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.bench_function("insert_10k", |b| {
        b.iter_batched(
            BTreeIndex::new,
            |mut t| {
                for i in 0..10_000i64 {
                    t.insert(Value::Int(i), RecordId::new(i as u64, 0));
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    let mut t = BTreeIndex::new();
    for i in 0..100_000i64 {
        t.insert(Value::Int(i), RecordId::new(i as u64, 0));
    }
    g.bench_function("point_lookup_100k", |b| {
        b.iter(|| black_box(t.get(&Value::Int(black_box(77_777)))))
    });
    g.bench_function("range_1k_of_100k", |b| {
        b.iter(|| {
            black_box(
                t.range(Some(&Value::Int(50_000)), Some(&Value::Int(50_999)))
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    // Hot: working set fits.
    let pool = BufferPool::new(Arc::new(DiskManager::new()), 64);
    let ids: Vec<_> = (0..32).map(|_| pool.allocate_page().unwrap()).collect();
    g.bench_function("hit_heavy_access", |b| {
        let mut i = 0;
        b.iter(|| {
            let id = ids[i % ids.len()];
            i += 1;
            pool.with_page(id, |p| black_box(p.free_space())).unwrap()
        })
    });
    // Cold: working set 4x the pool -> constant eviction.
    let pool2 = BufferPool::new(Arc::new(DiskManager::new()), 16);
    let ids2: Vec<_> = (0..64).map(|_| pool2.allocate_page().unwrap()).collect();
    g.bench_function("eviction_heavy_access", |b| {
        let mut i = 0;
        b.iter(|| {
            let id = ids2[i % ids2.len()];
            i += 7; // stride defeats clock locality
            pool2.with_page(id, |p| black_box(p.free_space())).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_page,
    bench_tuple,
    bench_btree,
    bench_buffer_pool
);
criterion_main!(benches);

//! Durability micro-benchmarks: WAL append throughput, commit latency
//! under each fsync policy (group commit vs per-commit fsync), recovery
//! replay speed, and checkpoint cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use neurdb_storage::{ColumnDef, DataType, RecordId, Schema, Tuple, Value};
use neurdb_wal::{DurableStore, DurableStoreOptions, FsyncPolicy, Wal, WalOptions, WalRecord};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "neurdb-bench-wal-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn sample_record(i: u64) -> WalRecord {
    WalRecord::HeapInsert {
        txn: i,
        table: "bench".into(),
        rid: RecordId::new(i / 64, (i % 64) as u16),
        tuple: vec![0xAB; 100],
    }
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append");
    g.throughput(Throughput::Elements(1));
    g.bench_function("append_100b_record", |b| {
        let dir = tmpdir("append");
        let wal = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 64 << 20,
                fsync: FsyncPolicy::Never,
                ..WalOptions::default()
            },
        )
        .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(wal.append(&sample_record(i)))
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    });
    g.finish();
}

fn bench_commit_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_commit");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(300));
    for (name, policy) in [
        ("never", FsyncPolicy::Never),
        ("group_1ms", FsyncPolicy::Group(Duration::from_millis(1))),
        ("fsync_always", FsyncPolicy::Always),
    ] {
        g.bench_with_input(
            BenchmarkId::new("append_commit", name),
            &policy,
            |b, policy| {
                let dir = tmpdir(name);
                let wal = Wal::open(
                    &dir,
                    WalOptions {
                        segment_bytes: 64 << 20,
                        fsync: *policy,
                        ..WalOptions::default()
                    },
                )
                .unwrap();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let lsn = wal.append(&sample_record(i));
                    wal.commit(lsn).unwrap();
                    lsn
                });
                drop(wal);
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
    }
    g.finish();
}

fn store_opts() -> DurableStoreOptions {
    DurableStoreOptions {
        frames: 256,
        wal: WalOptions {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::Never,
            ..WalOptions::default()
        },
        ..Default::default()
    }
}

fn prepare_store(rows: usize) -> PathBuf {
    let dir = tmpdir("replay");
    let (store, _) = DurableStore::open(&dir, store_opts()).unwrap();
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int).not_null().unique(),
        ColumnDef::new("payload", DataType::Text),
    ]);
    let txn = store.begin();
    store.create_table(txn, "t", schema).unwrap();
    store.create_index(txn, "t", 0).unwrap();
    store.commit(txn).unwrap();
    for i in 0..rows {
        let txn = store.begin();
        store
            .insert(
                txn,
                "t",
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Text(format!("row payload {i}")),
                ]),
            )
            .unwrap();
        store.commit(txn).unwrap();
    }
    store.sync().unwrap();
    dir
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_recovery");
    g.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let dir = prepare_store(rows);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("replay_rows", rows), &dir, |b, dir| {
            b.iter(|| {
                let (store, _) = DurableStore::open(dir, store_opts()).unwrap();
                black_box(store.table("t").unwrap().len().unwrap())
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_checkpoint");
    g.sample_size(10);
    let dir = prepare_store(5_000);
    let (store, _) = DurableStore::open(&dir, store_opts()).unwrap();
    g.bench_function("checkpoint_5k_rows", |b| {
        b.iter(|| store.checkpoint(Vec::new).unwrap())
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(
    benches,
    bench_append,
    bench_commit_policies,
    bench_recovery,
    bench_checkpoint
);
criterion_main!(benches);

//! Ablation 2 (DESIGN.md §5): incremental update depth. Varies the frozen
//! prefix of the fine-tuned ArmNet — 0 frozen layers is full retraining,
//! `n-1` is head-only tuning — measuring adaptation wall-clock. Also
//! benches model (dis)assembly through the layered model storage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurdb_core::{build_batches, AnalyticsWorkload};
use neurdb_engine::streaming::{stream_from_source, Handshake, StreamParams};
use neurdb_engine::AiEngine;
use neurdb_nn::{armnet_spec, LossKind};
use std::hint::black_box;

fn setup(engine: &AiEngine) -> neurdb_engine::Mid {
    let cfg = AnalyticsWorkload::Ecommerce.config();
    let batches = build_batches(AnalyticsWorkload::Ecommerce, 0, 8, 256, 1);
    let hs = Handshake {
        model_descriptor: "bench".into(),
        params: StreamParams {
            batch_size: 256,
            window: 8,
        },
    };
    let (rx, h) = stream_from_source(&hs, batches.into_iter());
    let out = engine.train_streaming(armnet_spec(&cfg), LossKind::Mse, 5e-3, rx);
    h.join().unwrap();
    out.mid
}

fn bench_frozen_prefix(c: &mut Criterion) {
    let engine = AiEngine::new();
    let mid = setup(&engine);
    let n_layers = armnet_spec(&AnalyticsWorkload::Ecommerce.config()).len();
    let mut g = c.benchmark_group("finetune_frozen_prefix");
    g.sample_size(10);
    for frozen in [0usize, 2, n_layers - 1] {
        g.bench_with_input(BenchmarkId::from_parameter(frozen), &frozen, |b, &f| {
            b.iter(|| {
                let batches = build_batches(AnalyticsWorkload::Ecommerce, 1, 4, 256, 2);
                let hs = Handshake {
                    model_descriptor: "ft".into(),
                    params: StreamParams {
                        batch_size: 256,
                        window: 8,
                    },
                };
                let (rx, h) = stream_from_source(&hs, batches.into_iter());
                let out = engine
                    .finetune_streaming(mid, LossKind::Mse, 5e-3, f, rx)
                    .unwrap();
                h.join().unwrap();
                black_box(out.version)
            })
        });
    }
    g.finish();
}

fn bench_model_assembly(c: &mut Criterion) {
    let engine = AiEngine::new();
    let mid = setup(&engine);
    // Create 10 incremental versions so assembly walks the layer table.
    for _ in 0..10 {
        let batches = build_batches(AnalyticsWorkload::Ecommerce, 0, 1, 128, 3);
        let hs = Handshake {
            model_descriptor: "v".into(),
            params: StreamParams {
                batch_size: 128,
                window: 4,
            },
        };
        let (rx, h) = stream_from_source(&hs, batches.into_iter());
        engine
            .finetune_streaming(mid, LossKind::Mse, 5e-3, 6, rx)
            .unwrap();
        h.join().unwrap();
    }
    c.bench_function("materialize_latest_of_11_versions", |b| {
        b.iter(|| black_box(engine.models.materialize_latest(mid).unwrap().num_layers()))
    });
    let report = engine.models.storage_report();
    println!(
        "\n[storage] {} versions, {} layer rows, {:.1}% saved vs naive",
        report.versions,
        report.layer_rows,
        100.0 * report.savings()
    );
}

criterion_group!(benches, bench_frozen_prefix, bench_model_assembly);
criterion_main!(benches);

//! Micro-benchmarks of the NN substrate: matmul, ArmNet forward/backward,
//! attention, tree encoding — the compute side of every analytics figure.

use criterion::{criterion_group, criterion_main, Criterion};
use neurdb_nn::{
    armnet_spec, ArmNetConfig, Layer, LossKind, Matrix, Model, MultiHeadAttention, OptimConfig,
    Trainer, TreeEncoder, TreeNode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::xavier(128, 128, &mut rng);
    let b = Matrix::xavier(128, 128, &mut rng);
    c.bench_function("matmul_128", |bch| bch.iter(|| black_box(a.matmul(&b))));
    c.bench_function("matmul_t_128", |bch| bch.iter(|| black_box(a.matmul_t(&b))));
}

fn bench_armnet(c: &mut Criterion) {
    let cfg = ArmNetConfig {
        nfields: 22,
        vocab: 2048,
        embed_dim: 8,
        hidden: 32,
        outputs: 1,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let model = Model::from_spec(armnet_spec(&cfg), &mut rng);
    let mut trainer = Trainer::new(model, LossKind::Mse, OptimConfig::default());
    let x = Matrix::from_vec(256, 22, (0..256 * 22).map(|i| (i % 2048) as f32).collect());
    let y = Matrix::from_vec(256, 1, (0..256).map(|i| (i % 2) as f32).collect());
    c.bench_function("armnet_train_batch_256", |b| {
        b.iter(|| black_box(trainer.train_batch(&x, &y)))
    });
    c.bench_function("armnet_forward_256", |b| {
        b.iter(|| black_box(trainer.predict(&x).mean()))
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut mha = MultiHeadAttention::new(32, 4, &mut rng);
    let x = Matrix::xavier(16, 32, &mut rng);
    c.bench_function("mha_forward_16x32", |b| {
        b.iter(|| black_box(mha.forward(&x)))
    });
}

fn bench_tree_encoder(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let enc = TreeEncoder::new(8, 16, &mut rng);
    // Left-deep 8-table plan tree.
    let mut tree = TreeNode::leaf(vec![0.5; 8]);
    for i in 0..7 {
        tree = TreeNode::inner(
            vec![i as f32 / 7.0; 8],
            vec![tree, TreeNode::leaf(vec![0.25; 8])],
        );
    }
    c.bench_function("tree_encode_8way_plan", |b| {
        b.iter(|| black_box(enc.encode(&tree).0[0]))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_armnet,
    bench_attention,
    bench_tree_encoder
);
criterion_main!(benches);

//! Executor micro-benchmarks: scan, hash-join, and aggregate throughput
//! through the planner + batch-operator pipeline. CI runs this bench as a
//! smoke test so regressions in the SELECT hot path surface early.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use neurdb_core::Database;
use std::hint::black_box;
use std::time::Duration;

const USERS: usize = 2_000;
const POSTS: usize = 8_000;

fn setup() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE users (id INT PRIMARY KEY, age INT, score FLOAT)")
        .unwrap();
    db.execute("CREATE TABLE posts (pid INT PRIMARY KEY, owner INT, likes INT)")
        .unwrap();
    db.execute("CREATE TABLE tags (tid INT PRIMARY KEY, post INT)")
        .unwrap();
    let mut stmt = String::from("INSERT INTO users VALUES ");
    for i in 0..USERS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {}, {}.5)", i % 60, i % 10));
    }
    db.execute(&stmt).unwrap();
    let mut stmt = String::from("INSERT INTO posts VALUES ");
    for i in 0..POSTS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {}, {})", i % USERS, i % 100));
    }
    db.execute(&stmt).unwrap();
    let mut stmt = String::from("INSERT INTO tags VALUES ");
    for i in 0..POSTS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {})", i % POSTS));
    }
    db.execute(&stmt).unwrap();
    db
}

fn bench_exec(c: &mut Criterion) {
    let db = setup();
    let mut g = c.benchmark_group("exec");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(300));

    g.throughput(Throughput::Elements(USERS as u64));
    g.bench_function("seq_scan_filter", |b| {
        b.iter(|| {
            black_box(
                db.execute("SELECT id FROM users WHERE age < 30 AND score > 2")
                    .unwrap(),
            )
        })
    });

    g.throughput(Throughput::Elements(POSTS as u64));
    g.bench_function("hash_join_2way", |b| {
        b.iter(|| {
            black_box(
                db.execute(
                    "SELECT u.id, p.likes FROM users u, posts p \
                     WHERE u.id = p.owner AND p.likes > 90",
                )
                .unwrap(),
            )
        })
    });

    g.throughput(Throughput::Elements(POSTS as u64));
    g.bench_function("qo_join_3way", |b| {
        b.iter(|| {
            black_box(
                db.execute(
                    "SELECT COUNT(*) FROM users u, posts p, tags t \
                     WHERE u.id = p.owner AND p.pid = t.post AND u.age < 10",
                )
                .unwrap(),
            )
        })
    });

    g.throughput(Throughput::Elements(USERS as u64));
    g.bench_function("hash_aggregate", |b| {
        b.iter(|| {
            black_box(
                db.execute("SELECT age, COUNT(*), AVG(score) FROM users GROUP BY age")
                    .unwrap(),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);

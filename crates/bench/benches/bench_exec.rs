//! Executor micro-benchmarks: scan, hash-join, and aggregate throughput
//! through the planner + batch-operator pipeline. CI runs this bench as a
//! smoke test so regressions in the SELECT hot path surface early.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use neurdb_core::Database;
use std::hint::black_box;
use std::time::Duration;

const USERS: usize = 2_000;
const POSTS: usize = 8_000;

fn setup() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE users (id INT PRIMARY KEY, age INT, score FLOAT)")
        .unwrap();
    db.execute("CREATE TABLE posts (pid INT PRIMARY KEY, owner INT, likes INT)")
        .unwrap();
    db.execute("CREATE TABLE tags (tid INT PRIMARY KEY, post INT)")
        .unwrap();
    let mut stmt = String::from("INSERT INTO users VALUES ");
    for i in 0..USERS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {}, {}.5)", i % 60, i % 10));
    }
    db.execute(&stmt).unwrap();
    let mut stmt = String::from("INSERT INTO posts VALUES ");
    for i in 0..POSTS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {}, {})", i % USERS, i % 100));
    }
    db.execute(&stmt).unwrap();
    let mut stmt = String::from("INSERT INTO tags VALUES ");
    for i in 0..POSTS {
        if i > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({i}, {})", i % POSTS));
    }
    db.execute(&stmt).unwrap();
    db
}

fn bench_exec(c: &mut Criterion) {
    let db = setup();
    let mut g = c.benchmark_group("exec");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(300));

    g.throughput(Throughput::Elements(USERS as u64));
    g.bench_function("seq_scan_filter", |b| {
        b.iter(|| {
            black_box(
                db.execute("SELECT id FROM users WHERE age < 30 AND score > 2")
                    .unwrap(),
            )
        })
    });

    g.throughput(Throughput::Elements(POSTS as u64));
    g.bench_function("hash_join_2way", |b| {
        b.iter(|| {
            black_box(
                db.execute(
                    "SELECT u.id, p.likes FROM users u, posts p \
                     WHERE u.id = p.owner AND p.likes > 90",
                )
                .unwrap(),
            )
        })
    });

    g.throughput(Throughput::Elements(POSTS as u64));
    g.bench_function("qo_join_3way", |b| {
        b.iter(|| {
            black_box(
                db.execute(
                    "SELECT COUNT(*) FROM users u, posts p, tags t \
                     WHERE u.id = p.owner AND p.pid = t.post AND u.age < 10",
                )
                .unwrap(),
            )
        })
    });

    g.throughput(Throughput::Elements(USERS as u64));
    g.bench_function("hash_aggregate", |b| {
        b.iter(|| {
            black_box(
                db.execute("SELECT age, COUNT(*), AVG(score) FROM users GROUP BY age")
                    .unwrap(),
            )
        })
    });

    g.finish();
}

/// Morsel-driven parallel execution: the same scan+filter+aggregate
/// workload at dop=1 vs dop=4 (`SET parallelism`). On a multi-core box
/// the dop=4 numbers demonstrate the fan-out speedup; on any box they
/// guard the parallel path (partitioned scans, Gather, partial-aggregate
/// merge) against regressions.
fn bench_parallel(c: &mut Criterion) {
    const EVENTS: usize = 40_000;
    let db = Database::new();
    db.execute("CREATE TABLE events (eid INT PRIMARY KEY, kind INT, weight FLOAT)")
        .unwrap();
    // Chunked inserts keep single-statement parse time bounded.
    for chunk in 0..(EVENTS / 4000) {
        let mut stmt = String::from("INSERT INTO events VALUES ");
        for i in (chunk * 4000)..((chunk + 1) * 4000) {
            if i > chunk * 4000 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({i}, {}, {}.75)", i % 97, i % 31));
        }
        db.execute(&stmt).unwrap();
    }

    let mut g = c.benchmark_group("exec_parallel");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500));
    g.throughput(Throughput::Elements(EVENTS as u64));

    for dop in [1usize, 4] {
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        g.bench_function(format!("scan_filter_agg_dop{dop}"), |b| {
            b.iter(|| {
                black_box(
                    db.execute(
                        "SELECT kind, COUNT(*), SUM(weight), MAX(eid) FROM events \
                         WHERE weight > 3 AND kind < 80 GROUP BY kind",
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_function(format!("scan_filter_dop{dop}"), |b| {
            b.iter(|| {
                black_box(
                    db.execute("SELECT eid FROM events WHERE kind = 13 AND weight > 10")
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Partitioned parallel hash join: a fan-out-worthy probe side joined
/// to a small build side at dop=1 vs dop=4 (`SET parallelism`). dop=1
/// runs the classic serial hash join; dop=4 hash-partitions the build
/// side and probes it from 4 morsel workers, so the delta is the join
/// fan-out itself.
fn bench_join_parallel(c: &mut Criterion) {
    const FACTS: usize = 40_000;
    const DIMS: usize = 200;
    let db = Database::new();
    db.execute("CREATE TABLE facts (fid INT PRIMARY KEY, dim INT, val INT)")
        .unwrap();
    db.execute("CREATE TABLE dims (did INT PRIMARY KEY, label INT)")
        .unwrap();
    for chunk in 0..(FACTS / 4000) {
        let mut stmt = String::from("INSERT INTO facts VALUES ");
        for i in (chunk * 4000)..((chunk + 1) * 4000) {
            if i > chunk * 4000 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({i}, {}, {})", i % DIMS, i % 1000));
        }
        db.execute(&stmt).unwrap();
    }
    let mut stmt = String::from("INSERT INTO dims VALUES ");
    for d in 0..DIMS {
        if d > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({d}, {})", d % 10));
    }
    db.execute(&stmt).unwrap();

    let mut g = c.benchmark_group("exec_join_parallel");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500));
    g.throughput(Throughput::Elements(FACTS as u64));

    for dop in [1usize, 4] {
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        g.bench_function(format!("hash_join_probe_dop{dop}"), |b| {
            b.iter(|| {
                black_box(
                    db.execute(
                        "SELECT f.fid, d.label FROM facts f, dims d \
                         WHERE f.dim = d.did AND d.label = 3 AND f.val < 500",
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_function(format!("join_agg_dop{dop}"), |b| {
            b.iter(|| {
                black_box(
                    db.execute(
                        "SELECT COUNT(*), SUM(f.val) FROM facts f, dims d \
                         WHERE f.dim = d.did AND d.label < 5",
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Repartitioning-exchange shapes at dop=1 vs dop=4: parallel build
/// (small probe, fan-out-worthy build side), partition-wise join (both
/// sides repartitioned, each worker joins one partition pair), and
/// aggregation pushed into the join workers (only partial-aggregate
/// state rows cross the output channel). dop=1 runs the serial hash
/// join, so the delta isolates each exchange shape.
fn bench_repartition(c: &mut Criterion) {
    const RFACTS: usize = 30_000;
    const RDIMS: usize = 6_000;
    const SPROBE: usize = 300;
    let db = Database::new();
    db.execute("CREATE TABLE rfacts (fid INT PRIMARY KEY, dim INT, val INT)")
        .unwrap();
    db.execute("CREATE TABLE rdims (did INT PRIMARY KEY, grp INT)")
        .unwrap();
    db.execute("CREATE TABLE sprobe (sid INT PRIMARY KEY, k INT)")
        .unwrap();
    for chunk in 0..(RFACTS / 3000) {
        let mut stmt = String::from("INSERT INTO rfacts VALUES ");
        for i in (chunk * 3000)..((chunk + 1) * 3000) {
            if i > chunk * 3000 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({i}, {}, {})", i % RDIMS, i % 1000));
        }
        db.execute(&stmt).unwrap();
    }
    for chunk in 0..(RDIMS / 3000) {
        let mut stmt = String::from("INSERT INTO rdims VALUES ");
        for d in (chunk * 3000)..((chunk + 1) * 3000) {
            if d > chunk * 3000 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({d}, {})", d % 16));
        }
        db.execute(&stmt).unwrap();
    }
    let mut stmt = String::from("INSERT INTO sprobe VALUES ");
    for s in 0..SPROBE {
        if s > 0 {
            stmt.push(',');
        }
        stmt.push_str(&format!("({s}, {})", (s * 17) % RDIMS));
    }
    db.execute(&stmt).unwrap();

    let mut g = c.benchmark_group("exec_repartition");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500));
    g.throughput(Throughput::Elements(RFACTS as u64));

    for dop in [1usize, 4] {
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        g.bench_function(format!("build_parallel_join_dop{dop}"), |b| {
            b.iter(|| {
                black_box(
                    db.execute(
                        "SELECT s.sid, d.grp FROM sprobe s, rdims d \
                         WHERE s.k = d.did",
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_function(format!("partition_wise_join_dop{dop}"), |b| {
            b.iter(|| {
                black_box(
                    db.execute(
                        "SELECT f.fid, d.grp FROM rfacts f, rdims d \
                         WHERE f.dim = d.did AND d.grp < 4",
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_function(format!("join_agg_pushdown_dop{dop}"), |b| {
            b.iter(|| {
                black_box(
                    db.execute(
                        "SELECT d.grp, COUNT(*), SUM(f.val) FROM rfacts f, rdims d \
                         WHERE f.dim = d.did GROUP BY d.grp",
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_exec,
    bench_parallel,
    bench_join_parallel,
    bench_repartition
);
criterion_main!(benches);

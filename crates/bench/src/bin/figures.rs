//! Regenerate every table and figure of the NeurDB paper's evaluation
//! (Section 5). Each subcommand prints the same series the paper plots;
//! EXPERIMENTS.md records the paper-vs-measured comparison.
//!
//! ```sh
//! cargo run --release -p neurdb-bench --bin figures -- all
//! cargo run --release -p neurdb-bench --bin figures -- fig6a
//! ```
//!
//! Subcommands: `table1 fig6a fig6b fig6c fig7a fig7b fig8 all`.
//! Scale-sensitive experiments accept `--quick` for a fast smoke run.

use neurdb_cc::{
    run_learned_adaptive, run_polyjuice_adaptive, AdaptConfig, LearnedCc, Phase, PolyjuiceCc,
};
use neurdb_core::{run_neurdb, run_pgp, AnalyticsWorkload, RowSource};
use neurdb_engine::streaming::{stream_from_source, Handshake, StreamParams};
use neurdb_engine::AiEngine;
use neurdb_nn::{armnet_spec, LossKind};
use neurdb_qo::{
    latency_of, BaoOptimizer, CostBasedOptimizer, LeroOptimizer, NeurQo, Optimizer, PretrainConfig,
};
use neurdb_sql::parse;
use neurdb_txn::{run_workload, EngineConfig, Ssi, TxnEngine};
use neurdb_workloads::{
    query_graph, stats_queries, DriftLevel, Tpcc, TpccConfig, Ycsb, YcsbConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");
    match what {
        "table1" => table1(),
        "fig6a" => fig6a(quick),
        "fig6b" => fig6b(quick),
        "fig6c" => fig6c(quick),
        "fig7a" => fig7a(quick),
        "fig7b" => fig7b(quick),
        "fig8" => fig8(quick),
        "all" => {
            table1();
            fig6a(quick);
            fig6b(quick);
            fig6c(quick);
            fig7a(quick);
            fig7b(quick);
            fig8(quick);
        }
        other => {
            eprintln!(
                "unknown figure '{other}'; use table1|fig6a|fig6b|fig6c|fig7a|fig7b|fig8|all"
            );
            std::process::exit(1);
        }
    }
}

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Table 1: the AI analytics statements of workloads E and H.
fn table1() {
    header("Table 1: Queries for AI Analytics Evaluations");
    let queries = [
        (
            "E-Commerce (E)",
            "PREDICT VALUE OF click_rate FROM avazu TRAIN ON *",
        ),
        (
            "Healthcare (H)",
            "PREDICT CLASS OF outcome FROM diabetes TRAIN ON *",
        ),
    ];
    for (w, q) in queries {
        parse(q).expect("Table 1 statement parses");
        println!("{w:16} {q}   [parses OK]");
    }
}

/// Fig. 6(a): end-to-end latency and training throughput, NeurDB vs
/// PostgreSQL+P, workloads E and H.
fn fig6a(quick: bool) {
    header("Fig 6(a): End-to-end analytics performance (NeurDB vs PostgreSQL+P)");
    let (n_batches, batch) = if quick { (10, 512) } else { (80, 4096) };
    println!("({n_batches} batches x {batch} records, window 80)\n");
    println!(
        "{:10} {:>14} {:>14} {:>10} {:>16} {:>16} {:>9}",
        "workload",
        "neurdb lat(s)",
        "pg+p lat(s)",
        "lat drop",
        "neurdb thr(s/s)",
        "pg+p thr(s/s)",
        "thr gain"
    );
    for w in [AnalyticsWorkload::Ecommerce, AnalyticsWorkload::Healthcare] {
        let engine = AiEngine::new();
        let src = RowSource {
            workload: w,
            cluster: 0,
            n_batches,
            batch_size: batch,
            seed: 42,
        };
        let n = run_neurdb(&engine, w, src.clone(), 80, 5e-3);
        let p = run_pgp(&engine, w, src, 5e-3);
        println!(
            "{:10} {:>14.3} {:>14.3} {:>9.1}% {:>16.0} {:>16.0} {:>8.2}x",
            w.label(),
            n.total_seconds,
            p.total_seconds,
            100.0 * (1.0 - n.total_seconds / p.total_seconds),
            n.throughput(),
            p.throughput(),
            n.throughput() / p.throughput(),
        );
    }
    println!("\npaper: E 41.3% lower latency / 1.96x throughput; H 48.6% / 2.92x");
}

/// Fig. 6(b): latency vs number of data batches (workload E).
fn fig6b(quick: bool) {
    header("Fig 6(b): Effects of data volume (workload E latency vs #batches)");
    let sweep: &[usize] = if quick {
        &[5, 10, 20]
    } else {
        &[20, 40, 80, 160, 320, 640]
    };
    let batch = if quick { 512 } else { 2048 };
    println!("(batch size {batch}; paper uses 4096 — the series is volume scaling)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>9}",
        "#batches", "neurdb (s)", "pg+p (s)", "speedup"
    );
    for &n_batches in sweep {
        let engine = AiEngine::new();
        let src = RowSource {
            workload: AnalyticsWorkload::Ecommerce,
            cluster: 0,
            n_batches,
            batch_size: batch,
            seed: 7,
        };
        let n = run_neurdb(&engine, AnalyticsWorkload::Ecommerce, src.clone(), 80, 5e-3);
        let p = run_pgp(&engine, AnalyticsWorkload::Ecommerce, src, 5e-3);
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>8.2}x",
            n_batches,
            n.total_seconds,
            p.total_seconds,
            p.total_seconds / n.total_seconds
        );
    }
    println!("\npaper: NeurDB consistently below PostgreSQL+P across data volumes");
}

/// Fig. 6(c): training loss under cluster-switch drift, with vs without
/// the incremental model update.
fn fig6c(quick: bool) {
    header("Fig 6(c): Loss under data drift (with vs without incremental update)");
    let (batches_per_cluster, batch) = if quick { (6, 512) } else { (20, 4096) };
    let switch_every = batches_per_cluster * batch;
    println!(
        "(clusters C1..C5, switching every {switch_every} samples; 'w/o' \
         retrains from scratch at each drift, 'with' fine-tunes the trailing \
         layers of the previous version — the paper's incremental update)\n"
    );
    let cfg = AnalyticsWorkload::Ecommerce.config();
    let spec = armnet_spec(&cfg);
    let hs = |b: usize| Handshake {
        model_descriptor: "fig6c".into(),
        params: StreamParams {
            batch_size: b,
            window: 80,
        },
    };
    // Variant A: w/o incremental update — fresh model per cluster.
    let engine_a = AiEngine::new();
    let mut losses_a: Vec<f32> = Vec::new();
    for cluster in 0..5 {
        let src = RowSource {
            workload: AnalyticsWorkload::Ecommerce,
            cluster,
            n_batches: batches_per_cluster,
            batch_size: batch,
            seed: 100 + cluster as u64,
        };
        let (rx, h) = stream_from_source(
            &hs(batch),
            (0..batches_per_cluster).map(move |i| src.wire_batch(i, &cfg)),
        );
        let out = engine_a.train_streaming(spec.clone(), LossKind::Mse, 5e-3, rx);
        h.join().unwrap();
        losses_a.extend(out.losses);
    }
    // Variant B: with incremental update — one model, fine-tuned at drift.
    let engine_b = AiEngine::new();
    let mut losses_b: Vec<f32> = Vec::new();
    let mut mid = None;
    for cluster in 0..5 {
        let src = RowSource {
            workload: AnalyticsWorkload::Ecommerce,
            cluster,
            n_batches: batches_per_cluster,
            batch_size: batch,
            seed: 100 + cluster as u64,
        };
        let (rx, h) = stream_from_source(
            &hs(batch),
            (0..batches_per_cluster).map(move |i| src.wire_batch(i, &cfg)),
        );
        let out = match mid {
            None => engine_b.train_streaming(spec.clone(), LossKind::Mse, 5e-3, rx),
            Some(m) => engine_b
                .finetune_streaming(m, LossKind::Mse, 5e-3, 2, rx)
                .expect("finetune"),
        };
        h.join().unwrap();
        mid = Some(out.mid);
        losses_b.extend(out.losses);
    }
    println!(
        "{:>12} {:>22} {:>22}",
        "samples", "loss w/o inc. update", "loss with inc. update"
    );
    for (i, (a, b)) in losses_a.iter().zip(losses_b.iter()).enumerate() {
        if i % (batches_per_cluster / 2).max(1) == 0 || (i % batches_per_cluster) < 2 {
            println!("{:>12} {:>22.4} {:>22.4}", (i + 1) * batch, a, b);
        }
    }
    // Post-drift summary: mean loss over the 2 batches after each switch.
    let mut spike_a = 0.0;
    let mut spike_b = 0.0;
    for c in 1..5 {
        let at = c * batches_per_cluster;
        spike_a += (losses_a[at] + losses_a[at + 1]) / 2.0;
        spike_b += (losses_b[at] + losses_b[at + 1]) / 2.0;
    }
    println!(
        "\nmean post-drift loss (first 2 batches after each switch): \
         w/o {:.4} vs with {:.4}",
        spike_a / 4.0,
        spike_b / 4.0
    );
    println!("paper: incremental updates yield lower loss at each drift and faster convergence");
}

/// Fig. 7(a): YCSB transaction throughput, NeurDB learned CC vs
/// PostgreSQL's SSI, at 4 and 16 threads.
fn fig7a(quick: bool) {
    header("Fig 7(a): Learned CC vs PostgreSQL (SSI) on YCSB");
    let records = if quick { 50_000 } else { 1_000_000 };
    let dur = Duration::from_millis(if quick { 300 } else { 2000 });
    // The paper's micro-benchmark spec gives no skew; moderate zipf(0.5)
    // reproduces its contention regime (its 1.44x gain implies SSI is not
    // in abort collapse — see EXPERIMENTS.md).
    let theta = 0.5;
    println!("({records} records, 5 selects + 5 updates per txn, zipfian {theta})\n");
    println!(
        "{:>8} {:>18} {:>18} {:>7}",
        "threads", "postgres(ssi) t/s", "neurdb(cc) t/s", "gain"
    );
    for threads in [4usize, 16] {
        let ycsb = Arc::new(Ycsb::new(YcsbConfig {
            records,
            theta,
            ..Default::default()
        }));
        let mut results = Vec::new();
        for learned in [false, true] {
            let engine = if learned {
                Arc::new(TxnEngine::new(
                    Arc::new(LearnedCc::seeded()),
                    EngineConfig::default(),
                ))
            } else {
                Arc::new(TxnEngine::new(Arc::new(Ssi), EngineConfig::default()))
            };
            ycsb.load(&engine);
            let y = ycsb.clone();
            let stats = run_workload(&engine, threads, dur, move |tid, seq| {
                y.transaction_for(tid, seq)
            });
            results.push(stats.throughput());
        }
        println!(
            "{:>8} {:>18.0} {:>18.0} {:>6.2}x",
            threads,
            results[0],
            results[1],
            results[1] / results[0]
        );
    }
    println!("\npaper: NeurDB up to 1.44x higher throughput than PostgreSQL");
}

/// Fig. 7(b): throughput timeline under TPC-C drift, NeurDB(CC) vs
/// Polyjuice.
fn fig7b(quick: bool) {
    header("Fig 7(b): Throughput under workload drift (NeurDB(CC) vs Polyjuice)");
    let slice = Duration::from_millis(if quick { 100 } else { 400 });
    let slices = if quick { 3 } else { 6 };
    println!("(phases: 8thr/1wh -> 8thr/2wh -> 16thr/1wh, {slices} slices of {slice:?} each)\n");
    // Shared generators; the warehouse count changes per phase.
    let make_phases = |slices: usize| -> Vec<Phase> {
        let one = Arc::new(Tpcc::new(TpccConfig {
            warehouses: 1,
            ..Default::default()
        }));
        let two = Arc::new(Tpcc::new(TpccConfig {
            warehouses: 2,
            ..Default::default()
        }));
        let g1 = {
            let t = one.clone();
            Arc::new(move |tid: usize, seq: u64| t.transaction_for(tid, seq)) as neurdb_cc::TxnGen
        };
        let g2 = {
            let t = two.clone();
            Arc::new(move |tid: usize, seq: u64| t.transaction_for(tid, seq)) as neurdb_cc::TxnGen
        };
        let g3 = {
            let t = one;
            Arc::new(move |tid: usize, seq: u64| t.transaction_for(tid, seq)) as neurdb_cc::TxnGen
        };
        vec![
            Phase {
                label: "8 threads / 1 warehouse".into(),
                threads: 8,
                slices,
                gen: g1,
            },
            Phase {
                label: "8 threads / 2 warehouses".into(),
                threads: 8,
                slices,
                gen: g2,
            },
            Phase {
                label: "16 threads / 1 warehouse".into(),
                threads: 16,
                slices,
                gen: g3,
            },
        ]
    };
    let load = |engine: &Arc<TxnEngine>| {
        Tpcc::new(TpccConfig {
            warehouses: 2,
            ..Default::default()
        })
        .load(engine);
    };
    // NeurDB(CC).
    let policy = Arc::new(LearnedCc::seeded());
    let engine = Arc::new(TxnEngine::new(policy.clone(), EngineConfig::default()));
    load(&engine);
    let tl_neurdb = run_learned_adaptive(
        &engine,
        &policy,
        &make_phases(slices),
        slice,
        AdaptConfig {
            candidates: 4,
            refine_iters: 4,
            ..Default::default()
        },
        1,
    );
    // Polyjuice.
    let pj = Arc::new(PolyjuiceCc::default_policy());
    let engine2 = Arc::new(TxnEngine::new(pj.clone(), EngineConfig::default()));
    load(&engine2);
    let tl_pj = run_polyjuice_adaptive(&engine2, &pj, &make_phases(slices), slice, 2);
    println!("NeurDB(CC) timeline:");
    for p in &tl_neurdb {
        println!(
            "  t={:>7.2}s {:>10.0} txn/s{}",
            p.t,
            p.throughput,
            if p.adapted { "  [adapted]" } else { "" }
        );
    }
    println!("Polyjuice timeline:");
    for p in &tl_pj {
        println!(
            "  t={:>7.2}s {:>10.0} txn/s{}",
            p.t,
            p.throughput,
            if p.adapted { "  [adapted]" } else { "" }
        );
    }
    // Steady-state comparison over the final phase.
    let tail = |tl: &[neurdb_cc::TimelinePoint]| -> f64 {
        let n = tl.len();
        tl[n - slices..].iter().map(|p| p.throughput).sum::<f64>() / slices as f64
    };
    println!(
        "\nfinal-phase mean throughput: NeurDB(CC) {:.0} vs Polyjuice {:.0} ({:.2}x)",
        tail(&tl_neurdb),
        tail(&tl_pj),
        tail(&tl_neurdb) / tail(&tl_pj)
    );
    println!("paper: NeurDB(CC) adapts quickly to drift, up to 2.05x over Polyjuice");
}

/// Fig. 8: per-query latency of the 8 STATS SPJ queries under drift, for
/// PostgreSQL, Bao, Lero, and NeurDB.
fn fig8(quick: bool) {
    header("Fig 8: Learned query optimizers on STATS under drift");
    let iters = if quick { 80 } else { 600 };
    // Train the learned baselines on the original distribution; they stay
    // frozen afterwards ("stable models", as the paper runs them).
    let training: Vec<_> = stats_queries()
        .iter()
        .map(|q| query_graph(q, DriftLevel::Original, 0))
        .collect();
    let mut bao = BaoOptimizer::train(&training, if quick { 10 } else { 40 }, 1);
    let mut lero = LeroOptimizer::train(&training, if quick { 5 } else { 25 }, 2);
    let (mut neur, _) = NeurQo::pretrained_for(
        &training,
        PretrainConfig {
            iters,
            tables: 5,
            candidates: 6,
        },
        3,
    );
    let mut pg = CostBasedOptimizer;
    println!(
        "\n{:<22} {:>3} {:>14} {:>14} {:>14} {:>14}",
        "workload", "q#", "postgresql", "bao", "lero", "neurdb"
    );
    let mut totals = [0.0f64; 4];
    for level in [DriftLevel::Original, DriftLevel::Mild, DriftLevel::Severe] {
        for q in stats_queries() {
            let g = query_graph(&q, level, 777);
            let lat: Vec<f64> = {
                let mut v = Vec::with_capacity(4);
                for opt in [
                    &mut pg as &mut dyn Optimizer,
                    &mut bao,
                    &mut lero,
                    &mut neur,
                ] {
                    v.push(latency_of(&opt.choose_plan(&g), &g));
                }
                v
            };
            for (t, l) in totals.iter_mut().zip(lat.iter()) {
                *t += l;
            }
            println!(
                "{:<22} {:>3} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
                level.label(),
                q.id,
                lat[0],
                lat[1],
                lat[2],
                lat[3]
            );
        }
    }
    println!(
        "\ntotal simulated latency: postgresql {:.0}, bao {:.0}, lero {:.0}, neurdb {:.0}",
        totals[0], totals[1], totals[2], totals[3]
    );
    for (i, name) in ["postgresql", "bao", "lero"].iter().enumerate() {
        println!(
            "neurdb vs {name}: {:+.1}% total latency",
            100.0 * (totals[3] / totals[i] - 1.0)
        );
    }
    println!("paper: NeurDB up to 20.32% lower average latency across the evaluated queries");
}

//! Tracked benchmark trajectory: a fixed set of end-to-end workload
//! groups, each timed per-iteration with the median nanoseconds written
//! to a `BENCH_10.json` artifact. CI runs this on every push (in `--quick`
//! mode), uploads the file, and diffs it against the committed previous
//! trajectory via `scripts/compare_bench.py`, so the series of artifacts
//! across commits forms the performance trajectory of the repo — with a
//! hard gate on median regressions. Buffer-pool groups additionally
//! carry hit-ratio facts (`point_hit_ratio` et al.) that the comparator
//! reports alongside the timing deltas.
//!
//! ```sh
//! cargo run --release -p neurdb-bench --bin trajectory            # full
//! cargo run --release -p neurdb-bench --bin trajectory -- --quick # CI
//! cargo run --release -p neurdb-bench --bin trajectory -- --out /tmp/b.json
//! ```
//!
//! The JSON is hand-rendered (the workspace is dependency-free) and
//! deliberately flat: `{"groups": {"<name>": {"median_ns": N, ...}}}`.

use neurdb_core::{Database, SessionContext};
use neurdb_storage::{AccessHint, BufferConfig, BufferPool, DiskManager, PolicyKind};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct GroupResult {
    name: &'static str,
    iters: usize,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    /// Extra per-group scalar facts (e.g. hit ratios) rendered as
    /// additional JSON keys alongside the timing summary.
    extras: Vec<(&'static str, f64)>,
}

/// Time `op` for `iters` iterations (after `warmup` discarded ones) and
/// summarise the per-iteration distribution.
fn measure(
    name: &'static str,
    warmup: usize,
    iters: usize,
    mut op: impl FnMut(usize),
) -> GroupResult {
    for i in 0..warmup {
        op(i);
    }
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for i in 0..iters {
        let start = Instant::now();
        op(warmup + i);
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    GroupResult {
        name,
        iters,
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
        extras: Vec::new(),
    }
}

/// Seed `rows` rows into `table (id INT PRIMARY KEY, grp INT, v INT)`
/// with multi-row INSERT statements (fast enough to keep setup cheap).
fn seed(db: &Database, table: &str, rows: usize) {
    db.execute(&format!(
        "CREATE TABLE {table} (id INT PRIMARY KEY, grp INT, v INT)"
    ))
    .unwrap();
    let mut next = 0usize;
    while next < rows {
        let mut stmt = format!("INSERT INTO {table} VALUES ");
        let chunk = (rows - next).min(500);
        for i in 0..chunk {
            if i > 0 {
                stmt.push(',');
            }
            let id = next + i;
            write!(stmt, "({id}, {}, {})", id % 32, id % 1000).unwrap();
        }
        next += chunk;
        db.execute(&stmt).unwrap();
    }
}

/// Single-row INSERT latency against the in-memory engine.
fn bench_insert(quick: bool) -> GroupResult {
    let db = Database::new();
    db.execute("CREATE TABLE ins (id INT PRIMARY KEY, grp INT, v INT)")
        .unwrap();
    let iters = if quick { 200 } else { 2000 };
    measure("insert", iters / 10, iters, |i| {
        db.execute(&format!(
            "INSERT INTO ins VALUES ({i}, {}, {})",
            i % 32,
            i % 1000
        ))
        .unwrap();
    })
}

/// Full sequential scan with a non-indexed filter.
fn bench_seqscan(quick: bool) -> GroupResult {
    let db = Database::new();
    seed(&db, "scan", if quick { 5_000 } else { 50_000 });
    let iters = if quick { 30 } else { 200 };
    measure("seqscan_filter", 3, iters, |i| {
        let out = db
            .execute(&format!("SELECT * FROM scan WHERE v = {}", i % 1000))
            .unwrap();
        assert!(!out.rows().unwrap().rows.is_empty());
    })
}

/// Point lookup through a B-tree index (explicitly created, with table
/// statistics warmed so the planner's selectivity estimate picks the
/// indexed path rather than a blind sequential sweep).
fn bench_indexed_point(quick: bool) -> GroupResult {
    let db = Database::new();
    let rows = if quick { 5_000 } else { 50_000 };
    seed(&db, "pk", rows);
    db.execute("CREATE INDEX ON pk (id)").unwrap();
    db.table("pk").unwrap().stats().unwrap();
    let iters = if quick { 300 } else { 3000 };
    measure("indexed_point", iters / 10, iters, |i| {
        let out = db
            .execute(&format!(
                "SELECT * FROM pk WHERE id = {}",
                (i * 7919) % rows
            ))
            .unwrap();
        assert_eq!(out.rows().unwrap().rows.len(), 1);
    })
}

/// Grouped aggregate over every row, with the session parallelism knob
/// opened so the morsel-driven parallel pipeline engages.
fn bench_parallel_agg(quick: bool) -> GroupResult {
    let db = Database::new();
    seed(&db, "agg", if quick { 10_000 } else { 100_000 });
    let mut session = SessionContext::new();
    db.execute_in_session(&mut session, "SET parallelism = 4")
        .unwrap();
    let iters = if quick { 20 } else { 100 };
    measure("parallel_agg", 3, iters, |_| {
        let out = db
            .execute_in_session(
                &mut session,
                "SELECT grp, COUNT(*), SUM(v) FROM agg GROUP BY grp",
            )
            .unwrap();
        assert_eq!(out.rows().unwrap().rows.len(), 32);
    })
}

/// Grouped aggregate over a partition-wise parallel join: both sides
/// repartition on the join key, each join worker builds and probes its
/// own partition pair, and the partial aggregate runs inside the join
/// workers so only aggregate state rows cross the output channel.
fn bench_join_agg_parallel(quick: bool) -> GroupResult {
    let db = Database::new();
    seed(&db, "jfact", if quick { 10_000 } else { 60_000 });
    seed(&db, "jdim", if quick { 3_000 } else { 6_000 });
    let mut session = SessionContext::new();
    db.execute_in_session(&mut session, "SET parallelism = 4")
        .unwrap();
    let iters = if quick { 20 } else { 100 };
    measure("join_agg_parallel", 3, iters, |_| {
        let out = db
            .execute_in_session(
                &mut session,
                "SELECT d.grp, COUNT(*), SUM(f.v) FROM jfact f, jdim d \
                 WHERE f.grp = d.id GROUP BY d.grp",
            )
            .unwrap();
        assert_eq!(out.rows().unwrap().rows.len(), 32);
    })
}

/// Durable single-row INSERT: WAL append + group-commit fsync on the
/// latency path.
fn bench_wal_insert(quick: bool) -> GroupResult {
    let dir = std::env::temp_dir().join(format!("neurdb-trajectory-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = {
        let db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE dur (id INT PRIMARY KEY, grp INT, v INT)")
            .unwrap();
        let iters = if quick { 100 } else { 1000 };
        measure("wal_insert_fsync", iters / 10, iters, |i| {
            db.execute(&format!(
                "INSERT INTO dur VALUES ({i}, {}, {})",
                i % 32,
                i % 1000
            ))
            .unwrap();
        })
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Latch-contention microbench: 4 threads hammering resident pages of a
/// fully-cached pool. `shards = 1` reproduces the old single-mutex pool;
/// `shards = 8` is the default sharded geometry.
fn bench_buffer_latch(name: &'static str, shards: usize, quick: bool) -> GroupResult {
    const PAGES: usize = 256;
    const THREADS: usize = 4;
    let touches = if quick { 20_000 } else { 100_000 };
    let pool = Arc::new(BufferPool::with_config(
        Arc::new(DiskManager::new()),
        BufferConfig {
            shards,
            capacity: PAGES,
            policy: PolicyKind::Clock,
            scan_resistant: true,
        },
    ));
    let ids: Vec<u64> = (0..PAGES).map(|_| pool.allocate_page().unwrap()).collect();
    for &id in &ids {
        pool.with_page(id, |_| ()).unwrap();
    }
    let iters = if quick { 10 } else { 30 };
    measure(name, 2, iters, |_| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = pool.clone();
                let ids = ids.clone();
                std::thread::spawn(move || {
                    let mut acc = 0usize;
                    for i in 0..touches as usize {
                        // Knuth-style stride so threads collide across
                        // shards rather than marching in lockstep.
                        let id = ids[(i.wrapping_mul(2654435761) + t * 97) % ids.len()];
                        acc += pool.with_page(id, |p| p.live_count()).unwrap();
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    })
}

/// Hot-set size for the out-of-core workload.
const OOC_HOT: usize = 24;

fn ooc_pool(capacity: usize, scan_resistant: bool) -> Arc<BufferPool> {
    Arc::new(BufferPool::with_config(
        Arc::new(DiskManager::new()),
        BufferConfig {
            shards: 0,
            capacity,
            policy: PolicyKind::Clock,
            scan_resistant,
        },
    ))
}

/// Deterministic scan-vs-point interleave: four full sequential sweeps
/// of the table, with two hot-set point lookups after every eight
/// sequential touches (the access pattern a dop-4 scan racing a point
/// client produces, minus the scheduler nondeterminism — so the hit
/// ratio is reproducible on any machine and core count). Returns the
/// point-class hit ratio over the trace.
fn ooc_point_hit_ratio(pool: &BufferPool, ids: &[u64]) -> f64 {
    for &id in &ids[..OOC_HOT] {
        pool.with_page(id, |_| ()).unwrap();
    }
    let before = pool.stats();
    let mut h = 0usize;
    for _sweep in 0..4 {
        for chunk in ids.chunks(8) {
            for &id in chunk {
                pool.with_page_hint(id, AccessHint::Sequential, |_| ())
                    .unwrap();
            }
            for _ in 0..2 {
                pool.with_page(ids[h % OOC_HOT], |p| p.live_count())
                    .unwrap();
                h += 1;
            }
        }
    }
    let after = pool.stats();
    let hits = (after.point_hits - before.point_hits) as f64;
    let total = hits + (after.point_misses - before.point_misses) as f64;
    if total == 0.0 {
        1.0
    } else {
        hits / total
    }
}

/// Out-of-core mixed workload at a given `capacity / table pages` ratio.
/// The timed number is a dop-4 concurrent run (four sequential-sweep
/// threads racing the point-lookup client) on the scan-resistant pool;
/// the `point_hit_ratio` / `point_hit_ratio_unhinted` extras come from
/// the deterministic interleave above on scan-resistant and
/// scan-oblivious pools, exposing the hit-ratio gap the hints buy.
fn bench_buffer_out_of_core(name: &'static str, ratio: f64, quick: bool) -> GroupResult {
    const THREADS: usize = 4;
    let table_pages = if quick { 256 } else { 1024 };
    let lookups = if quick { 2_000 } else { 8_000 };
    let capacity = ((table_pages as f64 * ratio) as usize).max(OOC_HOT + 8);

    // Hit-ratio facts, deterministic.
    let hinted_pool = ooc_pool(capacity, true);
    let ids: Vec<u64> = (0..table_pages)
        .map(|_| hinted_pool.allocate_page().unwrap())
        .collect();
    hinted_pool.flush_all().unwrap();
    let hinted_ratio = ooc_point_hit_ratio(&hinted_pool, &ids);
    let unhinted_pool = ooc_pool(capacity, false);
    let unhinted_ids: Vec<u64> = (0..table_pages)
        .map(|_| unhinted_pool.allocate_page().unwrap())
        .collect();
    unhinted_pool.flush_all().unwrap();
    let unhinted_ratio = ooc_point_hit_ratio(&unhinted_pool, &unhinted_ids);

    // Timed concurrent run on the hinted pool.
    let pool = hinted_pool;
    let iters = if quick { 5 } else { 15 };
    let mut result = measure(name, 1, iters, |_| {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let scanners: Vec<_> = (0..THREADS)
            .map(|_| {
                let pool = pool.clone();
                let ids = ids.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for &id in &ids {
                            pool.with_page_hint(id, AccessHint::Sequential, |_| ())
                                .unwrap();
                            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                                return;
                            }
                        }
                    }
                })
            })
            .collect();
        for i in 0..lookups as usize {
            let id = ids[(i.wrapping_mul(31)) % OOC_HOT];
            pool.with_page(id, |p| p.live_count()).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for s in scanners {
            s.join().unwrap();
        }
    });
    result.extras.push(("capacity_ratio", ratio));
    result.extras.push(("point_hit_ratio", hinted_ratio));
    result
        .extras
        .push(("point_hit_ratio_unhinted", unhinted_ratio));
    result
}

/// Tracing-overhead gate: the timed (and regression-gated) metric is a
/// point select with tracing fully disabled — the near-free path every
/// statement pays one branch for. The extras report the same statement
/// and a dop-4 join-aggregate with `SET trace = on`, plus the
/// traced/untraced ratios, informationally: trace capture is allowed to
/// cost something, the disabled path is not.
fn bench_trace_overhead(quick: bool) -> GroupResult {
    let db = Database::new();
    let rows = if quick { 5_000 } else { 50_000 };
    seed(&db, "tr", rows);
    db.execute("CREATE INDEX ON tr (id)").unwrap();
    db.table("tr").unwrap().stats().unwrap();
    seed(&db, "trd", if quick { 2_000 } else { 6_000 });

    let mut session = SessionContext::new();
    db.execute_in_session(&mut session, "SET parallelism = 4")
        .unwrap();

    let point = |db: &Database, session: &mut SessionContext, i: usize| {
        let out = db
            .execute_in_session(
                session,
                &format!("SELECT * FROM tr WHERE id = {}", (i * 7919) % rows),
            )
            .unwrap();
        assert_eq!(out.rows().unwrap().rows.len(), 1);
    };
    let join = |db: &Database, session: &mut SessionContext| {
        let out = db
            .execute_in_session(
                session,
                "SELECT d.grp, COUNT(*), SUM(f.v) FROM tr f, trd d \
                 WHERE f.grp = d.id GROUP BY d.grp",
            )
            .unwrap();
        assert_eq!(out.rows().unwrap().rows.len(), 32);
    };

    // Median ns per op for one phase, same warmup/iteration discipline
    // as `measure` but inlined so all four phases share the seeded db.
    let phase = |name: &'static str, iters: usize, op: &mut dyn FnMut(usize)| {
        let mut r = measure(name, iters / 10, iters, op);
        r.extras.clear();
        r
    };
    let point_iters = if quick { 300 } else { 3000 };
    let join_iters = if quick { 15 } else { 60 };

    let untraced = phase("trace_overhead", point_iters, &mut |i| {
        point(&db, &mut session, i)
    });
    let join_untraced = phase("_", join_iters, &mut |_| join(&db, &mut session));
    db.execute_in_session(&mut session, "SET trace = on")
        .unwrap();
    let traced = phase("_", point_iters, &mut |i| point(&db, &mut session, i));
    let join_traced = phase("_", join_iters, &mut |_| join(&db, &mut session));
    assert!(
        !db.tracer().recent().is_empty(),
        "traced phases must actually capture traces"
    );

    let ratio = |t: &GroupResult, u: &GroupResult| t.median_ns as f64 / u.median_ns.max(1) as f64;
    let mut result = untraced;
    result
        .extras
        .push(("point_untraced_ns", result.median_ns as f64));
    result
        .extras
        .push(("point_traced_ns", traced.median_ns as f64));
    result
        .extras
        .push(("point_traced_ratio", ratio(&traced, &result)));
    result
        .extras
        .push(("join_untraced_ns", join_untraced.median_ns as f64));
    result
        .extras
        .push(("join_traced_ns", join_traced.median_ns as f64));
    result
        .extras
        .push(("join_traced_ratio", ratio(&join_traced, &join_untraced)));
    result
}

/// Multi-statement transaction commit cycle on the embedded engine:
/// BEGIN → one UPDATE + one INSERT staged in the deferred-apply write
/// set → COMMIT (validation, overlay apply, WAL commit record). Single
/// session, so the cost is the transaction machinery itself.
fn bench_txn_commit(quick: bool) -> GroupResult {
    let db = Database::new();
    seed(&db, "txn", 500);
    let mut session = SessionContext::new();
    let iters = if quick { 100 } else { 1000 };
    measure("txn_commit", iters / 10, iters, |i| {
        db.execute_in_session(&mut session, "BEGIN").unwrap();
        db.execute_in_session(
            &mut session,
            &format!("UPDATE txn SET v = v + 1 WHERE id = {}", i % 500),
        )
        .unwrap();
        db.execute_in_session(
            &mut session,
            &format!("INSERT INTO txn VALUES ({}, 0, 0)", 10_000 + i),
        )
        .unwrap();
        db.execute_in_session(&mut session, "COMMIT").unwrap();
    })
}

/// YCSB-style zipf-skewed read-modify-write transactions from 4
/// concurrent wire clients against a real server: the serving path the
/// learned CC policy adapts on. Each iteration is one full round of
/// transactions across all clients; conflict aborts retry with backoff.
/// The `abort_ratio` extra reports how much work the policy discarded.
fn bench_ycsb_zipf_concurrent(quick: bool) -> GroupResult {
    use neurdb_server::{client::Client, ClientError, Server, ServerConfig};
    use neurdb_workloads::Zipf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};

    const CLIENTS: usize = 4;
    const KEYS: u64 = 64;
    let txns = if quick { 8 } else { 25 };

    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE ycsb (id INT PRIMARY KEY, val INT)")
        .unwrap();
    let mut stmt = String::from("INSERT INTO ycsb VALUES ");
    for k in 0..KEYS {
        if k > 0 {
            stmt.push(',');
        }
        let _ = write!(stmt, "({k}, 0)");
    }
    db.execute(&stmt).unwrap();
    let handle = Server::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let aborts = Arc::new(AtomicU64::new(0));
    let commits = Arc::new(AtomicU64::new(0));
    let iters = if quick { 5 } else { 15 };
    let mut result = measure("ycsb_zipf_concurrent", 2, iters, |round| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let aborts = aborts.clone();
                let commits = commits.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let zipf = Zipf::new(KEYS, 0.9);
                    let mut rng = StdRng::seed_from_u64((round * CLIENTS + t) as u64);
                    for _ in 0..txns {
                        let k1 = zipf.sample(&mut rng);
                        let k2 = zipf.sample(&mut rng);
                        let mut attempts = 0u32;
                        'retry: loop {
                            attempts += 1;
                            if attempts > 1 {
                                std::thread::sleep(std::time::Duration::from_micros(
                                    200 * u64::from(attempts.min(20)),
                                ));
                            }
                            c.affected("BEGIN").unwrap();
                            for k in [k1, k2] {
                                match c.affected(&format!(
                                    "UPDATE ycsb SET val = val + 1 WHERE id = {k}"
                                )) {
                                    Ok(_) => {}
                                    Err(ClientError::TxnAborted(_)) => {
                                        aborts.fetch_add(1, Ordering::Relaxed);
                                        let _ = c.affected("ROLLBACK");
                                        continue 'retry;
                                    }
                                    Err(e) => panic!("unexpected error: {e}"),
                                }
                            }
                            match c.affected("COMMIT") {
                                Ok(_) => {
                                    commits.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(ClientError::TxnAborted(_)) => {
                                    aborts.fetch_add(1, Ordering::Relaxed);
                                    let _ = c.affected("ROLLBACK");
                                }
                                Err(e) => panic!("unexpected COMMIT error: {e}"),
                            }
                        }
                    }
                    c.close().unwrap();
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });
    handle.shutdown();
    let a = aborts.load(Ordering::Relaxed) as f64;
    let c = commits.load(Ordering::Relaxed) as f64;
    result
        .extras
        .push(("abort_ratio", if a + c == 0.0 { 0.0 } else { a / (a + c) }));
    result
}

fn render_json(results: &[GroupResult], quick: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"neurdb-bench-trajectory/v1\",");
    let _ = writeln!(out, "  \"pr\": 10,");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    out.push_str("  \"groups\": {\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    \"{}\": {{ \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"iters\": {}",
            r.name, r.median_ns, r.min_ns, r.max_ns, r.iters
        );
        for (k, v) in &r.extras {
            let _ = write!(out, ", \"{k}\": {v:.6}");
        }
        out.push_str(" }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_10.json".to_string());

    let results = vec![
        bench_insert(quick),
        bench_seqscan(quick),
        bench_indexed_point(quick),
        bench_parallel_agg(quick),
        bench_join_agg_parallel(quick),
        bench_wal_insert(quick),
        bench_trace_overhead(quick),
        bench_txn_commit(quick),
        bench_ycsb_zipf_concurrent(quick),
        bench_buffer_latch("buffer_latch_global_t4", 1, quick),
        bench_buffer_latch("buffer_latch_sharded_t4", 8, quick),
        bench_buffer_out_of_core("buffer_out_of_core_0.1x", 0.1, quick),
        bench_buffer_out_of_core("buffer_out_of_core_0.5x", 0.5, quick),
        bench_buffer_out_of_core("buffer_out_of_core_2x", 2.0, quick),
    ];
    for r in &results {
        println!(
            "{:<24} median {:>12} ns  (min {}, max {}, n={})",
            r.name, r.median_ns, r.min_ns, r.max_ns, r.iters
        );
        for (k, v) in &r.extras {
            println!("{:<24}   {k} = {v:.4}", "");
        }
    }
    let json = render_json(&results, quick);
    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}

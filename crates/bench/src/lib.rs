//! # neurdb-bench
//!
//! Benchmark harness for NeurDB-RS. The `figures` binary regenerates every
//! table and figure of the paper's evaluation; the Criterion benches under
//! `benches/` provide micro-level measurements and the ablations called
//! out in DESIGN.md §5.

//! The segmented write-ahead log.
//!
//! An LSN is a global byte offset into the logical log. Each segment file
//! `wal-<start-lsn>.seg` holds consecutive frames
//! `[len: u32][crc32(payload): u32][payload]`; a segment rolls once it
//! exceeds the configured size. Appends buffer in memory; a flush writes
//! buffered frames to the OS and (policy permitting) fsyncs. Commit
//! waiters block until their LSN is durable — under
//! [`FsyncPolicy::Group`] a background flusher batches concurrent
//! commits into one fsync (group commit).
//!
//! For kill-and-reopen tests, [`Wal::lose_after_records`] installs a
//! crash point: frames appended after it are acknowledged in memory but
//! never reach the file (exactly what an OS crash does to unflushed
//! writes), optionally tearing the first lost frame mid-write.

use crate::crc32::crc32;
use crate::record::WalRecord;
use neurdb_obs::trace;
use neurdb_obs::{Counter, Histogram};
use neurdb_storage::{StorageError, StorageResult};
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Log sequence number: a global byte offset. `Wal::append` returns the
/// *end* LSN of the appended record (first offset not covered by it);
/// scans yield each record's *start* LSN.
pub type Lsn = u64;

const FRAME_HEADER: u64 = 8;
/// Upper bound on a sane frame payload (corruption guard).
const MAX_PAYLOAD: u32 = 256 << 20;

/// When appended records reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every commit flushes and fsyncs inline. Maximum durability,
    /// one fsync per commit.
    Always,
    /// A background flusher fsyncs at this interval; committers wait for
    /// it. Concurrent commits share one fsync (group commit).
    Group(Duration),
    /// Flush to the OS on commit but never fsync. Survives process
    /// crashes, not power failures — the bench/test default.
    Never,
}

/// Observability handles for the log's hot paths. The default handles
/// are detached (recorded into but never read); `DurableStore` replaces
/// them with metrics resolved from its registry so `SHOW METRICS` sees
/// them. Cloning shares the underlying metrics.
#[derive(Debug, Clone, Default)]
pub struct WalMetrics {
    /// Latency of each `fsync(2)` on a segment file, in nanoseconds.
    pub fsync_ns: Arc<Histogram>,
    /// Records written per flush — the group-commit batch size.
    pub group_batch_records: Arc<Histogram>,
    /// Segment files closed and rolled over.
    pub segment_rotations: Arc<Counter>,
}

/// Tuning knobs for [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Roll to a new segment file once the current one reaches this size.
    pub segment_bytes: u64,
    pub fsync: FsyncPolicy,
    pub metrics: WalMetrics,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::Group(Duration::from_millis(1)),
            metrics: WalMetrics::default(),
        }
    }
}

/// Counters for benchmarks and the monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    pub appended_records: u64,
    pub appended_bytes: u64,
    pub flushes: u64,
    pub fsyncs: u64,
    /// Commits that found their LSN already durable (rode a group flush).
    pub group_rides: u64,
}

struct Segment {
    file: File,
    /// Bytes written into this segment file.
    len: u64,
}

struct Inner {
    dir: PathBuf,
    segment_bytes: u64,
    /// Appended but not yet written frames: `(start_lsn, frame_bytes)`.
    buffer: VecDeque<(Lsn, Vec<u8>)>,
    /// Next append offset (end of buffered log).
    next_lsn: Lsn,
    /// Everything below this offset has been written to the OS.
    written_lsn: Lsn,
    /// Everything below this offset is durable per the active policy.
    durable_lsn: Lsn,
    current: Option<Segment>,
    /// Crash injection: frames whose index (in appended-record order)
    /// is `>= cutoff` are silently dropped at flush time.
    crash_after_records: Option<u64>,
    /// Tear the first dropped frame: write this many of its bytes.
    torn_bytes: usize,
    records_flushed: u64,
    /// Sticky I/O failure: once a flush fails, frames stay buffered and
    /// every commit surfaces this error instead of hanging on a
    /// `durable_lsn` that can no longer advance.
    io_error: Option<String>,
    stats: WalStats,
    metrics: WalMetrics,
    /// `(start, duration)` of the most recent fsync, whichever thread
    /// ran it. Group committers read it after their durability wait to
    /// attribute the flusher's fsync to their own statement trace
    /// ([`trace::span_interval`]); under `Always`/`Never` the fsync runs
    /// on the committer thread and files its interval inline.
    last_fsync: Option<(Instant, Duration)>,
}

impl Inner {
    fn segment_path(dir: &Path, start: Lsn) -> PathBuf {
        dir.join(format!("wal-{start:016x}.seg"))
    }

    fn open_segment(&mut self, start: Lsn) -> StorageResult<()> {
        let path = Self::segment_path(&self.dir, start);
        let existed = path.exists();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(io_err)?;
        if !existed {
            // A new segment's directory entry must itself be durable, or a
            // crash can lose the whole file even after its data is fsynced.
            sync_dir(&self.dir)?;
        }
        let len = file.metadata().map_err(io_err)?.len();
        self.current = Some(Segment { file, len });
        Ok(())
    }

    /// Write buffered frames out to segment files, honoring the crash
    /// point. Returns whether anything was written (needs fsync). On an
    /// I/O error the failed frame (and everything after it) stays
    /// buffered and the error sticks, so a later retry can still flush
    /// everything in order.
    fn flush_buffer(&mut self) -> StorageResult<bool> {
        let mut wrote = false;
        let batch_start = self.records_flushed;
        while let Some((lsn, frame)) = self.buffer.front() {
            let (lsn, frame_len) = (*lsn, frame.len() as u64);
            let dropped = match self.crash_after_records {
                Some(cut) => self.records_flushed >= cut,
                None => false,
            };
            if !dropped {
                let frame = self.buffer.front().map(|(_, f)| f.clone()).unwrap();
                if let Err(e) = self.write_bytes(lsn, &frame) {
                    self.io_error = Some(e.to_string());
                    return Err(e);
                }
                wrote = true;
            } else if self.torn_bytes > 0 {
                // Lost to the "crash": emulate a torn tail on the first
                // dropped frame, then nothing.
                let n = self.torn_bytes.min(frame_len as usize);
                self.torn_bytes = 0;
                let prefix: Vec<u8> = self.buffer.front().map(|(_, f)| f[..n].to_vec()).unwrap();
                self.write_bytes(lsn, &prefix)?;
                wrote = true;
            }
            self.records_flushed += 1;
            self.written_lsn = lsn + frame_len;
            self.buffer.pop_front();
        }
        self.stats.flushes += 1;
        let batch = self.records_flushed - batch_start;
        if batch > 0 {
            self.metrics.group_batch_records.record(batch);
        }
        Ok(wrote)
    }

    /// Append raw bytes at logical offset `lsn`, rolling segments at
    /// frame boundaries.
    fn write_bytes(&mut self, lsn: Lsn, bytes: &[u8]) -> StorageResult<()> {
        let roll = match &self.current {
            Some(seg) => seg.len >= self.segment_bytes,
            None => true,
        };
        if roll {
            if let Some(seg) = self.current.take() {
                seg.file.sync_data().map_err(io_err)?;
                self.metrics.segment_rotations.inc();
            }
            self.open_segment(lsn)?;
        }
        let seg = self.current.as_mut().expect("segment just opened");
        seg.file.write_all(bytes).map_err(io_err)?;
        seg.len += bytes.len() as u64;
        Ok(())
    }

    fn fsync_current(&mut self) -> StorageResult<()> {
        if let Some(seg) = &self.current {
            let start = Instant::now();
            seg.file.sync_data().map_err(io_err)?;
            let took = start.elapsed();
            self.metrics.fsync_ns.record_duration(took);
            self.stats.fsyncs += 1;
            self.last_fsync = Some((start, took));
            // No-op on the group flusher thread (no statement context);
            // under Always/Never this runs on the committer and nests
            // the fsync under its current span.
            trace::span_interval("wal.fsync", start, took, Vec::new());
        }
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Codec(format!("wal io: {e}"))
}

/// File the covering fsync's measured interval as a child of the
/// caller's open `wal.commit_wait` span. Under group commit the fsync
/// runs on the background flusher thread, which has no statement
/// context — so the *committer* attributes the interval to its own
/// trace once its durability wait resolves. The enabled-check guards
/// the attr allocation on the (common) untraced path.
fn attribute_group_fsync(_wait_span: &mut trace::SpanGuard, covering: Option<(Instant, Duration)>) {
    if !trace::enabled() {
        return;
    }
    if let Some((start, took)) = covering {
        trace::span_interval(
            "wal.fsync",
            start,
            took,
            vec![("group", "true".to_string())],
        );
    }
}

/// Fsync a directory so file creations/renames/removals inside it are
/// themselves durable (POSIX: the directory entry lives in the directory,
/// not the file). Windows cannot open directories for fsync, so it is a
/// no-op there; everywhere else a failure is a real durability error and
/// propagates.
#[cfg(not(windows))]
pub(crate) fn sync_dir(dir: &Path) -> StorageResult<()> {
    File::open(dir).and_then(|f| f.sync_all()).map_err(io_err)
}

#[cfg(windows)]
pub(crate) fn sync_dir(_dir: &Path) -> StorageResult<()> {
    Ok(())
}

/// Records scanned from the log during open: `(start_lsn, record)`.
pub type ScannedRecords = Vec<(Lsn, WalRecord)>;

/// The write-ahead log. Clone the surrounding [`Arc`] to share.
pub struct Wal {
    inner: Mutex<Inner>,
    durable: Condvar,
    policy: FsyncPolicy,
    shutdown: Arc<AtomicBool>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl Wal {
    /// Open (or create) the log in `dir`, continuing after the last valid
    /// record. A torn tail is truncated so appends start at a clean
    /// boundary.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> StorageResult<Arc<Wal>> {
        Ok(Self::open_with_records(dir, opts, Lsn::MAX)?.0)
    }

    /// [`Wal::open`] that additionally returns, from the *same* single
    /// walk over the segment files, every valid record whose start LSN is
    /// `>= collect_from` — so recovery can replay the log without a
    /// second scan. Pass `Lsn::MAX` to collect nothing.
    pub fn open_with_records(
        dir: impl Into<PathBuf>,
        opts: WalOptions,
        collect_from: Lsn,
    ) -> StorageResult<(Arc<Wal>, ScannedRecords)> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        // Find the end of the *contiguous valid* log — collecting replay
        // records along the way — then truncate the segment holding that
        // point and delete anything beyond, so new appends continue
        // exactly where recovery stops.
        let segments = list_segments(&dir)?;
        let mut records = Vec::new();
        let mut next_lsn = 0;
        let mut valid_in_seg: Option<Lsn> = None; // seg start holding the end
        for &(start, _) in &segments {
            if valid_in_seg.is_some() && start != next_lsn {
                break; // chain gap: everything from here on is dead
            }
            if valid_in_seg.is_none() {
                next_lsn = start;
            }
            valid_in_seg = Some(start);
            let frames = scan_segment_frames(&dir, start)?;
            for (lsn, frame_len, record) in frames {
                next_lsn = lsn + frame_len;
                if lsn >= collect_from {
                    records.push((lsn, record));
                }
            }
            let seg_len = fs::metadata(Inner::segment_path(&dir, start))
                .map_err(io_err)?
                .len();
            if next_lsn - start < seg_len {
                break; // torn/corrupt tail inside this segment
            }
        }
        if let Some(end_seg) = valid_in_seg {
            // Truncate the torn tail of the segment containing the end.
            let seg_path = Inner::segment_path(&dir, end_seg);
            let f = OpenOptions::new()
                .write(true)
                .open(&seg_path)
                .map_err(io_err)?;
            if f.metadata().map_err(io_err)?.len() > next_lsn - end_seg {
                f.set_len(next_lsn - end_seg).map_err(io_err)?;
            }
            // Delete dead segments beyond the valid end, and persist the
            // removals so they cannot resurrect after a crash.
            let mut removed = false;
            for &(start, ref path) in &segments {
                if start > end_seg {
                    let _ = fs::remove_file(path);
                    removed = true;
                }
            }
            if removed {
                sync_dir(&dir)?;
            }
        }
        let inner = Inner {
            dir,
            segment_bytes: opts.segment_bytes,
            buffer: VecDeque::new(),
            next_lsn,
            written_lsn: next_lsn,
            durable_lsn: next_lsn,
            current: None,
            crash_after_records: None,
            torn_bytes: 0,
            records_flushed: 0,
            io_error: None,
            stats: WalStats::default(),
            metrics: opts.metrics.clone(),
            last_fsync: None,
        };
        let wal = Arc::new(Wal {
            inner: Mutex::new(inner),
            durable: Condvar::new(),
            policy: opts.fsync,
            shutdown: Arc::new(AtomicBool::new(false)),
            flusher: Mutex::new(None),
        });
        if let FsyncPolicy::Group(interval) = opts.fsync {
            let weak = Arc::downgrade(&wal);
            let shutdown = wal.shutdown.clone();
            let handle = std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    std::thread::park_timeout(interval);
                    let Some(wal) = weak.upgrade() else { break };
                    let _ = wal.flush_and_mark_durable(true);
                }
            });
            *wal.flusher.lock().unwrap() = Some(handle);
        }
        Ok((wal, records))
    }

    /// Append a record; returns its **end** LSN (pass to
    /// [`Wal::commit`] to await durability).
    pub fn append(&self, record: &WalRecord) -> Lsn {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut span = trace::span("wal.append");
        span.attr("bytes", frame.len());
        let mut inner = self.inner.lock().unwrap();
        let lsn = inner.next_lsn;
        inner.next_lsn += frame.len() as u64;
        inner.stats.appended_records += 1;
        inner.stats.appended_bytes += frame.len() as u64;
        inner.buffer.push_back((lsn, frame));
        span.attr("lsn", inner.next_lsn);
        inner.next_lsn
    }

    /// Block until everything at or below `lsn` is durable under the
    /// configured policy.
    pub fn commit(&self, lsn: Lsn) -> StorageResult<()> {
        match self.policy {
            FsyncPolicy::Always => {
                self.flush_and_mark_durable(true)?;
                Ok(())
            }
            FsyncPolicy::Never => {
                self.flush_and_mark_durable(false)?;
                Ok(())
            }
            FsyncPolicy::Group(_) => {
                let mut wait_span = trace::span("wal.commit_wait");
                let mut inner = self.inner.lock().unwrap();
                if inner.durable_lsn >= lsn {
                    inner.stats.group_rides += 1;
                    let covering = inner.last_fsync;
                    drop(inner);
                    wait_span.attr("ride", true);
                    attribute_group_fsync(&mut wait_span, covering);
                    return Ok(());
                }
                // Nudge the flusher rather than waiting a full interval.
                if let Some(h) = self.flusher.lock().unwrap().as_ref() {
                    h.thread().unpark();
                }
                loop {
                    if let Some(e) = &inner.io_error {
                        return Err(StorageError::Codec(format!("wal flush failed: {e}")));
                    }
                    inner = self.durable.wait(inner).unwrap();
                    if inner.durable_lsn >= lsn {
                        let covering = inner.last_fsync;
                        drop(inner);
                        wait_span.attr("ride", false);
                        attribute_group_fsync(&mut wait_span, covering);
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Flush buffered frames; fsync if requested; advance `durable_lsn`
    /// and wake commit waiters.
    fn flush_and_mark_durable(&self, fsync: bool) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let result: StorageResult<()> = (|| {
            let wrote = inner.flush_buffer()?;
            if fsync && wrote {
                inner.fsync_current()?;
            }
            Ok(())
        })();
        if let Err(e) = &result {
            // Stick the failure so waiting committers error out instead
            // of sleeping on a durable_lsn that cannot advance.
            inner.io_error = Some(e.to_string());
        } else {
            inner.durable_lsn = inner.written_lsn;
            inner.io_error = None; // a successful retry clears the fault
        }
        drop(inner);
        self.durable.notify_all();
        result
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&self) -> StorageResult<()> {
        self.flush_and_mark_durable(true)
    }

    /// End LSN of the appended log (including unflushed records).
    pub fn end_lsn(&self) -> Lsn {
        self.inner.lock().unwrap().next_lsn
    }

    pub fn stats(&self) -> WalStats {
        self.inner.lock().unwrap().stats
    }

    /// Crash injection for kill-and-reopen tests: frames appended after
    /// the `n`-th (counting every record ever appended to this `Wal`)
    /// never reach the file. With `torn`, the first lost frame is
    /// partially written to exercise torn-tail recovery. In-memory
    /// operation continues normally — exactly like an OS losing its page
    /// cache at power-off.
    pub fn lose_after_records(&self, n: u64, torn: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.crash_after_records = Some(n);
        inner.torn_bytes = if torn { 5 } else { 0 };
    }

    /// Delete segments wholly below `lsn` (post-checkpoint truncation).
    pub fn truncate_before(&self, lsn: Lsn) -> StorageResult<()> {
        let inner = self.inner.lock().unwrap();
        let segments = list_segments(&inner.dir)?;
        let mut removed = false;
        for window in segments.windows(2) {
            let (start, _) = window[0];
            let (next_start, _) = window[1];
            if next_start <= lsn {
                let _ = fs::remove_file(Inner::segment_path(&inner.dir, start));
                removed = true;
            }
        }
        if removed {
            sync_dir(&inner.dir)?;
        }
        Ok(())
    }

    /// Scan all valid records with start LSN `>= from`, in order. Stops
    /// at the first corrupt or torn frame (end of recoverable log).
    pub fn scan_from(dir: &Path, from: Lsn) -> StorageResult<Vec<(Lsn, WalRecord)>> {
        let mut out = Vec::new();
        let segments = list_segments(dir)?;
        let mut expected_next: Option<Lsn> = None;
        for &(start, _) in &segments {
            // Segments must chain contiguously; a gap means the tail
            // was truncated by a checkpoint mid-history — stop there.
            if let Some(exp) = expected_next {
                if start != exp {
                    break;
                }
            }
            let mut end = start;
            for (lsn, frame_len, record) in scan_segment_frames(dir, start)? {
                end = lsn + frame_len;
                if lsn >= from {
                    out.push((lsn, record));
                }
            }
            expected_next = Some(end);
            // A short segment that is not the last one means corruption
            // mid-history; the chain check above will catch it.
        }
        Ok(out)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.flusher.lock().unwrap().take() {
            // The flusher's transient Weak::upgrade can make it the last
            // Arc holder, running this Drop *on* the flusher thread —
            // joining would self-deadlock; it is already exiting.
            if h.thread().id() != std::thread::current().id() {
                h.thread().unpark();
                let _ = h.join();
            }
        }
        // Final best-effort flush (honors any crash point).
        let _ = self.flush_and_mark_durable(matches!(self.policy, FsyncPolicy::Always));
    }
}

fn list_segments(dir: &Path) -> StorageResult<Vec<(Lsn, PathBuf)>> {
    let mut segs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(segs),
    };
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        {
            if let Ok(start) = Lsn::from_str_radix(hex, 16) {
                segs.push((start, entry.path()));
            }
        }
    }
    segs.sort_unstable_by_key(|(s, _)| *s);
    Ok(segs)
}

/// Parse one segment file into `(start_lsn, frame_len, record)` triples,
/// stopping at the first invalid frame.
fn scan_segment_frames(dir: &Path, start: Lsn) -> StorageResult<Vec<(Lsn, u64, WalRecord)>> {
    let path = Inner::segment_path(dir, start);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(_) => return Ok(Vec::new()),
    };
    file.seek(SeekFrom::Start(0)).map_err(io_err)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err)?;
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + FRAME_HEADER as usize <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len == 0 || len > MAX_PAYLOAD {
            break;
        }
        let payload_start = off + FRAME_HEADER as usize;
        let payload_end = payload_start + len as usize;
        if payload_end > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[payload_start..payload_end];
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = WalRecord::decode(payload) else {
            break;
        };
        let frame_len = FRAME_HEADER + len as u64;
        out.push((start + off as u64, frame_len, record));
        off = payload_end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "neurdb-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(txn: u64) -> WalRecord {
        WalRecord::TxnCommit { txn }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..100 {
                let lsn = wal.append(&rec(i));
                wal.commit(lsn).unwrap();
            }
        }
        let records = Wal::scan_from(&dir, 0).unwrap();
        assert_eq!(records.len(), 100);
        for (i, (_, r)) in records.iter().enumerate() {
            assert_eq!(r, &rec(i as u64));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_chain() {
        let dir = tmpdir("segments");
        {
            let wal = Wal::open(
                &dir,
                WalOptions {
                    segment_bytes: 256,
                    fsync: FsyncPolicy::Never,
                    ..WalOptions::default()
                },
            )
            .unwrap();
            for i in 0..200 {
                wal.append(&rec(i));
            }
            wal.sync().unwrap();
        }
        let n_segs = fs::read_dir(&dir).unwrap().count();
        assert!(n_segs > 5, "expected many segments, got {n_segs}");
        assert_eq!(Wal::scan_from(&dir, 0).unwrap().len(), 200);
        // Reopen continues appending where the log ended.
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        let end = wal.append(&rec(999));
        wal.commit(end).unwrap();
        drop(wal);
        let all = Wal::scan_from(&dir, 0).unwrap();
        assert_eq!(all.len(), 201);
        assert_eq!(all.last().unwrap().1, rec(999));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_point_drops_tail() {
        let dir = tmpdir("crash");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.lose_after_records(10, false);
            for i in 0..50 {
                let lsn = wal.append(&rec(i));
                wal.commit(lsn).unwrap();
            }
        }
        let records = Wal::scan_from(&dir, 0).unwrap();
        assert_eq!(records.len(), 10, "only pre-crash records survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_truncated_on_reopen() {
        let dir = tmpdir("torn");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.lose_after_records(7, true);
            for i in 0..20 {
                let lsn = wal.append(&rec(i));
                wal.commit(lsn).unwrap();
            }
        }
        assert_eq!(Wal::scan_from(&dir, 0).unwrap().len(), 7);
        // Reopen truncates the torn bytes and appends cleanly after.
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            let lsn = wal.append(&rec(777));
            wal.commit(lsn).unwrap();
        }
        let records = Wal::scan_from(&dir, 0).unwrap();
        assert_eq!(records.len(), 8);
        assert_eq!(records.last().unwrap().1, rec(777));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_ends_scan() {
        let dir = tmpdir("corrupt");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..20 {
                let lsn = wal.append(&rec(i));
                wal.commit(lsn).unwrap();
            }
        }
        // Flip a byte in the middle of the single segment.
        let seg = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let records = Wal::scan_from(&dir, 0).unwrap();
        assert!(records.len() < 20, "scan must stop at corruption");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = tmpdir("group");
        let wal = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 4 << 20,
                fsync: FsyncPolicy::Group(Duration::from_millis(2)),
                ..WalOptions::default()
            },
        )
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let lsn = wal.append(&rec(t * 1000 + i));
                    wal.commit(lsn).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appended_records, 400);
        assert!(
            stats.fsyncs < 400,
            "group commit should batch: {} fsyncs for 400 commits",
            stats.fsyncs
        );
        drop(wal);
        assert_eq!(Wal::scan_from(&dir, 0).unwrap().len(), 400);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_before_preserves_tail() {
        let dir = tmpdir("truncate");
        let wal = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 128,
                fsync: FsyncPolicy::Never,
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..100 {
            wal.append(&rec(i));
        }
        wal.sync().unwrap();
        let cut = wal.end_lsn() / 2;
        wal.truncate_before(cut).unwrap();
        let tail = Wal::scan_from(&dir, cut).unwrap();
        assert!(!tail.is_empty());
        // Every surviving record with lsn >= cut is intact and in order.
        let mut prev = 0;
        for (lsn, _) in &tail {
            assert!(*lsn >= prev);
            prev = *lsn;
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

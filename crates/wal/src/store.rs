//! Logged tables: the durable store `neurdb-core` builds its SQL facade
//! on, usable on its own for storage-level crash testing.
//!
//! Every mutation is applied to the in-memory/buffered table first and
//! logged on success (redo-only; see the crate docs for why the data
//! file never needs undo). [`DurableStore::checkpoint`] publishes an
//! atomic snapshot (page-file copy + manifest) and truncates the log;
//! [`DurableStore::open`] restores the latest snapshot and replays
//! committed records after it.
//!
//! Layout of a database directory:
//!
//! ```text
//! <dir>/data.ndb         page file (scratch between checkpoints)
//! <dir>/checkpoint.ndb   page file as of the last checkpoint (atomic)
//! <dir>/checkpoint.meta  manifest: ckpt LSN, catalog, app snapshot
//! <dir>/wal/wal-*.seg    log segments
//! ```

use crate::codec::{Reader, Writer};
use crate::crc32::crc32;
use crate::disk::FileDisk;
use crate::log::{Lsn, Wal, WalMetrics, WalOptions, WalStats};
use crate::record::{read_schema, write_schema, WalRecord, SYSTEM_TXN};
use neurdb_obs::MetricsRegistry;
use neurdb_storage::{
    BufferConfig, BufferPool, BufferStats, DiskManager, PageId, RecordId, Schema, StorageError,
    StorageResult, Table, Tuple,
};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MANIFEST_MAGIC: &[u8; 8] = b"NDBCKPT1";

/// Options for opening a durable store.
#[derive(Debug, Clone, Default)]
pub struct DurableStoreOptions {
    /// Buffer pool frames (`0` → the capacity from `buffer`). Kept as a
    /// shorthand for callers that only want to size the pool; when
    /// nonzero it overrides `buffer.capacity`.
    pub frames: usize,
    /// Full buffer-pool geometry: shard count, capacity, replacement
    /// policy, and scan-resistant admission.
    pub buffer: BufferConfig,
    pub wal: WalOptions,
    /// Registry the store's WAL and buffer metrics resolve from;
    /// defaults to a fresh private registry, so embedded and test
    /// instances stay isolated.
    pub registry: Arc<MetricsRegistry>,
}

impl DurableStoreOptions {
    fn buffer_config(&self) -> BufferConfig {
        let mut cfg = self.buffer;
        if self.frames != 0 {
            cfg.capacity = self.frames;
        }
        if cfg.capacity == 0 {
            cfg.capacity = 4096;
        }
        cfg
    }
}

struct StorePaths {
    dir: PathBuf,
    data: PathBuf,
    ckpt_meta: PathBuf,
    wal_dir: PathBuf,
    lock: PathBuf,
}

impl StorePaths {
    fn new(dir: &Path) -> StorePaths {
        StorePaths {
            dir: dir.to_path_buf(),
            data: dir.join("data.ndb"),
            ckpt_meta: dir.join("checkpoint.meta"),
            wal_dir: dir.join("wal"),
            lock: dir.join("LOCK"),
        }
    }
}

/// Acquire the exclusive database-directory lock. Without it, a second
/// process opening the same directory would run recovery against (and
/// truncate the page file of) a live instance.
fn acquire_dir_lock(path: &Path) -> StorageResult<fs::File> {
    let file = fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(path)
        .map_err(|e| StorageError::Codec(format!("lock file {}: {e}", path.display())))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(std::fs::TryLockError::WouldBlock) => Err(StorageError::Catalog(format!(
            "database directory is locked by another process ({})",
            path.display()
        ))),
        Err(std::fs::TryLockError::Error(e)) => Err(StorageError::Codec(format!(
            "lock file {}: {e}",
            path.display()
        ))),
    }
}

/// Application-level state recovered from the checkpoint + log, returned
/// to the layer above (the SQL/AI facade) for it to re-apply.
#[derive(Debug, Default)]
pub struct RecoveredApp {
    /// Opaque app snapshot from the manifest (model store + bindings).
    pub snapshot: Option<Vec<u8>>,
    /// Committed non-storage records after the checkpoint, in log order
    /// (model events, bindings, KV commits).
    pub records: Vec<WalRecord>,
}

/// Tables + WAL + checkpointing. Thread-safe; share via `Arc`.
pub struct DurableStore {
    pool: Arc<BufferPool>,
    registry: Arc<MetricsRegistry>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    wal: Option<Arc<Wal>>,
    disk: Option<Arc<FileDisk>>,
    paths: Option<StorePaths>,
    /// Exclusive directory lock, held for the store's lifetime.
    _dir_lock: Option<fs::File>,
    next_txn: AtomicU64,
    /// Mutations hold `read`; checkpoint holds `write` (quiesce).
    latch: RwLock<()>,
    /// Serializes apply+log per operation so replay order always equals
    /// apply order for conflicting DML (the per-op `latch` read guard is
    /// shared and cannot order concurrent writers).
    op_order: parking_lot::Mutex<()>,
    /// Open statement-level transactions; checkpoint waits for zero so a
    /// snapshot never captures a transaction's uncommitted prefix (which
    /// redo-only recovery could not undo).
    active_txns: std::sync::Mutex<u64>,
    quiesced: std::sync::Condvar,
}

impl DurableStore {
    /// An in-memory store with no durability (the seed's behavior).
    pub fn volatile(frames: usize) -> DurableStore {
        Self::volatile_config(BufferConfig::with_capacity(frames))
    }

    /// An in-memory store with full buffer-pool geometry control
    /// (shards, replacement policy, scan resistance).
    pub fn volatile_config(buffer: BufferConfig) -> DurableStore {
        let registry = Arc::new(MetricsRegistry::new());
        let pool = Arc::new(BufferPool::with_config(
            Arc::new(DiskManager::new()),
            buffer,
        ));
        pool.attach_metrics(
            registry.histogram("buffer.read_ns"),
            registry.histogram("buffer.write_ns"),
        );
        DurableStore {
            pool,
            registry,
            tables: RwLock::new(HashMap::new()),
            wal: None,
            disk: None,
            paths: None,
            _dir_lock: None,
            next_txn: AtomicU64::new(1),
            latch: RwLock::new(()),
            op_order: parking_lot::Mutex::new(()),
            active_txns: std::sync::Mutex::new(0),
            quiesced: std::sync::Condvar::new(),
        }
    }

    /// Open (or create) a durable store in `dir`, running crash recovery:
    /// restore the latest checkpoint snapshot, then redo committed log
    /// records. Returns the store plus the app-level recovered state.
    pub fn open(
        dir: impl Into<PathBuf>,
        opts: DurableStoreOptions,
    ) -> StorageResult<(DurableStore, RecoveredApp)> {
        let recovery_start = std::time::Instant::now();
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StorageError::Codec(format!("store dir: {e}")))?;
        let paths = StorePaths::new(&dir);
        let dir_lock = acquire_dir_lock(&paths.lock)?;

        // 1. Restore the checkpoint image (or start fresh).
        let manifest = read_manifest(&paths.ckpt_meta);
        let (ckpt_lsn, next_txn_floor, app_snapshot, table_manifests) = match &manifest {
            Some(m) => {
                fs::copy(paths.dir.join(&m.image), &paths.data)
                    .map_err(|e| StorageError::Codec(format!("restore checkpoint: {e}")))?;
                (
                    m.ckpt_lsn,
                    m.next_txn,
                    Some(m.app_snapshot.clone()),
                    m.tables.clone(),
                )
            }
            None => {
                // No checkpoint: the entire state replays from LSN 0, so
                // whatever the old data file holds is dead weight.
                let _ = fs::remove_file(&paths.data);
                (0, 1, None, Vec::new())
            }
        };

        // 2. Page file + buffer pool + manifest tables.
        let disk = Arc::new(FileDisk::open(&paths.data)?);
        let pool = Arc::new(BufferPool::with_config(disk.clone(), opts.buffer_config()));
        pool.attach_metrics(
            opts.registry.histogram("buffer.read_ns"),
            opts.registry.histogram("buffer.write_ns"),
        );
        let mut tables: HashMap<String, Arc<Table>> = HashMap::new();
        for tm in &table_manifests {
            let t = Arc::new(Table::with_heap_pages(
                tm.name.clone(),
                tm.schema.clone(),
                pool.clone(),
                tm.pages.clone(),
            ));
            for &col in &tm.indexed_cols {
                t.create_index(col as usize)?;
            }
            tables.insert(tm.name.clone(), t);
        }

        // 3. Open the log and redo committed records after the checkpoint.
        //    One walk over the segment files both finds the valid end of
        //    the log (truncating any torn tail so appends continue there)
        //    and collects the replay records — recovery no longer re-scans.
        let wal_opts = WalOptions {
            metrics: WalMetrics {
                fsync_ns: opts.registry.histogram("wal.fsync_ns"),
                group_batch_records: opts.registry.histogram("wal.group_batch_records"),
                segment_rotations: opts.registry.counter("wal.segment_rotations"),
            },
            ..opts.wal
        };
        let (wal, log) = Wal::open_with_records(&paths.wal_dir, wal_opts, ckpt_lsn)?;
        let mut committed: HashSet<u64> = HashSet::new();
        committed.insert(SYSTEM_TXN);
        let mut max_txn = 0;
        for (_, rec) in &log {
            max_txn = max_txn.max(rec.txn());
            if let WalRecord::TxnCommit { txn } = rec {
                committed.insert(*txn);
            }
        }
        let mut app = RecoveredApp {
            snapshot: app_snapshot,
            records: Vec::new(),
        };
        // Original rid -> replayed rid, for post-checkpoint inserts that
        // land in different slots than they originally did.
        let mut rid_map: HashMap<(String, RecordId), RecordId> = HashMap::new();
        for (_, rec) in log {
            // KvCommit is self-committing: the transaction engine writes
            // it only at its commit point (its txn ids are a separate id
            // space with no begin/commit brackets in this log).
            let auto_committed = matches!(rec, WalRecord::KvCommit { .. });
            if !auto_committed && !committed.contains(&rec.txn()) {
                continue;
            }
            match rec {
                WalRecord::TxnBegin { .. }
                | WalRecord::TxnCommit { .. }
                | WalRecord::TxnAbort { .. }
                | WalRecord::CheckpointEnd { .. } => {}
                WalRecord::CreateTable { table, schema, .. } => {
                    tables.insert(
                        table.clone(),
                        Arc::new(Table::new(table, schema, pool.clone())),
                    );
                }
                WalRecord::DropTable { table, .. } => {
                    tables.remove(&table);
                    // A recreated table with the same name starts a fresh
                    // rid space; stale translations must not redirect its
                    // records.
                    rid_map.retain(|(t, _), _| t != &table);
                }
                WalRecord::CreateIndex { table, col, .. } => {
                    let t = tables.get(&table).ok_or_else(|| replay_err(&table))?;
                    t.create_index(col as usize)?;
                }
                WalRecord::HeapInsert {
                    table, rid, tuple, ..
                } => {
                    let t = tables.get(&table).ok_or_else(|| replay_err(&table))?;
                    let decoded = Tuple::decode(&tuple, &t.schema.types())?;
                    let new_rid = t.insert(decoded)?;
                    if new_rid != rid {
                        rid_map.insert((table, rid), new_rid);
                    }
                }
                WalRecord::HeapUpdate {
                    table, rid, tuple, ..
                } => {
                    let t = tables.get(&table).ok_or_else(|| replay_err(&table))?;
                    let decoded = Tuple::decode(&tuple, &t.schema.types())?;
                    let rid = rid_map.get(&(table, rid)).copied().unwrap_or(rid);
                    t.update(rid, decoded)?;
                }
                WalRecord::HeapDelete { table, rid, .. } => {
                    let t = tables.get(&table).ok_or_else(|| replay_err(&table))?;
                    let rid = rid_map.get(&(table, rid)).copied().unwrap_or(rid);
                    t.delete(rid)?;
                }
                rec @ (WalRecord::ModelRegister { .. }
                | WalRecord::ModelSaveFull { .. }
                | WalRecord::ModelSaveIncremental { .. }
                | WalRecord::ModelBind { .. }
                | WalRecord::KvCommit { .. }) => {
                    app.records.push(rec);
                }
            }
        }

        // 4. Log appends continue after the valid tail found above.
        opts.registry
            .gauge("wal.recovery_replay_ns")
            .set(recovery_start.elapsed().as_nanos() as f64);
        let store = DurableStore {
            pool,
            registry: opts.registry,
            tables: RwLock::new(tables),
            wal: Some(wal),
            disk: Some(disk),
            paths: Some(paths),
            _dir_lock: Some(dir_lock),
            next_txn: AtomicU64::new(next_txn_floor.max(max_txn + 1)),
            latch: RwLock::new(()),
            op_order: parking_lot::Mutex::new(()),
            active_txns: std::sync::Mutex::new(0),
            quiesced: std::sync::Condvar::new(),
        };
        Ok((store, app))
    }

    // ------------------------- transactions -------------------------

    /// Start a transaction (statement-level in the SQL facade). Every
    /// `begin` must be paired with a `commit` or `abort`, or checkpoints
    /// will wait forever for the transaction to finish.
    pub fn begin(&self) -> u64 {
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        *self.active_txns.lock().unwrap() += 1;
        self.log(&WalRecord::TxnBegin { txn });
        txn
    }

    fn finish_txn(&self) {
        let mut active = self.active_txns.lock().unwrap();
        *active -= 1;
        if *active == 0 {
            self.quiesced.notify_all();
        }
    }

    /// Commit: append the commit record and wait until it is durable
    /// under the configured fsync policy.
    pub fn commit(&self, txn: u64) -> StorageResult<()> {
        let lsn = self.log(&WalRecord::TxnCommit { txn });
        // The txn is complete once its commit record is appended; the
        // durability wait below must not block a pending checkpoint.
        self.finish_txn();
        if let Some(lsn) = lsn {
            self.wal.as_ref().unwrap().commit(lsn)?;
        }
        Ok(())
    }

    /// Commit without waiting for durability: append the commit record
    /// and return its LSN so the caller can release latches/locks first
    /// and `wait_durable` afterwards. Multi-statement transactions use
    /// this to keep the commit critical section short while still
    /// acknowledging only durable commits.
    pub fn commit_nowait(&self, txn: u64) -> Option<Lsn> {
        let lsn = self.log(&WalRecord::TxnCommit { txn });
        self.finish_txn();
        lsn
    }

    /// Abandon a transaction. No undo is performed — in-memory effects
    /// stay visible (matching the executor's partial-failure semantics);
    /// the record exists so recovery can tell deliberate abandonment
    /// from a crash tail.
    pub fn abort(&self, txn: u64) {
        self.log(&WalRecord::TxnAbort { txn });
        self.finish_txn();
    }

    // --------------------------- catalog ----------------------------

    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).cloned()
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    pub fn create_table(&self, txn: u64, name: &str, schema: Schema) -> StorageResult<Arc<Table>> {
        let _latch = self.latch.read();
        let _order = self.op_order.lock();
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StorageError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let table = Arc::new(Table::new(name, schema.clone(), self.pool.clone()));
        tables.insert(name.to_string(), table.clone());
        drop(tables);
        self.log(&WalRecord::CreateTable {
            txn,
            table: name.to_string(),
            schema,
        });
        Ok(table)
    }

    pub fn drop_table(&self, txn: u64, name: &str) -> StorageResult<()> {
        let _latch = self.latch.read();
        let _order = self.op_order.lock();
        if self.tables.write().remove(name).is_none() {
            return Err(StorageError::Catalog(format!("unknown table '{name}'")));
        }
        self.log(&WalRecord::DropTable {
            txn,
            table: name.to_string(),
        });
        Ok(())
    }

    pub fn create_index(&self, txn: u64, name: &str, col: usize) -> StorageResult<()> {
        let _latch = self.latch.read();
        let _order = self.op_order.lock();
        let t = self.require(name)?;
        t.create_index(col)?;
        self.log(&WalRecord::CreateIndex {
            txn,
            table: name.to_string(),
            col: col as u32,
        });
        Ok(())
    }

    // ----------------------------- DML ------------------------------

    pub fn insert(&self, txn: u64, name: &str, tuple: Tuple) -> StorageResult<RecordId> {
        let _latch = self.latch.read();
        let _order = self.op_order.lock();
        let t = self.require(name)?;
        let encoded = tuple.encode(&t.schema.types())?;
        let rid = t.insert(tuple)?;
        self.log(&WalRecord::HeapInsert {
            txn,
            table: name.to_string(),
            rid,
            tuple: encoded.to_vec(),
        });
        Ok(rid)
    }

    pub fn update(&self, txn: u64, name: &str, rid: RecordId, tuple: Tuple) -> StorageResult<()> {
        let _latch = self.latch.read();
        let _order = self.op_order.lock();
        let t = self.require(name)?;
        let encoded = tuple.encode(&t.schema.types())?;
        t.update(rid, tuple)?;
        self.log(&WalRecord::HeapUpdate {
            txn,
            table: name.to_string(),
            rid,
            tuple: encoded.to_vec(),
        });
        Ok(())
    }

    pub fn delete(&self, txn: u64, name: &str, rid: RecordId) -> StorageResult<()> {
        let _latch = self.latch.read();
        let _order = self.op_order.lock();
        let t = self.require(name)?;
        t.delete(rid)?;
        self.log(&WalRecord::HeapDelete {
            txn,
            table: name.to_string(),
            rid,
        });
        Ok(())
    }

    // ------------------- app records & durability --------------------

    /// Append an application record (model events, bindings, KV
    /// commits). Returns its end LSN, or `None` on a volatile store.
    pub fn append_record(&self, record: &WalRecord) -> Option<Lsn> {
        let _latch = self.latch.read();
        self.log(record)
    }

    /// Append without taking the checkpoint quiesce latch. Used by the
    /// model-manager event sink, which runs under the model store's own
    /// write lock: taking the latch there would deadlock against a
    /// checkpoint holding the latch while snapshotting the model store.
    /// Safe because checkpoint recovery replays model events
    /// idempotently (events landing after the checkpoint LSN but inside
    /// the snapshot are skipped on replay).
    pub fn append_record_unlatched(&self, record: &WalRecord) -> Option<Lsn> {
        self.log(record)
    }

    /// Wait until `lsn` is durable (no-op on volatile stores).
    pub fn wait_durable(&self, lsn: Lsn) -> StorageResult<()> {
        match &self.wal {
            Some(wal) => wal.commit(lsn),
            None => Ok(()),
        }
    }

    /// Force the whole log to stable storage.
    pub fn sync(&self) -> StorageResult<()> {
        match &self.wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    fn log(&self, record: &WalRecord) -> Option<Lsn> {
        self.wal.as_ref().map(|w| w.append(record))
    }

    fn require(&self, name: &str) -> StorageResult<Arc<Table>> {
        self.table(name)
            .ok_or_else(|| StorageError::Catalog(format!("unknown table '{name}'")))
    }

    // -------------------------- checkpoint ---------------------------

    /// Write a checkpoint: quiesce mutations, flush all dirty pages,
    /// publish an atomic page-file snapshot + manifest (including the
    /// caller's opaque app snapshot, taken under the quiesce latch), and
    /// truncate log segments the snapshot supersedes.
    pub fn checkpoint(&self, app_snapshot: impl FnOnce() -> Vec<u8>) -> StorageResult<Lsn> {
        let (Some(wal), Some(paths), Some(_disk)) = (&self.wal, &self.paths, &self.disk) else {
            return Err(StorageError::Catalog(
                "checkpoint on a volatile store".into(),
            ));
        };
        // Quiesce: block new operations (write latch) and wait for open
        // statement transactions to finish, so the snapshot never holds a
        // transaction's uncommitted prefix. Under a sustained stream of
        // overlapping transactions this waits until a gap appears.
        let _latch = loop {
            let latch = self.latch.write();
            let active = self.active_txns.lock().unwrap();
            if *active == 0 {
                break latch;
            }
            drop(latch);
            let _unused = self.quiesced.wait(active).unwrap();
        };
        self.pool.flush_all_and_sync()?;
        wal.sync()?;
        let ckpt_lsn = wal.end_lsn();

        // Page-file snapshot, named by LSN. The manifest (published
        // atomically below) references this name, so a crash anywhere in
        // between leaves the previous manifest/image pair intact.
        let image = format!("checkpoint-{ckpt_lsn:016x}.ndb");
        let tmp_data = paths.dir.join(format!("{image}.tmp"));
        fs::copy(&paths.data, &tmp_data)
            .map_err(|e| StorageError::Codec(format!("checkpoint copy: {e}")))?;
        sync_file(&tmp_data)?;
        fs::rename(&tmp_data, paths.dir.join(&image))
            .map_err(|e| StorageError::Codec(format!("checkpoint publish: {e}")))?;

        // Manifest.
        let tables = self.tables.read();
        let mut manifests: Vec<TableManifest> = tables
            .values()
            .map(|t| TableManifest {
                name: t.name.clone(),
                schema: t.schema.clone(),
                pages: t.heap_page_ids(),
                indexed_cols: t.indexed_columns().iter().map(|c| *c as u32).collect(),
            })
            .collect();
        manifests.sort_by(|a, b| a.name.cmp(&b.name));
        drop(tables);
        let manifest = Manifest {
            ckpt_lsn,
            next_txn: self.next_txn.load(Ordering::Relaxed),
            image: image.clone(),
            app_snapshot: app_snapshot(),
            tables: manifests,
        };
        let tmp_meta = paths.ckpt_meta.with_extension("meta.tmp");
        fs::write(&tmp_meta, manifest.encode())
            .map_err(|e| StorageError::Codec(format!("manifest write: {e}")))?;
        sync_file(&tmp_meta)?;
        fs::rename(&tmp_meta, &paths.ckpt_meta)
            .map_err(|e| StorageError::Codec(format!("manifest publish: {e}")))?;
        // The image/manifest renames are only durable once the directory
        // entries are — fsync the directory before declaring success.
        crate::log::sync_dir(&paths.dir)?;

        // Note: no CheckpointEnd record is appended — the manifest is the
        // authoritative anchor, and appending here would make the record
        // stream depend on checkpoint timing (breaking the determinism
        // that crash-point tests rely on). The record type remains for
        // log-level tooling.
        wal.truncate_before(ckpt_lsn)?;
        // Old images are superseded once the manifest points elsewhere.
        if let Ok(entries) = fs::read_dir(&paths.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("checkpoint-") && name.ends_with(".ndb") && *name != *image {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(ckpt_lsn)
    }

    // ----------------------------- stats -----------------------------

    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// The registry this store's WAL and buffer metrics live in.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Re-export point-in-time sources (buffer-pool counters, WAL stats)
    /// as gauges in the registry. The buffer pool and `WalStats` keep
    /// their own counters; mirroring them here at snapshot time keeps
    /// their hot paths untouched.
    pub fn refresh_metrics(&self) {
        let b = self.pool.stats();
        let r = &self.registry;
        r.gauge("buffer.hits").set(b.hits as f64);
        r.gauge("buffer.misses").set(b.misses as f64);
        r.gauge("buffer.evictions").set(b.evictions as f64);
        r.gauge("buffer.hit_ratio").set(b.hit_ratio());
        r.gauge("buffer.point_hit_ratio").set(b.point_hit_ratio());
        r.gauge("buffer.occupancy").set(b.occupancy());
        r.gauge("buffer.capacity").set(b.capacity as f64);
        r.gauge("buffer.resident").set(b.resident as f64);
        r.gauge("buffer.shards").set(self.pool.shard_count() as f64);
        for (i, s) in self.pool.shard_stats().iter().enumerate() {
            r.gauge(&format!("buffer.shard{i}.hits")).set(s.hits as f64);
            r.gauge(&format!("buffer.shard{i}.misses"))
                .set(s.misses as f64);
            r.gauge(&format!("buffer.shard{i}.evictions"))
                .set(s.evictions as f64);
            r.gauge(&format!("buffer.shard{i}.hit_ratio"))
                .set(s.hit_ratio());
        }
        // Per-policy counters: only policies that have actually served
        // traffic, so a store that never switched stays compact.
        for (kind, s) in self.pool.policy_stats() {
            if s.hits + s.misses == 0 {
                continue;
            }
            let name = kind.name();
            r.gauge(&format!("buffer.policy.{name}.hits"))
                .set(s.hits as f64);
            r.gauge(&format!("buffer.policy.{name}.misses"))
                .set(s.misses as f64);
            r.gauge(&format!("buffer.policy.{name}.evictions"))
                .set(s.evictions as f64);
            r.gauge(&format!("buffer.policy.{name}.hit_ratio"))
                .set(s.hit_ratio());
        }
        if let Some(w) = self.wal_stats() {
            r.gauge("wal.appended_records")
                .set(w.appended_records as f64);
            r.gauge("wal.appended_bytes").set(w.appended_bytes as f64);
            r.gauge("wal.flushes").set(w.flushes as f64);
            r.gauge("wal.fsyncs").set(w.fsyncs as f64);
            r.gauge("wal.group_rides").set(w.group_rides as f64);
        }
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Crash injection passthrough (tests): see
    /// [`Wal::lose_after_records`]. No-op on volatile stores.
    pub fn lose_after_records(&self, n: u64, torn: bool) {
        if let Some(wal) = &self.wal {
            wal.lose_after_records(n, torn);
        }
    }
}

fn replay_err(table: &str) -> StorageError {
    StorageError::Catalog(format!("replay references unknown table '{table}'"))
}

fn sync_file(path: &Path) -> StorageResult<()> {
    fs::File::open(path)
        .and_then(|f| f.sync_all())
        .map_err(|e| StorageError::Codec(format!("fsync {}: {e}", path.display())))
}

// ----------------------------- manifest ------------------------------

#[derive(Debug, Clone)]
struct TableManifest {
    name: String,
    schema: Schema,
    pages: Vec<PageId>,
    indexed_cols: Vec<u32>,
}

struct Manifest {
    ckpt_lsn: Lsn,
    next_txn: u64,
    /// File name (within the database dir) of this checkpoint's page
    /// image. Naming the image in the manifest makes the
    /// image-then-manifest publish sequence atomic as a pair: until the
    /// manifest rename lands, recovery keeps using the old manifest with
    /// its old (still present) image.
    image: String,
    app_snapshot: Vec<u8>,
    tables: Vec<TableManifest>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.u64(self.ckpt_lsn);
        body.u64(self.next_txn);
        body.str(&self.image);
        body.bytes(&self.app_snapshot);
        body.u32(self.tables.len() as u32);
        for t in &self.tables {
            body.str(&t.name);
            write_schema(&mut body, &t.schema);
            body.u32(t.pages.len() as u32);
            for p in &t.pages {
                body.u64(*p);
            }
            body.u32(t.indexed_cols.len() as u32);
            for c in &t.indexed_cols {
                body.u32(*c);
            }
        }
        let body = body.into_bytes();
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(bytes: &[u8]) -> Option<Manifest> {
        let rest = bytes.strip_prefix(MANIFEST_MAGIC.as_slice())?;
        let (crc_bytes, body) = rest.split_at_checked(4)?;
        let crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc32(body) != crc {
            return None;
        }
        let mut r = Reader(body);
        let ckpt_lsn = r.u64()?;
        let next_txn = r.u64()?;
        let image = r.str()?;
        let app_snapshot = r.bytes()?.to_vec();
        let n_tables = r.u32()? as usize;
        let mut tables = Vec::with_capacity(n_tables.min(1 << 16));
        for _ in 0..n_tables {
            let name = r.str()?;
            let schema = read_schema(&mut r)?;
            let n_pages = r.u32()? as usize;
            let mut pages = Vec::with_capacity(n_pages.min(1 << 20));
            for _ in 0..n_pages {
                pages.push(r.u64()?);
            }
            let n_idx = r.u32()? as usize;
            let mut indexed_cols = Vec::with_capacity(n_idx.min(1 << 12));
            for _ in 0..n_idx {
                indexed_cols.push(r.u32()?);
            }
            tables.push(TableManifest {
                name,
                schema,
                pages,
                indexed_cols,
            });
        }
        r.is_empty().then_some(Manifest {
            ckpt_lsn,
            next_txn,
            image,
            app_snapshot,
            tables,
        })
    }
}

fn read_manifest(path: &Path) -> Option<Manifest> {
    Manifest::decode(&fs::read(path).ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::FsyncPolicy;
    use neurdb_storage::{ColumnDef, DataType, Value};
    use std::sync::atomic::AtomicU32;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "neurdb-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn opts() -> DurableStoreOptions {
        DurableStoreOptions {
            frames: 64,
            wal: WalOptions {
                segment_bytes: 16 << 10,
                fsync: FsyncPolicy::Never,
                ..WalOptions::default()
            },
            ..Default::default()
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int).not_null().unique(),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("score", DataType::Float),
        ])
    }

    fn row(id: i64, name: &str, score: f64) -> Tuple {
        Tuple::new(vec![
            Value::Int(id),
            Value::Text(name.into()),
            Value::Float(score),
        ])
    }

    fn sorted_rows(store: &DurableStore, table: &str) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = store
            .table(table)
            .unwrap()
            .scan()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    #[test]
    fn committed_work_survives_reopen_without_checkpoint() {
        let dir = tmpdir("basic");
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "t", schema()).unwrap();
            for i in 0..100 {
                store.insert(txn, "t", row(i, "x", i as f64)).unwrap();
            }
            store.create_index(txn, "t", 0).unwrap();
            store.commit(txn).unwrap();
            // Crash: drop without checkpoint or clean shutdown.
        }
        let (store, app) = DurableStore::open(&dir, opts()).unwrap();
        assert!(app.snapshot.is_none());
        let t = store.table("t").unwrap();
        assert_eq!(t.len().unwrap(), 100);
        assert!(t.has_index(0));
        assert_eq!(t.lookup(0, &Value::Int(42)).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_tail_is_absent_after_crash() {
        let dir = tmpdir("uncommitted");
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "t", schema()).unwrap();
            for i in 0..10 {
                store.insert(txn, "t", row(i, "committed", 0.0)).unwrap();
            }
            store.commit(txn).unwrap();
            // Second txn never commits before the crash.
            let txn2 = store.begin();
            for i in 100..110 {
                store.insert(txn2, "t", row(i, "uncommitted", 0.0)).unwrap();
            }
            assert_eq!(store.table("t").unwrap().len().unwrap(), 20);
        }
        let (store, _) = DurableStore::open(&dir, opts()).unwrap();
        let rows = sorted_rows(&store, "t");
        assert_eq!(rows.len(), 10, "uncommitted inserts must not replay");
        assert!(rows
            .iter()
            .all(|r| r.get(1) == &Value::Text("committed".into())));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_restores_and_replays_tail() {
        let dir = tmpdir("ckpt");
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "t", schema()).unwrap();
            store.create_index(txn, "t", 0).unwrap();
            for i in 0..50 {
                store.insert(txn, "t", row(i, "pre", i as f64)).unwrap();
            }
            store.commit(txn).unwrap();
            store.checkpoint(|| b"app-state".to_vec()).unwrap();
            // Post-checkpoint committed work.
            let txn = store.begin();
            for i in 50..80 {
                store.insert(txn, "t", row(i, "post", i as f64)).unwrap();
            }
            // Update and delete pre-checkpoint rows (identity rids).
            let t = store.table("t").unwrap();
            let hit = &t.lookup(0, &Value::Int(7)).unwrap()[0];
            store
                .update(txn, "t", hit.0, row(7, "updated", 7.5))
                .unwrap();
            let hit = &t.lookup(0, &Value::Int(8)).unwrap()[0];
            store.delete(txn, "t", hit.0).unwrap();
            store.commit(txn).unwrap();
        }
        let (store, app) = DurableStore::open(&dir, opts()).unwrap();
        assert_eq!(app.snapshot.as_deref(), Some(&b"app-state"[..]));
        let t = store.table("t").unwrap();
        assert_eq!(t.len().unwrap(), 79);
        assert_eq!(
            t.lookup(0, &Value::Int(7)).unwrap()[0].1.get(1),
            &Value::Text("updated".into())
        );
        assert!(t.lookup(0, &Value::Int(8)).unwrap().is_empty());
        assert_eq!(t.lookup(0, &Value::Int(75)).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_txn_via_fault_injection() {
        let dir = tmpdir("fault");
        let committed_before_crash;
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "t", schema()).unwrap();
            for i in 0..20 {
                store.insert(txn, "t", row(i, "a", 0.0)).unwrap();
            }
            store.commit(txn).unwrap();
            committed_before_crash = 20;
            // Lose everything after the first txn; keep operating.
            let records_so_far = store.wal_stats().unwrap().appended_records;
            store.lose_after_records(records_so_far, true);
            let txn = store.begin();
            for i in 20..40 {
                store.insert(txn, "t", row(i, "b", 0.0)).unwrap();
            }
            store.commit(txn).unwrap(); // "durable" per the doomed OS
            assert_eq!(store.table("t").unwrap().len().unwrap(), 40);
        }
        let (store, _) = DurableStore::open(&dir, opts()).unwrap();
        assert_eq!(
            store.table("t").unwrap().len().unwrap(),
            committed_before_crash,
            "post-crash-point txn must vanish"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ddl_replay_covers_drop_and_multiple_tables() {
        let dir = tmpdir("ddl");
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "keep", schema()).unwrap();
            store.create_table(txn, "gone", schema()).unwrap();
            store.insert(txn, "keep", row(1, "k", 1.0)).unwrap();
            store.insert(txn, "gone", row(2, "g", 2.0)).unwrap();
            store.drop_table(txn, "gone").unwrap();
            store.commit(txn).unwrap();
        }
        let (store, _) = DurableStore::open(&dir, opts()).unwrap();
        assert_eq!(store.table_names(), vec!["keep".to_string()]);
        assert_eq!(store.table("keep").unwrap().len().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn app_records_come_back_committed_only() {
        let dir = tmpdir("app");
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            store
                .append_record(&WalRecord::ModelRegister {
                    txn: SYSTEM_TXN,
                    mid: 1,
                    ts: 1,
                    spec: vec![1, 2, 3],
                    states: vec![vec![9; 32]],
                })
                .unwrap();
            let txn = store.begin();
            store
                .append_record(&WalRecord::ModelBind {
                    txn,
                    table: "t".into(),
                    target: "y".into(),
                    mid: 1,
                    meta: vec![],
                })
                .unwrap();
            // txn never commits -> its bind record must not replay.
            store.sync().unwrap();
        }
        let (_, app) = DurableStore::open(&dir, opts()).unwrap();
        assert_eq!(app.records.len(), 1);
        assert!(matches!(app.records[0], WalRecord::ModelRegister { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_and_recreate_resets_rid_translation() {
        let dir = tmpdir("drop-recreate");
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "t", schema()).unwrap();
            store.insert(txn, "t", row(1, "old", 1.0)).unwrap();
            store.commit(txn).unwrap();
            store.checkpoint(Vec::new).unwrap();
            // Post-checkpoint: grow the old incarnation (replay of these
            // inserts can land at shifted rids), then drop, recreate, and
            // update rows of the fresh incarnation by rid.
            let txn = store.begin();
            for i in 2..20 {
                store.insert(txn, "t", row(i, "old", 0.0)).unwrap();
            }
            store.drop_table(txn, "t").unwrap();
            store.create_table(txn, "t", schema()).unwrap();
            let rid = store.insert(txn, "t", row(100, "fresh", 0.5)).unwrap();
            store
                .update(txn, "t", rid, row(100, "updated", 0.9))
                .unwrap();
            store.commit(txn).unwrap();
        }
        let (store, _) = DurableStore::open(&dir, opts()).unwrap();
        let rows = sorted_rows(&store, "t");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Text("updated".into()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn two_checkpoints_then_crash() {
        let dir = tmpdir("two-ckpt");
        {
            let (store, _) = DurableStore::open(&dir, opts()).unwrap();
            let txn = store.begin();
            store.create_table(txn, "t", schema()).unwrap();
            store.insert(txn, "t", row(1, "a", 1.0)).unwrap();
            store.commit(txn).unwrap();
            store.checkpoint(Vec::new).unwrap();
            let txn = store.begin();
            store.insert(txn, "t", row(2, "b", 2.0)).unwrap();
            store.commit(txn).unwrap();
            store.checkpoint(Vec::new).unwrap();
            let txn = store.begin();
            store.insert(txn, "t", row(3, "c", 3.0)).unwrap();
            store.commit(txn).unwrap();
        }
        let (store, _) = DurableStore::open(&dir, opts()).unwrap();
        assert_eq!(store.table("t").unwrap().len().unwrap(), 3);
        // And recovery is idempotent across another reopen.
        drop(store);
        let (store, _) = DurableStore::open(&dir, opts()).unwrap();
        assert_eq!(store.table("t").unwrap().len().unwrap(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! # neurdb-wal
//!
//! The durability subsystem of NeurDB-RS: an ARIES-lite, redo-only
//! write-ahead log with snapshot checkpoints, a file-backed disk behind
//! the storage crate's [`DiskBackend`](neurdb_storage::DiskBackend)
//! trait, and crash recovery that rebuilds tables, indexes, catalog
//! state, **and** the AI engine's model version chains (the
//! distinctly-NeurDB part: trained ArmNet models survive a crash).
//!
//! Layering: `storage` (pages) → `wal` (this crate) → `core` (SQL + AI
//! wiring). The crate exposes three levels:
//!
//! * [`Wal`] — segmented log: LSN-addressed, CRC32-checksummed records,
//!   group-commit batching, configurable fsync policy, torn-tail
//!   detection, crash-point fault injection for kill-and-reopen tests.
//! * [`FileDisk`] — a real file-backed page store (`data.ndb`).
//! * [`DurableStore`] — logged tables: every heap/DDL/index mutation is
//!   applied and logged, checkpoints snapshot the page file + manifest,
//!   and [`DurableStore::open`] replays committed work after a crash.
//!
//! ## Recovery protocol (redo-only)
//!
//! Mutations are applied in memory first and logged on success; a
//! statement-level transaction's commit record is forced according to the
//! fsync policy before the statement reports success. Data pages may
//! reach `data.ndb` at any time (evictions are *steal*), but recovery
//! never trusts `data.ndb`: a checkpoint quiesces mutations, flushes all
//! dirty pages, and atomically publishes a copy (`checkpoint.ndb`) plus a
//! manifest (`checkpoint.meta`). Recovery restores the copy, then redoes
//! committed records after the checkpoint LSN. There is no undo pass:
//! uncommitted tails simply never replay.

pub mod codec;
pub mod crc32;
pub mod disk;
pub mod log;
pub mod record;
pub mod store;

pub use crc32::crc32;
pub use disk::FileDisk;
pub use log::{FsyncPolicy, Lsn, Wal, WalMetrics, WalOptions, WalStats};
pub use record::{ColumnSpecDef, WalRecord, SYSTEM_TXN};
pub use store::{DurableStore, DurableStoreOptions, RecoveredApp};

//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//! Guards every WAL record and the checkpoint manifest against torn
//! writes and bit rot.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"neurdb-wal");
        let mut flipped = b"neurdb-wal".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}

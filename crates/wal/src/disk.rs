//! A real file-backed page store implementing the storage crate's
//! [`DiskBackend`] trait: whole-page positional reads/writes against a
//! single `data.ndb` file, with the same I/O counters the simulated disk
//! charges (so buffer-pool statistics and benches keep working).

use neurdb_storage::{DiskBackend, PageId, StorageError, StorageResult, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Codec(format!("disk io: {e}"))
}

/// Page file on disk. Page `i` lives at byte offset `i * PAGE_SIZE`;
/// allocation extends the file with a zeroed page.
pub struct FileDisk {
    file: File,
    path: PathBuf,
    /// Guards allocation (file extension); reads/writes use positional
    /// I/O and need no lock.
    alloc: Mutex<u64>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FileDisk {
    /// Open (or create) the page file at `path`. Existing pages are
    /// preserved; the page count is derived from the file length.
    pub fn open(path: impl Into<PathBuf>) -> StorageResult<FileDisk> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Codec(format!(
                "page file {} has non-page-aligned length {len}",
                path.display()
            )));
        }
        Ok(FileDisk {
            file,
            path,
            alloc: Mutex::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Truncate to zero pages (fresh database without a checkpoint).
    pub fn reset(&self) -> StorageResult<()> {
        let mut pages = self.alloc.lock();
        self.file.set_len(0).map_err(io_err)?;
        *pages = 0;
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl DiskBackend for FileDisk {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.alloc.lock();
        // Extend with a zeroed page image; on failure (e.g. ENOSPC) the
        // page count is left unchanged.
        self.file
            .set_len((*pages + 1) * PAGE_SIZE as u64)
            .map_err(io_err)?;
        let id = *pages;
        *pages += 1;
        Ok(id)
    }

    fn read(&self, id: PageId) -> StorageResult<Box<[u8]>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if id >= *self.alloc.lock() {
            return Err(StorageError::PageNotFound(id));
        }
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        self.file
            .read_exact_at(&mut buf, id * PAGE_SIZE as u64)
            .map_err(io_err)?;
        Ok(buf)
    }

    fn write(&self, id: PageId, data: &[u8]) -> StorageResult<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        if data.len() != PAGE_SIZE {
            return Err(StorageError::Codec(format!(
                "page write must be {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        if id >= *self.alloc.lock() {
            return Err(StorageError::PageNotFound(id));
        }
        self.file
            .write_all_at(data, id * PAGE_SIZE as u64)
            .map_err(io_err)
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.sync_data().map_err(io_err)
    }

    fn num_pages(&self) -> usize {
        *self.alloc.lock() as usize
    }

    fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurdb_storage::{BufferPool, Page};
    use std::sync::Arc;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("neurdb-disk-{tag}-{}.ndb", std::process::id()))
    }

    #[test]
    fn pages_survive_reopen() {
        let path = tmpfile("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let disk = FileDisk::open(&path).unwrap();
            let id = disk.allocate().unwrap();
            let mut page = Page::new();
            page.insert(b"durable bytes").unwrap();
            disk.write(id, page.as_bytes()).unwrap();
            disk.sync().unwrap();
        }
        {
            let disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.num_pages(), 1);
            let raw = disk.read(0).unwrap();
            let page = Page::from_bytes(&raw).unwrap();
            assert_eq!(page.get(0).unwrap(), b"durable bytes");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn works_behind_buffer_pool() {
        let path = tmpfile("pool");
        let _ = std::fs::remove_file(&path);
        {
            let disk = Arc::new(FileDisk::open(&path).unwrap());
            let pool = BufferPool::new(disk, 2);
            let ids: Vec<_> = (0..8).map(|_| pool.allocate_page().unwrap()).collect();
            for (i, id) in ids.iter().enumerate() {
                pool.with_page_mut(*id, |p| p.insert(format!("v{i}").as_bytes()).unwrap())
                    .unwrap();
            }
            pool.flush_all_and_sync().unwrap();
            for (i, id) in ids.iter().enumerate() {
                let got = pool.with_page(*id, |p| p.get(0).unwrap().to_vec()).unwrap();
                assert_eq!(got, format!("v{i}").as_bytes());
            }
        }
        // And again across a process-lifetime boundary.
        {
            let disk = Arc::new(FileDisk::open(&path).unwrap());
            let pool = BufferPool::new(disk, 2);
            for i in 0..8u64 {
                let got = pool.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
                assert_eq!(got, format!("v{i}").as_bytes());
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_file_rejected() {
        let path = tmpfile("misaligned");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FileDisk::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}

//! Little-endian byte codec helpers shared by WAL records and the
//! checkpoint manifest. Reads are total: malformed input yields `None`,
//! never a panic — recovery treats any decode failure as end-of-log.

/// Append-only writer over a `Vec<u8>`.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub fn byte_vecs(&mut self, vs: &[Vec<u8>]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.bytes(v);
        }
    }
}

/// Consuming reader over a byte slice.
pub struct Reader<'a>(pub &'a [u8]);

impl<'a> Reader<'a> {
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn u8(&mut self) -> Option<u8> {
        let (head, rest) = self.0.split_at_checked(1)?;
        self.0 = rest;
        Some(head[0])
    }

    pub fn u16(&mut self) -> Option<u16> {
        let (head, rest) = self.0.split_at_checked(2)?;
        self.0 = rest;
        Some(u16::from_le_bytes(head.try_into().ok()?))
    }

    pub fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.0.split_at_checked(4)?;
        self.0 = rest;
        Some(u32::from_le_bytes(head.try_into().ok()?))
    }

    pub fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.0.split_at_checked(8)?;
        self.0 = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    pub fn f32(&mut self) -> Option<f32> {
        Some(f32::from_bits(self.u32()?))
    }

    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let (head, rest) = self.0.split_at_checked(len)?;
        self.0 = rest;
        Some(head)
    }

    pub fn str(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?.to_vec()).ok()
    }

    pub fn byte_vecs(&mut self) -> Option<Vec<Vec<u8>>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.bytes()?.to_vec());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f32(-1.25);
        w.str("héllo");
        w.byte_vecs(&[vec![1, 2], vec![], vec![9]]);
        let bytes = w.into_bytes();
        let mut r = Reader(&bytes);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(513));
        assert_eq!(r.u32(), Some(70_000));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.f32(), Some(-1.25));
        assert_eq!(r.str().as_deref(), Some("héllo"));
        assert_eq!(r.byte_vecs(), Some(vec![vec![1, 2], vec![], vec![9]]));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut w = Writer::new();
        w.str("abcdef");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader(&bytes[..cut]);
            assert!(r.str().is_none());
        }
    }
}
